//! Sharded, byte-bounded LRU result cache.
//!
//! Keys are canonical request bytes (see
//! [`crate::protocol::canonical_bytes`]); values are whatever the caller
//! wants to share between identical queries (the server stores the
//! computed [`crate::protocol::Reply`]). Each shard is an independent
//! mutex-guarded LRU, so concurrent workers contend only when their
//! keys hash to the same shard. Capacity is a *byte* budget — each entry
//! is charged its key length plus a caller-supplied cost (the server
//! uses the serialized reply length) — because discovery replies vary
//! from a handful of bytes (`k=1`) to whole ranked tables.
//!
//! Recency is tracked with a lazy queue: every touch pushes a fresh
//! `(sequence, key)` ticket and stamps the entry; eviction pops tickets
//! and ignores stale ones. This keeps `get`/`put` O(1) amortized with no
//! intrusive lists, at the price of transiently duplicated tickets.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Cache construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of independent shards (rounded up to at least 1).
    pub shards: usize,
    /// Total byte budget across all shards.
    pub capacity_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_bytes: 8 << 20,
        }
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed to enforce the byte budget.
    pub evictions: u64,
    /// Successful inserts (including overwrites).
    pub insertions: u64,
    /// Inserts skipped because one entry alone exceeds a shard budget.
    pub rejected: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Charged bytes right now.
    pub bytes: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: Arc<V>,
    /// Charged bytes: key length + caller-declared value cost.
    charge: usize,
    /// Ticket stamp; only the newest ticket for a key is live.
    seq: u64,
}

struct Shard<V> {
    map: HashMap<Vec<u8>, Entry<V>>,
    /// Lazy recency queue of `(seq, key)` tickets, oldest first.
    order: VecDeque<(u64, Vec<u8>)>,
    bytes: usize,
    next_seq: u64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            next_seq: 0,
        }
    }

    fn touch(&mut self, key: &[u8]) -> Option<Arc<V>> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = self.map.get_mut(key)?;
        entry.seq = seq;
        let value = Arc::clone(&entry.value);
        self.order.push_back((seq, key.to_vec()));
        // A hit-heavy workload mints a new ticket per hit without ever
        // evicting, so the queue would grow without bound; compact the
        // stale tickets once they dominate.
        if self.order.len() > 8 * self.map.len().max(1) {
            let map = &self.map;
            self.order
                .retain(|(seq, key)| map.get(key).is_some_and(|e| e.seq == *seq));
        }
        Some(value)
    }

    /// Pop stale tickets until the oldest live entry is evicted.
    fn evict_one(&mut self) -> bool {
        while let Some((seq, key)) = self.order.pop_front() {
            let live = self.map.get(&key).is_some_and(|e| e.seq == seq);
            if live {
                if let Some(e) = self.map.remove(&key) {
                    self.bytes = self.bytes.saturating_sub(e.charge);
                }
                return true;
            }
        }
        false
    }
}

/// The sharded LRU cache. `V` is the shared value type; the server uses
/// the decoded reply so cached and freshly computed responses serialize
/// identically.
pub struct ResultCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    rejected: AtomicU64,
}

/// Recover from a poisoned shard lock: the shard's invariants (byte
/// accounting, ticket queue) tolerate a torn update at worst as an
/// accounting error, and the cache must never take the server down.
fn relock<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a over the key bytes — stable across runs (no `RandomState`), so
/// shard placement is deterministic and testable.
fn shard_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<V> ResultCache<V> {
    /// Create a cache with the given shard count and byte budget.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let shards = cfg.shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_budget: (cfg.capacity_bytes / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<Shard<V>> {
        let idx = (shard_hash(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&self, key: &[u8]) -> Option<Arc<V>> {
        let found = relock(self.shard(key).lock()).touch(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Insert (or overwrite) a value whose cost is `value_cost` bytes,
    /// evicting least-recently-used entries until the shard fits its
    /// budget. An entry that alone exceeds the shard budget is rejected
    /// rather than wiping the shard.
    pub fn put(&self, key: Vec<u8>, value: Arc<V>, value_cost: usize) {
        let charge = key.len().saturating_add(value_cost);
        if charge > self.per_shard_budget {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut evicted = 0u64;
        {
            let mut shard = relock(self.shard(&key).lock());
            let seq = shard.next_seq;
            shard.next_seq += 1;
            if let Some(old) = shard.map.insert(key.clone(), Entry { value, charge, seq }) {
                shard.bytes = shard.bytes.saturating_sub(old.charge);
            }
            shard.bytes += charge;
            shard.order.push_back((seq, key));
            while shard.bytes > self.per_shard_budget {
                if !shard.evict_one() {
                    break;
                }
                evicted += 1;
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop every live entry (all shards), returning how many were
    /// dropped. Monotonic counters (hits/misses/insertions/…) are kept —
    /// only the live entries, recency tickets, and byte accounting reset.
    /// The server calls this on a pipeline hot swap so no pre-swap result
    /// can answer a post-swap request.
    pub fn clear(&self) -> usize {
        let mut dropped = 0;
        for s in &self.shards {
            let mut s = relock(s.lock());
            dropped += s.map.len();
            s.map.clear();
            s.order.clear();
            s.bytes = 0;
        }
        dropped
    }

    /// Point-in-time statistics across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for s in &self.shards {
            let s = relock(s.lock());
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_shard(capacity: usize) -> ResultCache<Vec<u8>> {
        ResultCache::new(CacheConfig {
            shards: 1,
            capacity_bytes: capacity,
        })
    }

    fn put(c: &ResultCache<Vec<u8>>, key: &str, val: &str) {
        c.put(
            key.as_bytes().to_vec(),
            Arc::new(val.as_bytes().to_vec()),
            val.len(),
        );
    }

    #[test]
    fn hit_heavy_workload_keeps_ticket_queue_bounded() {
        // Every hit mints a recency ticket; without compaction a
        // hit-heavy workload grows the queue forever even though the
        // map holds a single entry.
        let mut shard: Shard<Vec<u8>> = Shard::new();
        let seq = shard.next_seq;
        shard.next_seq += 1;
        shard.map.insert(
            b"k".to_vec(),
            Entry {
                value: Arc::new(vec![1u8]),
                charge: 2,
                seq,
            },
        );
        shard.order.push_back((seq, b"k".to_vec()));
        shard.bytes += 2;
        for _ in 0..10_000 {
            assert!(shard.touch(b"k").is_some());
        }
        assert!(
            shard.order.len() <= 8 * shard.map.len() + 1,
            "ticket queue grew unbounded: {} tickets for {} entries",
            shard.order.len(),
            shard.map.len()
        );
    }

    #[test]
    fn get_put_and_counters() {
        let c = single_shard(1024);
        assert!(c.get(b"a").is_none());
        put(&c, "a", "value-a");
        let got = c.get(b"a").expect("hit");
        assert_eq!(&*got, b"value-a");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.entries, 1);
        assert!(s.bytes >= "a".len() + "value-a".len());
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Each entry charges key(1) + value(7) = 8 bytes; budget fits 3.
        let c = single_shard(24);
        put(&c, "a", "value-a");
        put(&c, "b", "value-b");
        put(&c, "c", "value-c");
        // Touch `a` so `b` becomes the LRU entry.
        assert!(c.get(b"a").is_some());
        put(&c, "d", "value-d");
        assert!(c.get(b"b").is_none(), "LRU entry must be evicted");
        assert!(c.get(b"a").is_some(), "recently touched entry survives");
        assert!(c.get(b"c").is_some());
        assert!(c.get(b"d").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 3);
    }

    #[test]
    fn eviction_order_follows_successive_touches() {
        let c = single_shard(24);
        put(&c, "a", "value-a");
        put(&c, "b", "value-b");
        put(&c, "c", "value-c");
        // Recency order now a < b < c; touch a, then b: order c < a < b.
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"b").is_some());
        put(&c, "d", "value-d"); // evicts c
        put(&c, "e", "value-e"); // evicts a
        assert!(c.get(b"c").is_none());
        assert!(c.get(b"a").is_none());
        assert!(c.get(b"b").is_some());
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn overwrite_replaces_charge_not_duplicates() {
        let c = single_shard(1024);
        put(&c, "a", "short");
        let before = c.stats().bytes;
        put(&c, "a", "a-much-longer-value-than-before");
        let after = c.stats();
        assert_eq!(after.entries, 1);
        assert!(after.bytes > before);
        assert_eq!(
            &**c.get(b"a").expect("hit"),
            b"a-much-longer-value-than-before"
        );
    }

    #[test]
    fn oversized_entries_are_rejected_not_cached() {
        let c = single_shard(16);
        put(&c, "k", "this-value-alone-exceeds-the-whole-budget");
        assert!(c.get(b"k").is_none());
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn byte_budget_is_enforced_across_shards() {
        let c: ResultCache<Vec<u8>> = ResultCache::new(CacheConfig {
            shards: 4,
            capacity_bytes: 4 * 24,
        });
        for i in 0..100 {
            let key = format!("key-{i}");
            c.put(
                key.clone().into_bytes(),
                Arc::new(b"0123456789".to_vec()),
                10,
            );
        }
        let s = c.stats();
        assert!(s.bytes <= 4 * 24, "bytes {} over budget", s.bytes);
        assert!(s.evictions > 0);
    }

    #[test]
    fn concurrent_access_keeps_accounting_sane() {
        let c = Arc::new(single_shard(512));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 7 + i) % 32);
                        if i % 3 == 0 {
                            c.put(key.clone().into_bytes(), Arc::new(vec![0u8; 8]), 8);
                        } else {
                            let _ = c.get(key.as_bytes());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("cache thread");
        }
        let s = c.stats();
        assert!(s.bytes <= 512);
        assert_eq!(s.hits + s.misses, 8 * 200 - s.insertions);
    }
}
