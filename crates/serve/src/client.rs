//! A minimal blocking client for the td-serve protocol.
//!
//! One request in flight per connection: `call` writes a frame and
//! blocks for the matching response. `call_raw` exposes the response
//! payload bytes untouched, so tests can compare a served answer
//! byte-for-byte against [`crate::server::execute`] encoded locally.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_response, read_frame, write_frame, ProtocolError, RequestEnvelope, ResponseEnvelope,
    MAX_FRAME_BYTES,
};

/// A connected client.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: MAX_FRAME_BYTES,
            next_id: 1,
        })
    }

    /// A fresh correlation id (monotonic per connection).
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send one envelope and return the raw response payload bytes.
    ///
    /// # Errors
    /// Fails on socket errors, oversized frames, or a server that
    /// closes the connection before responding.
    pub fn call_raw(&mut self, env: &RequestEnvelope) -> Result<Vec<u8>, ProtocolError> {
        let payload = serde_json::to_string(env)
            .map_err(|e| ProtocolError::Decode(e.to_string()))?
            .into_bytes();
        write_frame(&mut self.stream, &payload)?;
        read_frame(&mut self.stream, self.max_frame)?.ok_or_else(|| {
            ProtocolError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response",
            ))
        })
    }

    /// Send one envelope and decode the response.
    ///
    /// # Errors
    /// Same conditions as [`Client::call_raw`] plus decode failures.
    pub fn call(&mut self, env: &RequestEnvelope) -> Result<ResponseEnvelope, ProtocolError> {
        let raw = self.call_raw(env)?;
        decode_response(&raw)
    }
}
