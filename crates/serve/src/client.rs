//! A minimal blocking client for the td-serve protocol.
//!
//! One request in flight per connection: `call` writes a frame and
//! blocks for the matching response. `call_raw` exposes the response
//! payload bytes untouched, so tests can compare a served answer
//! byte-for-byte against [`crate::server::execute`] encoded locally.
//!
//! [`Client::connect_with_backoff`] retries a refused dial under a
//! capped exponential backoff — the coordinator uses it to re-admit a
//! shard that is restarting, and gives up cleanly after a bounded
//! number of attempts instead of hanging a scatter forever.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_response, read_frame, write_frame, ProtocolError, RequestEnvelope, ResponseEnvelope,
    MAX_FRAME_BYTES,
};

/// Retry policy for [`Client::connect_with_backoff`]: up to `attempts`
/// dials, sleeping `initial` after the first failure and doubling up to
/// `max` between subsequent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Total connection attempts before giving up (≥ 1; `0` is treated
    /// as `1` — a config cannot ask for zero dials).
    pub attempts: u32,
    /// Sleep after the first failed attempt.
    pub initial: Duration,
    /// Ceiling on the per-attempt sleep.
    pub max: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            attempts: 5,
            initial: Duration::from_millis(10),
            max: Duration::from_millis(250),
        }
    }
}

/// Dial with retries under `cfg`, generic over the dial function so the
/// give-up-after-N contract is unit-testable without real sockets.
fn dial_with_backoff<T>(
    cfg: &BackoffConfig,
    mut dial: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let attempts = cfg.attempts.max(1);
    let mut sleep = cfg.initial;
    let mut last_err = None;
    for attempt in 0..attempts {
        match dial() {
            Ok(v) => return Ok(v),
            Err(e) => last_err = Some(e),
        }
        // No sleep after the final failure — the caller gets the error
        // immediately once the budget is spent.
        if attempt + 1 < attempts {
            std::thread::sleep(sleep);
            sleep = (sleep * 2).min(cfg.max);
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no connection attempt made")))
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: MAX_FRAME_BYTES,
            next_id: 1,
        })
    }

    /// Connect, retrying refused dials under `cfg`'s capped exponential
    /// backoff; gives up with the last dial error after `cfg.attempts`
    /// attempts.
    ///
    /// # Errors
    /// The final attempt's connection error once the retry budget is
    /// spent.
    pub fn connect_with_backoff(
        addr: impl ToSocketAddrs,
        cfg: &BackoffConfig,
    ) -> io::Result<Client> {
        dial_with_backoff(cfg, || Client::connect(&addr))
    }

    /// A fresh correlation id (monotonic per connection).
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send one envelope and return the raw response payload bytes.
    ///
    /// # Errors
    /// Fails on socket errors, oversized frames, or a server that
    /// closes the connection before responding.
    pub fn call_raw(&mut self, env: &RequestEnvelope) -> Result<Vec<u8>, ProtocolError> {
        let payload = serde_json::to_string(env)
            .map_err(|e| ProtocolError::Decode(e.to_string()))?
            .into_bytes();
        write_frame(&mut self.stream, &payload)?;
        read_frame(&mut self.stream, self.max_frame)?.ok_or_else(|| {
            ProtocolError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response",
            ))
        })
    }

    /// Send one envelope and decode the response.
    ///
    /// # Errors
    /// Same conditions as [`Client::call_raw`] plus decode failures.
    pub fn call(&mut self, env: &RequestEnvelope) -> Result<ResponseEnvelope, ProtocolError> {
        let raw = self.call_raw(env)?;
        decode_response(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn backoff_gives_up_after_n_attempts() {
        let cfg = BackoffConfig {
            attempts: 3,
            initial: Duration::from_millis(1),
            max: Duration::from_millis(2),
        };
        let mut dials = 0u32;
        let r: io::Result<()> = dial_with_backoff(&cfg, || {
            dials += 1;
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
        });
        assert_eq!(dials, 3, "must dial exactly `attempts` times");
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn backoff_stops_at_first_success() {
        let cfg = BackoffConfig {
            attempts: 5,
            initial: Duration::from_millis(1),
            max: Duration::from_millis(2),
        };
        let mut dials = 0u32;
        let r = dial_with_backoff(&cfg, || {
            dials += 1;
            if dials < 3 {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
            } else {
                Ok(dials)
            }
        });
        assert_eq!(r.expect("third dial succeeds"), 3);
        assert_eq!(dials, 3, "no dials after the first success");
    }

    #[test]
    fn backoff_treats_zero_attempts_as_one() {
        let cfg = BackoffConfig {
            attempts: 0,
            initial: Duration::from_millis(1),
            max: Duration::from_millis(1),
        };
        let mut dials = 0u32;
        let _: io::Result<()> = dial_with_backoff(&cfg, || {
            dials += 1;
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
        });
        assert_eq!(dials, 1);
    }

    #[test]
    fn connect_with_backoff_reaches_a_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let c = Client::connect_with_backoff(addr, &BackoffConfig::default());
        assert!(c.is_ok(), "live listener must be reachable on attempt 1");
    }
}
