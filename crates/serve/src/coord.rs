//! The scatter-gather coordinator: one td-serve endpoint fronting K
//! shard servers.
//!
//! Each shard server owns a hash partition of the lake (routing is the
//! pure function `td_shard::ShardMap::shard_of`, so the coordinator and
//! the shards never exchange placement state). A query fans out to
//! every shard over the ordinary td-serve protocol and the per-shard
//! answers are folded with `td_shard::merge` — the same algebra the
//! in-process `td_shard::ShardedPipeline` uses, so a K-shard answer is
//! byte-identical to a 1-shard answer (pinned by the equivalence
//! suites).
//!
//! Two families need two network phases:
//!
//! * **keyword** — gather per-shard BM25 statistics
//!   ([`Request::KeywordStats`]), merge, re-scatter the pinned global
//!   statistics ([`Request::KeywordScored`]);
//! * **unionable semantic** — gather per-query-column candidate
//!   windows ([`Request::SemanticCandidates`]), merge and truncate to
//!   the configured fanout, re-scatter the pinned candidate table set
//!   ([`Request::SemanticScored`]).
//!
//! The join families fetch per-shard *column* windows
//! ([`Request::JoinableColumns`], [`Request::FuzzyColumns`]) and run
//! the shared table aggregation on the merged window; the remaining
//! families are plain top-k unions.
//!
//! ## Partial failure
//!
//! A shard that cannot be dialed (after the configured backoff) or that
//! fails mid-call is dropped from the scatter: the reply still carries
//! `Status::Ok`, merged over the reachable shards, and the response
//! envelope's `degraded` field names the missing shard ids. Mutations
//! are different — an unreachable *owner* shard fails the request with
//! [`Status::Internal`], because a routed write has exactly one home.
//! A shard that comes back (same address, or a replacement registered
//! via [`Coordinator::set_shard_addr`]) is re-admitted on the next
//! scatter by the reconnect path, restoring byte-identical answers.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use td_core::union::starmie::StarmieConfig;
use td_obs::{Counter, Gauge, Histogram, Timer};
use td_shard::{merge, Bm25Stats, ShardMap};
use td_table::TableId;

use crate::client::{BackoffConfig, Client};
use crate::protocol::{
    decode_request, write_frame, FramePoll, FrameReader, HealthReply, MetricsReply, Reply, Request,
    RequestEnvelope, ResponseEnvelope, SnapshotReply, StatsReply, Status, TraceJson,
    MAX_FRAME_BYTES,
};

fn relock<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Coordinator construction parameters.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Shard server addresses; index in this list IS the shard id, and
    /// the list length fixes the `ShardMap` modulus.
    pub addrs: Vec<String>,
    /// Semantic candidate fanout — must match the shards'
    /// `StarmieConfig::fanout`, or the merged candidate window will not
    /// reproduce a one-shard window.
    pub fanout: usize,
    /// Per-frame payload ceiling on shard connections.
    pub max_frame_bytes: usize,
    /// Dial-retry policy when (re)connecting to a shard.
    pub backoff: BackoffConfig,
}

impl CoordConfig {
    /// A config over `addrs` with the default Starmie fanout and a fast
    /// two-attempt dial policy (a dead shard must degrade the reply,
    /// not stall it behind a long retry ladder).
    #[must_use]
    pub fn new(addrs: Vec<String>) -> Self {
        CoordConfig {
            addrs,
            fanout: StarmieConfig::default().fanout,
            max_frame_bytes: MAX_FRAME_BYTES,
            backoff: BackoffConfig {
                attempts: 2,
                initial: Duration::from_millis(5),
                max: Duration::from_millis(20),
            },
        }
    }
}

/// One shard's connection slot: the address it is dialed at and the
/// cached connection (dropped on any call failure, re-dialed lazily).
struct ShardSlot {
    addr: Mutex<String>,
    conn: Mutex<Option<Client>>,
}

/// Registry handles held for the coordinator's lifetime.
struct CoordMetrics {
    /// Wall time of one whole scatter-gather (all shards, one phase).
    fanout_latency: Arc<Histogram>,
    /// Replies that shipped with a non-empty `degraded` list.
    degraded_replies: Arc<Counter>,
    /// Per-shard liveness, 1.0 after a successful call, 0.0 after a
    /// failure (`coord.shard.<i>.up`).
    shard_up: Vec<Arc<Gauge>>,
}

/// The scatter-gather front-end over K shard servers. Thread-safe:
/// connection threads of a [`CoordServer`] share one coordinator.
pub struct Coordinator {
    map: ShardMap,
    slots: Vec<ShardSlot>,
    cfg: CoordConfig,
    metrics: CoordMetrics,
}

impl Coordinator {
    /// A coordinator over `cfg.addrs` (one address per shard).
    ///
    /// # Panics
    /// Panics if `cfg.addrs` is empty — a coordinator needs at least
    /// one shard.
    #[must_use]
    pub fn new(cfg: CoordConfig) -> Self {
        let reg = td_obs::global();
        let shards = cfg.addrs.len();
        reg.gauge("coord.shards").set(shards as f64);
        let metrics = CoordMetrics {
            fanout_latency: reg.histogram("coord.fanout.latency_ns"),
            degraded_replies: reg.counter("coord.degraded_replies"),
            shard_up: (0..shards)
                .map(|i| reg.gauge(&format!("coord.shard.{i}.up")))
                .collect(),
        };
        let slots = cfg
            .addrs
            .iter()
            .map(|a| ShardSlot {
                addr: Mutex::new(a.clone()),
                conn: Mutex::new(None),
            })
            .collect();
        Coordinator {
            map: ShardMap::new(shards),
            slots,
            cfg,
            metrics,
        }
    }

    /// The routing map (same modulus as the shard fleet).
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Re-point shard `i` at a new address (a restarted or replacement
    /// server) and drop the stale connection; the next scatter
    /// re-admits it.
    pub fn set_shard_addr(&self, shard: usize, addr: impl Into<String>) {
        *relock(self.slots[shard].addr.lock()) = addr.into();
        *relock(self.slots[shard].conn.lock()) = None;
    }

    /// One call to one shard, re-dialing (with backoff) on a missing or
    /// broken connection. Any failure drops the cached connection so
    /// the next call starts from a clean dial.
    fn call_shard(&self, shard: usize, req: Request, deadline_ms: u64) -> Option<Reply> {
        let slot = &self.slots[shard];
        // The cached connection is *taken* out of the slot for the
        // duration of the call, so the slot lock is never held across a
        // blocking dial or round-trip. Concurrent callers that find the
        // slot empty dial their own connection; the last one back wins
        // the slot and the loser is simply dropped.
        let mut conn = relock(slot.conn.lock()).take();
        // One fresh-dial retry: a cached connection may have died since
        // the last scatter (the server restarted), in which case the
        // write fails and a clean reconnect is the correct second try.
        for _ in 0..2 {
            let mut client = match conn.take() {
                Some(c) => c,
                None => {
                    let addr = relock(slot.addr.lock()).clone();
                    match Client::connect_with_backoff(&addr, &self.cfg.backoff) {
                        Ok(c) => c,
                        Err(_) => break,
                    }
                }
            };
            let env = RequestEnvelope {
                id: client.next_id(),
                deadline_ms,
                req: req.clone(),
            };
            match client.call(&env) {
                Ok(resp) if resp.status == Status::Ok => {
                    *relock(slot.conn.lock()) = Some(client);
                    self.metrics.shard_up[shard].set(1.0);
                    return resp.reply;
                }
                // Drop the broken connection; the retry dials fresh.
                Ok(_) | Err(_) => {}
            }
        }
        self.metrics.shard_up[shard].set(0.0);
        None
    }

    /// Scatter one request per shard (`None` skips that shard) and
    /// gather the replies positionally. Shards are called from scoped
    /// threads so a slow shard overlaps the others; the result vector
    /// is indexed by shard id, so gather order is deterministic
    /// regardless of completion order.
    fn scatter(&self, reqs: Vec<Option<Request>>, deadline_ms: u64) -> Vec<Option<Reply>> {
        let _span = td_obs::trace::probe("coord.scatter");
        let t = Timer::start();
        let mut out: Vec<Option<Reply>> = (0..self.slots.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = reqs
                .into_iter()
                .enumerate()
                .map(|(shard, req)| {
                    req.map(|req| s.spawn(move || self.call_shard(shard, req, deadline_ms)))
                })
                .collect();
            for (shard, h) in handles.into_iter().enumerate() {
                if let Some(h) = h {
                    out[shard] = h.join().unwrap_or(None);
                }
            }
        });
        self.metrics.fanout_latency.record_duration(t.elapsed());
        out
    }

    /// Scatter `req` to every shard.
    fn scatter_all(&self, req: &Request, deadline_ms: u64) -> Vec<Option<Reply>> {
        self.scatter(
            (0..self.slots.len()).map(|_| Some(req.clone())).collect(),
            deadline_ms,
        )
    }

    /// Shard ids that were asked (`asked[i]`) but did not answer.
    fn missing(asked: &[bool], replies: &[Option<Reply>]) -> Vec<u32> {
        replies
            .iter()
            .enumerate()
            .filter(|(i, r)| asked[*i] && r.is_none())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Plain top-k union over per-shard `Reply::Scores` answers.
    fn fan_scores(&self, req: &Request, k: usize, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let replies = self.scatter_all(req, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let _span = td_obs::trace::probe("coord.gather");
        let per_shard = replies
            .into_iter()
            .map(|r| match r {
                Some(Reply::Scores(s)) => s,
                _ => Vec::new(),
            })
            .collect();
        (Reply::Scores(merge::merge_scores(per_shard, k)), degraded)
    }

    /// Two-phase distributed keyword search.
    fn keyword(&self, query: &str, k: usize, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let stats_req = Request::KeywordStats {
            query: query.to_string(),
        };
        let replies = self.scatter_all(&stats_req, deadline_ms);
        let mut degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let stats: Vec<Option<Bm25Stats>> = replies
            .into_iter()
            .map(|r| match r {
                Some(Reply::KeywordStats(s)) => Some(s),
                _ => None,
            })
            .collect();
        let live: Vec<Bm25Stats> = stats.iter().filter_map(Clone::clone).collect();
        let Some(global) = merge::merge_keyword_stats(&live) else {
            return (Reply::Scores(Vec::new()), degraded);
        };
        let asked: Vec<bool> = stats.iter().map(Option::is_some).collect();
        let reqs: Vec<Option<Request>> = stats
            .iter()
            .map(|s| {
                s.as_ref().map(|_| Request::KeywordScored {
                    query: query.to_string(),
                    k,
                    stats: global.clone(),
                })
            })
            .collect();
        let scored = self.scatter(reqs, deadline_ms);
        degraded.extend(Self::missing(&asked, &scored));
        degraded.sort_unstable();
        degraded.dedup();
        let _span = td_obs::trace::probe("coord.gather");
        let per_shard = scored
            .into_iter()
            .map(|r| match r {
                Some(Reply::Scores(s)) => s,
                _ => Vec::new(),
            })
            .collect();
        (Reply::Scores(merge::merge_scores(per_shard, k)), degraded)
    }

    /// Two-phase distributed semantic (Starmie) search.
    fn semantic(&self, table: &td_table::Table, k: usize, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let cand_req = Request::SemanticCandidates {
            table: table.clone(),
        };
        let replies = self.scatter_all(&cand_req, deadline_ms);
        let mut degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        // Per-shard candidate windows: one window (ranked `(column,
        // similarity)` list) per query column, `None` for shards that
        // did not answer.
        type Windows = Vec<Vec<(td_table::ColumnRef, f32)>>;
        let windows: Vec<Option<Windows>> = replies
            .into_iter()
            .map(|r| match r {
                Some(Reply::CandidateWindows(w)) => Some(w),
                _ => None,
            })
            .collect();
        let live: Vec<Windows> = windows.iter().filter_map(Clone::clone).collect();
        let merged = merge::merge_candidate_windows(&live, self.cfg.fanout);
        let tables: Vec<TableId> = merge::candidate_tables(&merged).into_iter().collect();
        let asked: Vec<bool> = windows.iter().map(Option::is_some).collect();
        let reqs: Vec<Option<Request>> = windows
            .iter()
            .map(|w| {
                w.as_ref().map(|_| Request::SemanticScored {
                    table: table.clone(),
                    k,
                    tables: tables.clone(),
                })
            })
            .collect();
        let scored = self.scatter(reqs, deadline_ms);
        degraded.extend(Self::missing(&asked, &scored));
        degraded.sort_unstable();
        degraded.dedup();
        let _span = td_obs::trace::probe("coord.gather");
        let per_shard = scored
            .into_iter()
            .map(|r| match r {
                Some(Reply::Scores(s)) => s,
                _ => Vec::new(),
            })
            .collect();
        (Reply::Scores(merge::merge_scores(per_shard, k)), degraded)
    }

    /// Column-window merge for the exact-join family.
    fn joinable(&self, column: &td_table::Column, k: usize, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let width = td_core::join::exact::column_fetch_width(k);
        let req = Request::JoinableColumns {
            column: column.clone(),
            width,
        };
        let replies = self.scatter_all(&req, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let _span = td_obs::trace::probe("coord.gather");
        let per_shard = replies
            .into_iter()
            .map(|r| match r {
                Some(Reply::OverlapColumns(w)) => w,
                _ => Vec::new(),
            })
            .collect();
        let window = merge::merge_overlap_columns(per_shard, width);
        (
            Reply::Overlaps(td_core::join::exact::aggregate_tables(window, k)),
            degraded,
        )
    }

    /// Column-window merge for the fuzzy-join family.
    fn fuzzy_joinable(
        &self,
        column: &td_table::Column,
        tau: f32,
        k: usize,
        deadline_ms: u64,
    ) -> (Reply, Vec<u32>) {
        let width = td_core::join::exact::column_fetch_width(k);
        let req = Request::FuzzyColumns {
            column: column.clone(),
            tau,
            width,
        };
        let replies = self.scatter_all(&req, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let _span = td_obs::trace::probe("coord.gather");
        let per_shard = replies
            .into_iter()
            .map(|r| match r {
                Some(Reply::FuzzyColumns(w)) => w,
                _ => Vec::new(),
            })
            .collect();
        let window = merge::merge_fuzzy_columns(per_shard, width);
        (
            Reply::Scores(td_core::join::fuzzy::aggregate_tables(window, k)),
            degraded,
        )
    }

    /// Correlated-search union.
    fn correlated(&self, req: &Request, k: usize, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let replies = self.scatter_all(req, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let _span = td_obs::trace::probe("coord.gather");
        let per_shard = replies
            .into_iter()
            .map(|r| match r {
                Some(Reply::Correlated(h)) => h,
                _ => Vec::new(),
            })
            .collect();
        (
            Reply::Correlated(merge::merge_correlated(per_shard, k)),
            degraded,
        )
    }

    /// Unpack one shard's `Reply::Batch` answer, requiring exactly `n`
    /// sub-replies — anything else counts as a missing shard.
    fn batch_replies(r: Option<Reply>, n: usize) -> Option<Vec<Reply>> {
        match r {
            Some(Reply::Batch(rs)) if rs.len() == n => Some(rs),
            _ => None,
        }
    }

    /// Per-shard `Scores` sub-replies at query index `qi`; missing
    /// shards (or unexpected reply shapes) contribute an empty list,
    /// exactly like the one-at-a-time gather.
    fn scores_at(shards: &[Option<Vec<Reply>>], qi: usize) -> Vec<Vec<(TableId, f64)>> {
        shards
            .iter()
            .map(|s| match s {
                Some(rs) => match &rs[qi] {
                    Reply::Scores(v) => v.clone(),
                    _ => Vec::new(),
                },
                None => Vec::new(),
            })
            .collect()
    }

    /// Per-request fallback for a batch the coalesced paths cannot
    /// shape-match (unreachable after `validate_batch`, but a wrong
    /// answer path must degrade to correctness, never panic).
    fn batch_fallback(&self, requests: &[Request], dl: u64) -> (Reply, Vec<u32>) {
        let mut degraded = Vec::new();
        let mut out = Vec::with_capacity(requests.len());
        for r in requests {
            let (reply, d) = match r {
                Request::Keyword { query, k } => self.keyword(query, *k, dl),
                Request::Joinable { column, k } => self.joinable(column, *k, dl),
                Request::FuzzyJoinable { column, tau, k } => {
                    self.fuzzy_joinable(column, *tau, *k, dl)
                }
                Request::UnionableSemantic { table, k } => self.semantic(table, *k, dl),
                Request::Unionable { k, .. }
                | Request::UnionableRelationship { k, .. }
                | Request::MultiJoinable { k, .. } => self.fan_scores(r, *k, dl),
                Request::Correlated { k, .. } => self.correlated(r, *k, dl),
                _ => (Reply::Scores(Vec::new()), Vec::new()),
            };
            out.push(reply);
            degraded.extend(d);
        }
        degraded.sort_unstable();
        degraded.dedup();
        (Reply::Batch(out), degraded)
    }

    /// Batched scatter-gather: the whole client batch ships to every
    /// shard as ONE `Request::Batch` frame per network phase (so a
    /// 16-query batch over K shards costs the same round-trips as a
    /// single query), and each query's per-shard answers are folded
    /// with exactly the merge algebra of the one-at-a-time paths.
    fn batch(&self, requests: &[Request], dl: u64) -> (Reply, Vec<u32>) {
        let n = requests.len();
        match &requests[0] {
            // Plain top-k unions: one fanout, per-query `merge_scores`.
            Request::Unionable { .. }
            | Request::UnionableRelationship { .. }
            | Request::MultiJoinable { .. } => {
                let req = Request::Batch {
                    requests: requests.to_vec(),
                };
                let replies = self.scatter_all(&req, dl);
                let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
                let shards: Vec<Option<Vec<Reply>>> = replies
                    .into_iter()
                    .map(|r| Self::batch_replies(r, n))
                    .collect();
                let _span = td_obs::trace::probe("coord.gather");
                let out = requests
                    .iter()
                    .enumerate()
                    .map(|(qi, r)| {
                        let k = match r {
                            Request::Unionable { k, .. }
                            | Request::UnionableRelationship { k, .. }
                            | Request::MultiJoinable { k, .. } => *k,
                            _ => 0,
                        };
                        Reply::Scores(merge::merge_scores(Self::scores_at(&shards, qi), k))
                    })
                    .collect();
                (Reply::Batch(out), degraded)
            }
            Request::Correlated { .. } => {
                let req = Request::Batch {
                    requests: requests.to_vec(),
                };
                let replies = self.scatter_all(&req, dl);
                let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
                let shards: Vec<Option<Vec<Reply>>> = replies
                    .into_iter()
                    .map(|r| Self::batch_replies(r, n))
                    .collect();
                let _span = td_obs::trace::probe("coord.gather");
                let out = requests
                    .iter()
                    .enumerate()
                    .map(|(qi, r)| {
                        let k = match r {
                            Request::Correlated { k, .. } => *k,
                            _ => 0,
                        };
                        let per_shard = shards
                            .iter()
                            .map(|s| match s {
                                Some(rs) => match &rs[qi] {
                                    Reply::Correlated(h) => h.clone(),
                                    _ => Vec::new(),
                                },
                                None => Vec::new(),
                            })
                            .collect();
                        Reply::Correlated(merge::merge_correlated(per_shard, k))
                    })
                    .collect();
                (Reply::Batch(out), degraded)
            }
            // Column-window families: one fanout of per-query window
            // requests, then the shared table aggregation per query.
            Request::Joinable { .. } => {
                let mut cols = Vec::with_capacity(n);
                for r in requests {
                    let Request::Joinable { column, k } = r else {
                        return self.batch_fallback(requests, dl);
                    };
                    cols.push((column, *k));
                }
                let sub: Vec<Request> = cols
                    .iter()
                    .map(|(c, k)| Request::JoinableColumns {
                        column: (*c).clone(),
                        width: td_core::join::exact::column_fetch_width(*k),
                    })
                    .collect();
                let replies = self.scatter_all(&Request::Batch { requests: sub }, dl);
                let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
                let shards: Vec<Option<Vec<Reply>>> = replies
                    .into_iter()
                    .map(|r| Self::batch_replies(r, n))
                    .collect();
                let _span = td_obs::trace::probe("coord.gather");
                let out = cols
                    .iter()
                    .enumerate()
                    .map(|(qi, (_, k))| {
                        let width = td_core::join::exact::column_fetch_width(*k);
                        let per_shard = shards
                            .iter()
                            .map(|s| match s {
                                Some(rs) => match &rs[qi] {
                                    Reply::OverlapColumns(w) => w.clone(),
                                    _ => Vec::new(),
                                },
                                None => Vec::new(),
                            })
                            .collect();
                        let window = merge::merge_overlap_columns(per_shard, width);
                        Reply::Overlaps(td_core::join::exact::aggregate_tables(window, *k))
                    })
                    .collect();
                (Reply::Batch(out), degraded)
            }
            Request::FuzzyJoinable { .. } => {
                let mut cols = Vec::with_capacity(n);
                for r in requests {
                    let Request::FuzzyJoinable { column, tau, k } = r else {
                        return self.batch_fallback(requests, dl);
                    };
                    cols.push((column, *tau, *k));
                }
                let sub: Vec<Request> = cols
                    .iter()
                    .map(|(c, tau, k)| Request::FuzzyColumns {
                        column: (*c).clone(),
                        tau: *tau,
                        width: td_core::join::exact::column_fetch_width(*k),
                    })
                    .collect();
                let replies = self.scatter_all(&Request::Batch { requests: sub }, dl);
                let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
                let shards: Vec<Option<Vec<Reply>>> = replies
                    .into_iter()
                    .map(|r| Self::batch_replies(r, n))
                    .collect();
                let _span = td_obs::trace::probe("coord.gather");
                let out = cols
                    .iter()
                    .enumerate()
                    .map(|(qi, (_, _, k))| {
                        let width = td_core::join::exact::column_fetch_width(*k);
                        let per_shard = shards
                            .iter()
                            .map(|s| match s {
                                Some(rs) => match &rs[qi] {
                                    Reply::FuzzyColumns(w) => w.clone(),
                                    _ => Vec::new(),
                                },
                                None => Vec::new(),
                            })
                            .collect();
                        let window = merge::merge_fuzzy_columns(per_shard, width);
                        Reply::Scores(td_core::join::fuzzy::aggregate_tables(window, *k))
                    })
                    .collect();
                (Reply::Batch(out), degraded)
            }
            // Two-phase keyword: one batched stats fanout, one batched
            // scoring fanout pinned to the merged global statistics.
            Request::Keyword { .. } => {
                let mut queries = Vec::with_capacity(n);
                for r in requests {
                    let Request::Keyword { query, k } = r else {
                        return self.batch_fallback(requests, dl);
                    };
                    queries.push((query.clone(), *k));
                }
                let stats_batch = Request::Batch {
                    requests: queries
                        .iter()
                        .map(|(q, _)| Request::KeywordStats { query: q.clone() })
                        .collect(),
                };
                let replies = self.scatter_all(&stats_batch, dl);
                let mut degraded = Self::missing(&vec![true; self.slots.len()], &replies);
                let shards: Vec<Option<Vec<Reply>>> = replies
                    .into_iter()
                    .map(|r| Self::batch_replies(r, n))
                    .collect();
                let asked: Vec<bool> = shards.iter().map(Option::is_some).collect();
                let globals: Vec<Option<Bm25Stats>> = (0..n)
                    .map(|qi| {
                        let live: Vec<Bm25Stats> = shards
                            .iter()
                            .flatten()
                            .filter_map(|rs| match &rs[qi] {
                                Reply::KeywordStats(s) => Some(s.clone()),
                                _ => None,
                            })
                            .collect();
                        merge::merge_keyword_stats(&live)
                    })
                    .collect();
                // Queries with no statistics anywhere answer empty, the
                // same as the single-query path.
                let scored: Vec<(usize, Request)> = globals
                    .iter()
                    .enumerate()
                    .filter_map(|(qi, g)| {
                        g.as_ref().map(|g| {
                            (
                                qi,
                                Request::KeywordScored {
                                    query: queries[qi].0.clone(),
                                    k: queries[qi].1,
                                    stats: g.clone(),
                                },
                            )
                        })
                    })
                    .collect();
                let mut out: Vec<Reply> = (0..n).map(|_| Reply::Scores(Vec::new())).collect();
                if !scored.is_empty() {
                    let m = scored.len();
                    let scored_batch = Request::Batch {
                        requests: scored.iter().map(|(_, r)| r.clone()).collect(),
                    };
                    let reqs: Vec<Option<Request>> = asked
                        .iter()
                        .map(|&a| a.then(|| scored_batch.clone()))
                        .collect();
                    let scored_replies = self.scatter(reqs, dl);
                    degraded.extend(Self::missing(&asked, &scored_replies));
                    let sshards: Vec<Option<Vec<Reply>>> = scored_replies
                        .into_iter()
                        .map(|r| Self::batch_replies(r, m))
                        .collect();
                    let _span = td_obs::trace::probe("coord.gather");
                    for (ri, (qi, _)) in scored.iter().enumerate() {
                        let per_shard = Self::scores_at(&sshards, ri);
                        out[*qi] = Reply::Scores(merge::merge_scores(per_shard, queries[*qi].1));
                    }
                }
                degraded.sort_unstable();
                degraded.dedup();
                (Reply::Batch(out), degraded)
            }
            // Two-phase semantic: one batched candidate fanout, one
            // batched scoring fanout pinned to each query's merged
            // candidate table set.
            Request::UnionableSemantic { .. } => {
                let mut queries = Vec::with_capacity(n);
                for r in requests {
                    let Request::UnionableSemantic { table, k } = r else {
                        return self.batch_fallback(requests, dl);
                    };
                    queries.push((table, *k));
                }
                let cand_batch = Request::Batch {
                    requests: queries
                        .iter()
                        .map(|(t, _)| Request::SemanticCandidates {
                            table: (*t).clone(),
                        })
                        .collect(),
                };
                let replies = self.scatter_all(&cand_batch, dl);
                let mut degraded = Self::missing(&vec![true; self.slots.len()], &replies);
                let shards: Vec<Option<Vec<Reply>>> = replies
                    .into_iter()
                    .map(|r| Self::batch_replies(r, n))
                    .collect();
                let asked: Vec<bool> = shards.iter().map(Option::is_some).collect();
                type Windows = Vec<Vec<(td_table::ColumnRef, f32)>>;
                let tables_per_q: Vec<Vec<TableId>> = (0..n)
                    .map(|qi| {
                        let live: Vec<Windows> = shards
                            .iter()
                            .flatten()
                            .filter_map(|rs| match &rs[qi] {
                                Reply::CandidateWindows(w) => Some(w.clone()),
                                _ => None,
                            })
                            .collect();
                        let merged = merge::merge_candidate_windows(&live, self.cfg.fanout);
                        merge::candidate_tables(&merged).into_iter().collect()
                    })
                    .collect();
                let scored_batch = Request::Batch {
                    requests: (0..n)
                        .map(|qi| Request::SemanticScored {
                            table: queries[qi].0.clone(),
                            k: queries[qi].1,
                            tables: tables_per_q[qi].clone(),
                        })
                        .collect(),
                };
                let reqs: Vec<Option<Request>> = asked
                    .iter()
                    .map(|&a| a.then(|| scored_batch.clone()))
                    .collect();
                let scored = self.scatter(reqs, dl);
                degraded.extend(Self::missing(&asked, &scored));
                let sshards: Vec<Option<Vec<Reply>>> = scored
                    .into_iter()
                    .map(|r| Self::batch_replies(r, n))
                    .collect();
                let _span = td_obs::trace::probe("coord.gather");
                let out = (0..n)
                    .map(|qi| {
                        Reply::Scores(merge::merge_scores(
                            Self::scores_at(&sshards, qi),
                            queries[qi].1,
                        ))
                    })
                    .collect();
                degraded.sort_unstable();
                degraded.dedup();
                (Reply::Batch(out), degraded)
            }
            _ => self.batch_fallback(requests, dl),
        }
    }

    /// Rolling reload: shards are reloaded one at a time, in shard
    /// order, so K-1 shards keep serving at full capacity throughout.
    /// The reported epoch is the maximum across successful shards.
    fn rolling_reload(&self, deadline_ms: u64) -> (Option<Reply>, Vec<u32>) {
        let mut degraded = Vec::new();
        let mut epoch = 0u64;
        let mut any = false;
        for shard in 0..self.slots.len() {
            match self.call_shard(shard, Request::Reload, deadline_ms) {
                Some(Reply::Reloaded(e)) => {
                    epoch = epoch.max(e);
                    any = true;
                }
                _ => degraded.push(shard as u32),
            }
        }
        (any.then_some(Reply::Reloaded(epoch)), degraded)
    }

    /// Fleet-wide checkpoint: every shard folds its own WAL; the reply
    /// sums sizes and record counts.
    fn snapshot_all(&self, deadline_ms: u64) -> (Option<Reply>, Vec<u32>) {
        let replies = self.scatter_all(&Request::Snapshot, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let mut sum = SnapshotReply::default();
        let mut any = false;
        for r in replies.into_iter().flatten() {
            if let Reply::Snapshotted(s) = r {
                sum.seq = sum.seq.max(s.seq);
                sum.bytes += s.bytes;
                sum.wal_records_folded += s.wal_records_folded;
                any = true;
            }
        }
        (any.then_some(Reply::Snapshotted(sum)), degraded)
    }

    /// Aggregate `Health` across shards: healthy iff every shard
    /// answered and reports healthy; gauges sum; the epoch is the
    /// maximum (shards bump independently under rolling reloads).
    fn health(&self, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let replies = self.scatter_all(&Request::Health, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let mut agg = HealthReply {
            healthy: degraded.is_empty(),
            ..HealthReply::default()
        };
        for r in replies.into_iter().flatten() {
            if let Reply::Health(h) = r {
                agg.healthy &= h.healthy;
                agg.epoch = agg.epoch.max(h.epoch);
                agg.segments += h.segments;
                agg.tombstones += h.tombstones;
                agg.queue_depth += h.queue_depth;
                agg.inflight += h.inflight;
                agg.workers += h.workers;
                agg.draining |= h.draining;
                agg.traced += h.traced;
            }
        }
        (Reply::Health(agg), degraded)
    }

    /// Aggregate `Stats` across shards: monotonic counters sum, the
    /// epoch is the maximum, per-endpoint latency rows are omitted
    /// (percentiles do not compose across shards).
    fn stats(&self, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let replies = self.scatter_all(&Request::Stats, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let mut agg = StatsReply::default();
        for r in replies.into_iter().flatten() {
            if let Reply::Stats(s) = r {
                agg.epoch = agg.epoch.max(s.epoch);
                agg.requests += s.requests;
                agg.served_ok += s.served_ok;
                agg.shed += s.shed;
                agg.deadline_expired += s.deadline_expired;
                agg.bad_requests += s.bad_requests;
                agg.cache_hits += s.cache_hits;
                agg.cache_misses += s.cache_misses;
                agg.cache_evictions += s.cache_evictions;
                agg.queue_depth += s.queue_depth;
                agg.inflight += s.inflight;
            }
        }
        (Reply::Stats(agg), degraded)
    }

    /// Concatenate per-shard metric dumps, each under a shard header.
    fn metrics_dump(&self, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let replies = self.scatter_all(&Request::MetricsDump, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let mut prometheus = String::new();
        let mut json_parts = Vec::new();
        for (shard, r) in replies.into_iter().enumerate() {
            if let Some(Reply::Metrics(m)) = r {
                prometheus.push_str(&format!("# shard {shard}\n"));
                prometheus.push_str(&m.prometheus);
                json_parts.push(m.json);
            }
        }
        let json = format!("[{}]", json_parts.join(","));
        (Reply::Metrics(MetricsReply { prometheus, json }), degraded)
    }

    /// Merge per-shard slow-query logs: worst first (duration
    /// descending, trace id ascending), truncated to `n`.
    fn slow_queries(&self, n: usize, deadline_ms: u64) -> (Reply, Vec<u32>) {
        let replies = self.scatter_all(&Request::SlowQueries { n }, deadline_ms);
        let degraded = Self::missing(&vec![true; self.slots.len()], &replies);
        let mut all: Vec<TraceJson> = replies
            .into_iter()
            .flatten()
            .filter_map(|r| match r {
                Reply::SlowQueries(t) => Some(t),
                _ => None,
            })
            .flatten()
            .collect();
        all.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.trace_id.cmp(&b.trace_id)));
        all.truncate(n);
        (Reply::SlowQueries(all), degraded)
    }

    /// Route a mutation to the owning shard. Unlike searches, a routed
    /// write has exactly one home: an unreachable owner is a hard
    /// failure, not a degradation.
    fn route_mutation(&self, id: TableId, env_id: u64, req: Request, dl: u64) -> ResponseEnvelope {
        let owner = self.map.shard_of(id);
        match self.call_shard(owner, req, dl) {
            Some(reply) => ResponseEnvelope::ok(env_id, reply),
            None => {
                let mut resp = ResponseEnvelope::fail(
                    env_id,
                    Status::Internal,
                    format!("owning shard {owner} is unreachable"),
                );
                resp.degraded = vec![owner as u32];
                resp
            }
        }
    }

    /// Answer one client envelope: the coordinator's whole dispatch
    /// surface. Search families scatter-gather; mutations route to the
    /// owning shard; `Reload` rolls across shards; admin aggregates.
    /// Shard-plane requests are refused — they are the coordinator's
    /// *outbound* vocabulary, not part of its public surface.
    #[must_use]
    pub fn handle(&self, env: &RequestEnvelope) -> ResponseEnvelope {
        let id = env.id;
        let dl = env.deadline_ms;
        let (reply, degraded) = match &env.req {
            Request::Ping => (Some(Reply::Pong), Vec::new()),
            Request::Keyword { query, k } => {
                let (r, d) = self.keyword(query, *k, dl);
                (Some(r), d)
            }
            Request::Joinable { column, k } => {
                let (r, d) = self.joinable(column, *k, dl);
                (Some(r), d)
            }
            Request::FuzzyJoinable { column, tau, k } => {
                let (r, d) = self.fuzzy_joinable(column, *tau, *k, dl);
                (Some(r), d)
            }
            Request::UnionableSemantic { table, k } => {
                let (r, d) = self.semantic(table, *k, dl);
                (Some(r), d)
            }
            Request::Unionable { k, .. }
            | Request::UnionableRelationship { k, .. }
            | Request::MultiJoinable { k, .. } => {
                let (r, d) = self.fan_scores(&env.req, *k, dl);
                (Some(r), d)
            }
            Request::Correlated { k, .. } => {
                let (r, d) = self.correlated(&env.req, *k, dl);
                (Some(r), d)
            }
            Request::IngestTable { id: tid, .. } => {
                return self.route_mutation(*tid, id, env.req.clone(), dl);
            }
            Request::DropTable { id: tid } => {
                return self.route_mutation(*tid, id, env.req.clone(), dl);
            }
            Request::Reload => self.rolling_reload(dl),
            Request::Snapshot => self.snapshot_all(dl),
            Request::Health => {
                let (r, d) = self.health(dl);
                (Some(r), d)
            }
            Request::Stats => {
                let (r, d) = self.stats(dl);
                (Some(r), d)
            }
            Request::MetricsDump => {
                let (r, d) = self.metrics_dump(dl);
                (Some(r), d)
            }
            Request::SlowQueries { n } => {
                let (r, d) = self.slow_queries(*n, dl);
                (Some(r), d)
            }
            Request::Batch { requests } => {
                if let Err(e) = Request::validate_batch(requests) {
                    return ResponseEnvelope::fail(id, Status::BadRequest, e);
                }
                // `validate_batch` admits shard-plane kinds (they are the
                // coordinator's *outbound* vocabulary), but clients may
                // only batch the public search families.
                if requests[0].endpoint().starts_with("shard.")
                    || matches!(
                        requests[0],
                        Request::KeywordStats { .. }
                            | Request::KeywordScored { .. }
                            | Request::JoinableColumns { .. }
                            | Request::FuzzyColumns { .. }
                            | Request::SemanticCandidates { .. }
                            | Request::SemanticScored { .. }
                    )
                {
                    return ResponseEnvelope::fail(
                        id,
                        Status::BadRequest,
                        "shard-plane requests are not part of the coordinator's public surface",
                    );
                }
                let (r, d) = self.batch(requests, dl);
                (Some(r), d)
            }
            Request::KeywordStats { .. }
            | Request::KeywordScored { .. }
            | Request::JoinableColumns { .. }
            | Request::FuzzyColumns { .. }
            | Request::SemanticCandidates { .. }
            | Request::SemanticScored { .. } => {
                return ResponseEnvelope::fail(
                    id,
                    Status::BadRequest,
                    "shard-plane requests are not part of the coordinator's public surface",
                );
            }
        };
        if !degraded.is_empty() {
            self.metrics.degraded_replies.inc();
        }
        match reply {
            Some(reply) => ResponseEnvelope::ok_degraded(id, reply, degraded),
            None => {
                let mut resp = ResponseEnvelope::fail(
                    id,
                    Status::Internal,
                    "no shard answered the fleet-wide request",
                );
                resp.degraded = degraded;
                resp
            }
        }
    }
}

/// Front-end server parameters.
#[derive(Debug, Clone)]
pub struct CoordServerConfig {
    /// Bind address; use port `0` for an ephemeral port.
    pub addr: String,
    /// Per-frame payload ceiling on client connections.
    pub max_frame_bytes: usize,
    /// Socket read timeout; bounds how fast connection threads observe
    /// the shutdown flag.
    pub poll_interval: Duration,
}

impl Default for CoordServerConfig {
    fn default() -> Self {
        CoordServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// A running coordinator front-end speaking the td-serve protocol.
/// Requests are answered on the connection thread — the heavy lifting
/// (index probes) happens on the shard servers, so the coordinator's
/// own work per request is merge arithmetic. Dropping it performs a
/// graceful shutdown.
pub struct CoordServer {
    addr: SocketAddr,
    coord: Arc<Coordinator>,
    shutting_down: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    down: bool,
}

impl CoordServer {
    /// Bind and begin accepting clients.
    ///
    /// # Errors
    /// Fails if the listener cannot bind `cfg.addr`.
    pub fn start(coord: Arc<Coordinator>, cfg: CoordServerConfig) -> std::io::Result<CoordServer> {
        let listener = std::net::TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let coord = Arc::clone(&coord);
            let down = Arc::clone(&shutting_down);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if down.load(Ordering::SeqCst) {
                            return;
                        }
                        let coord = Arc::clone(&coord);
                        let down = Arc::clone(&down);
                        let max_frame = cfg.max_frame_bytes;
                        let poll = cfg.poll_interval;
                        let handle = std::thread::spawn(move || {
                            conn_loop(&stream, &coord, &down, max_frame, poll);
                        });
                        let mut conns = relock(conns.lock());
                        conns.retain(|h| !h.is_finished());
                        conns.push(handle);
                    }
                    Err(_) => {
                        if down.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                }
            })
        };
        Ok(CoordServer {
            addr,
            coord,
            shutting_down,
            accept: Some(accept),
            conns,
            down: false,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator behind this front-end (e.g. to re-point a shard
    /// address after a replacement server comes up).
    #[must_use]
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coord
    }

    /// Graceful shutdown: stop accepting, join connection threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.shutting_down.store(true, Ordering::SeqCst);
        // td-lint: allow(TD011) best-effort wake-up dial: a refused connect means the accept loop already exited
        let _ = std::net::TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join(); // td-lint: allow(TD011) a panicked accept loop has nothing further to clean up
        }
        let conns = std::mem::take(&mut *relock(self.conns.lock()));
        for h in conns {
            let _ = h.join(); // td-lint: allow(TD011) connection threads hold no state beyond their socket
        }
    }
}

impl Drop for CoordServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn conn_loop(
    stream: &std::net::TcpStream,
    coord: &Coordinator,
    down: &AtomicBool,
    max_frame: usize,
    poll: Duration,
) {
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut read_half = stream;
    let mut reader = FrameReader::new();
    loop {
        if down.load(Ordering::SeqCst) {
            return;
        }
        match reader.poll(&mut read_half, max_frame) {
            Ok(FramePoll::Pending) => {}
            Ok(FramePoll::Eof) => return,
            Ok(FramePoll::Frame(payload)) => {
                let resp = match decode_request(&payload) {
                    Ok(env) => coord.handle(&env),
                    Err(e) => ResponseEnvelope::fail(0, Status::BadRequest, e.to_string()),
                };
                if let Ok(bytes) = crate::protocol::encode_response(&resp) {
                    if write_frame(&mut write_half, &bytes).is_err() {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}
