//! Spawning a shard fleet: K td-serve servers, each owning one hash
//! partition of the lake, ready to sit behind a
//! [`crate::coord::Coordinator`].
//!
//! The fleet is a deployment convenience, not a distributed-systems
//! runtime: every server lives in this process on an ephemeral port.
//! That is exactly what the equivalence tests and `shard_report` need —
//! real sockets, real framing, real partial failure (a shard can be
//! stopped and replaced) — without inventing process supervision.

use std::io;
use std::path::Path;
use std::sync::Arc;

use td_core::segment::PipelineContext;
use td_core::{DiscoveryPipeline, SegmentedPipeline};
use td_shard::{shard_dir, ShardMap};
use td_table::{Table, TableId};

use crate::coord::{CoordConfig, Coordinator};
use crate::persist::boot;
use crate::server::{Server, ServerConfig};

/// K running shard servers. Index in `servers` is the shard id — the
/// same index [`ShardMap::shard_of`] routes to.
pub struct ShardFleet {
    servers: Vec<Option<Server>>,
}

impl ShardFleet {
    /// Start one server per pipeline, each on its own ephemeral port
    /// (`cfg.addr` is used as given for a single shard; for more, the
    /// port is forced to `0` so shards never collide).
    ///
    /// # Errors
    /// Fails if any listener cannot bind.
    pub fn start(
        pipelines: Vec<Arc<DiscoveryPipeline>>,
        cfg: &ServerConfig,
    ) -> io::Result<ShardFleet> {
        let servers = pipelines
            .into_iter()
            .map(|p| Server::start(p, cfg.clone()).map(Some))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ShardFleet { servers })
    }

    /// Partition `tables` with [`ShardMap`], build one
    /// [`SegmentedPipeline`] per shard, and serve each. The shared
    /// context guarantees a table's indexed form is identical whichever
    /// shard owns it.
    ///
    /// # Errors
    /// Fails if any listener cannot bind.
    pub fn start_partitioned(
        shards: usize,
        ctx: &PipelineContext,
        tables: &[(TableId, Table)],
        cfg: &ServerConfig,
    ) -> io::Result<ShardFleet> {
        let map = ShardMap::new(shards);
        let mut pipelines: Vec<SegmentedPipeline> = (0..shards)
            .map(|_| SegmentedPipeline::with_context(ctx.clone()))
            .collect();
        for (id, t) in tables {
            pipelines[map.shard_of(*id)].ingest_table(*id, t);
        }
        Self::start(
            pipelines.iter().map(SegmentedPipeline::snapshot).collect(),
            cfg,
        )
    }

    /// Start `shards` durable servers under one store root: shard `i`
    /// restores from (and persists to) `<root>/shard-<i>` — see
    /// [`td_shard::shard_dir`] — so every shard's WAL, snapshots, and
    /// corruption handling stay independent.
    ///
    /// # Errors
    /// Fails on store open/restore errors or if a listener cannot bind.
    pub fn start_durable(
        shards: usize,
        root: &Path,
        ctx: &PipelineContext,
        cfg: &ServerConfig,
    ) -> io::Result<ShardFleet> {
        let servers = (0..shards)
            .map(|i| {
                let (durable, _stats) =
                    boot(shard_dir(root, i), ctx.clone()).map_err(io::Error::other)?;
                Server::start_durable(durable, cfg.clone()).map(Some)
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ShardFleet { servers })
    }

    /// Number of shard slots (running or stopped).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.servers.len()
    }

    /// Shard addresses in shard order — the list a [`CoordConfig`] is
    /// built from. Stopped shards keep their last address (the
    /// coordinator will find them unreachable and degrade).
    ///
    /// # Panics
    /// Panics if called before any shard has started (unreachable: the
    /// constructors fail instead).
    #[must_use]
    pub fn addrs(&self) -> Vec<String> {
        self.servers
            .iter()
            .map(|s| {
                s.as_ref()
                    .map_or_else(|| "127.0.0.1:1".to_string(), |s| s.local_addr().to_string())
            })
            .collect()
    }

    /// A coordinator over this fleet's current addresses.
    #[must_use]
    pub fn coordinator(&self) -> Coordinator {
        Coordinator::new(CoordConfig::new(self.addrs()))
    }

    /// The running server for shard `i`, if it has not been stopped.
    #[must_use]
    pub fn server(&self, shard: usize) -> Option<&Server> {
        self.servers[shard].as_ref()
    }

    /// Stop shard `i` (graceful drain), leaving its slot empty — the
    /// partial-failure drill. Idempotent.
    pub fn stop_shard(&mut self, shard: usize) {
        if let Some(mut s) = self.servers[shard].take() {
            s.shutdown();
        }
    }

    /// Bring shard `i` back as a fresh durable server restored from its
    /// own store directory (the rejoin half of the partial-failure
    /// drill). Returns the new address; re-point the coordinator at it
    /// with `Coordinator::set_shard_addr`.
    ///
    /// # Errors
    /// Fails on store open/restore errors or if the listener cannot
    /// bind.
    pub fn restart_shard_durable(
        &mut self,
        shard: usize,
        root: &Path,
        ctx: &PipelineContext,
        cfg: &ServerConfig,
    ) -> io::Result<String> {
        self.stop_shard(shard);
        let (durable, _stats) =
            boot(shard_dir(root, shard), ctx.clone()).map_err(io::Error::other)?;
        let server = Server::start_durable(durable, cfg.clone())?;
        let addr = server.local_addr().to_string();
        self.servers[shard] = Some(server);
        Ok(addr)
    }

    /// Shut the whole fleet down (graceful, idempotent).
    pub fn shutdown(&mut self) {
        for s in &mut self.servers {
            if let Some(s) = s.as_mut() {
                s.shutdown();
            }
        }
    }
}
