//! # td-serve — the concurrent query-serving layer
//!
//! The tutorial's architecture ends where most reproductions stop: a
//! library of discovery operators. A data lake's discovery service is a
//! *server* — many analysts, notebooks, and catalog UIs issuing
//! joinability/unionability probes concurrently against one shared set
//! of indexes. This crate is that layer, std-only (no tokio, no
//! hyper): a multi-threaded TCP server exposing every
//! `DiscoveryPipeline::search_*` entry point over a length-prefixed
//! JSON protocol. The served pipeline is epoch-versioned: a staged
//! replacement (typically a [`td_core::SegmentedPipeline`] snapshot) is
//! promoted by an admin `Request::Reload` while in-flight queries
//! finish on the pipeline they were admitted under.
//!
//! The load-bearing pieces, each its own module:
//!
//! * [`protocol`] — framing, typed envelopes, and the canonical request
//!   encoder cache keys derive from (byte-stable across client float
//!   formatting).
//! * [`queue`] — the bounded admission queue: full ⇒ the request is
//!   shed with an immediate `Overloaded` response instead of joining an
//!   unbounded backlog.
//! * [`cache`] — a sharded, byte-bounded LRU over canonical request
//!   bytes, so repeated queries skip the pipeline entirely.
//! * [`server`] — accept loop, connection threads, worker pool sharing
//!   the epoch-versioned `Arc<DiscoveryPipeline>` slot, per-request
//!   deadlines, hot swap via staged pipelines + `Reload`, and graceful
//!   drain-then-shutdown.
//! * [`admin`] — the td-trace layer: per-request span trees (queue
//!   wait, cache lookup, per-component probes, rank/merge) recorded
//!   into per-worker rings, a slow-query log, and SLO error-budget
//!   accounting behind the `Stats` / `MetricsDump` / `SlowQueries` /
//!   `Health` admin endpoints.
//! * [`persist`] — restore-aware boot glue over `td-store`: a server
//!   started with `Server::start_durable` restores its pipeline from a
//!   snapshot + WAL directory instead of rebuilding, serves the persist
//!   plane (`IngestTable` / `DropTable` / `Snapshot`) with every
//!   mutation WAL-logged before it applies, and checkpoints without
//!   blocking in-flight queries.
//! * [`coord`] — the sharded deployment's front-end: a deterministic
//!   scatter-gather coordinator fanning every search family out to K
//!   shard servers and folding the answers with `td_shard::merge`, so
//!   a K-shard reply is byte-identical to a 1-shard reply; unreachable
//!   shards degrade the reply (the envelope's `degraded` field) instead
//!   of failing it.
//! * [`fleet`] — spawning K shard servers (hash-partitioned, optionally
//!   each with its own td-store directory) behind one coordinator.
//! * [`client`] — a minimal blocking client, with optional
//!   reconnect-with-backoff dialing.
//! * [`workload`] — seeded deterministic query streams for the
//!   `serve_report` load generator.
//!
//! ```no_run
//! use std::sync::Arc;
//! use td_serve::{Client, Reply, Request, RequestEnvelope, Server, ServerConfig};
//! # let pipeline: Arc<td_core::DiscoveryPipeline> = unimplemented!();
//! let mut server = Server::start(pipeline, ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let resp = client.call(&RequestEnvelope {
//!     id: 1,
//!     deadline_ms: 0,
//!     req: Request::Keyword { query: "census".into(), k: 5 },
//! })?;
//! assert!(matches!(resp.reply, Some(Reply::Scores(_))));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod admin;
pub mod cache;
pub mod client;
pub mod coord;
pub mod fleet;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod workload;

pub use admin::TraceConfig;
pub use cache::{CacheConfig, CacheStats, ResultCache};
pub use client::{BackoffConfig, Client};
pub use coord::{CoordConfig, CoordServer, CoordServerConfig, Coordinator};
pub use fleet::ShardFleet;
pub use persist::{boot, serving_snapshot, DurablePipeline, RestoreStats, Store};
pub use protocol::{
    canonical_bytes, decode_request, decode_response, encode_response, read_frame, write_frame,
    DropReply, EndpointStats, FramePoll, FrameReader, HealthReply, IngestReply, MetricsReply,
    ProtocolError, Reply, Request, RequestEnvelope, ResponseEnvelope, SloStats, SnapshotReply,
    SpanNodeJson, StatsReply, Status, TraceJson, MAX_BATCH, MAX_FRAME_BYTES, MAX_FRAME_PREALLOC,
};
pub use queue::{AdmissionQueue, PushError};
pub use server::{execute, execute_batch, Server, ServerConfig, ServerStats};
pub use workload::{Workload, WorkloadConfig};
