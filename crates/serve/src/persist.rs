//! Persist-aware startup: boot a server by *restoring* pipeline state
//! from a td-store directory instead of rebuilding it from the lake.
//!
//! The flow a durable deployment follows:
//!
//! 1. [`boot`] opens the store directory, loads the newest valid
//!    snapshot, truncates any torn WAL tail, and replays the surviving
//!    records — yielding a [`DurablePipeline`] whose merged rankings are
//!    byte-identical to a pipeline that lived through the same history
//!    in one process.
//! 2. [`serving_snapshot`] merges that segmented state into the
//!    immutable `Arc<DiscoveryPipeline>` the worker pool serves.
//! 3. `Server::start_durable` wires both together: queries run against
//!    the merged snapshot, while the persist-plane requests
//!    (`IngestTable`, `DropTable`, `Snapshot`) mutate the durable
//!    pipeline — every mutation WAL-logged before it is applied — and
//!    stage fresh serving snapshots for the next `Reload`.
//!
//! The store sits *below* serve in the crate layering: this module is
//! glue, not format logic. Format, checksums, and recovery semantics
//! live in `td-store`; the epoch-versioned hot-swap slot lives in
//! [`crate::server`].

use std::path::PathBuf;
use std::sync::Arc;

use td_core::segment::PipelineContext;
use td_core::DiscoveryPipeline;

pub use td_store::{CheckpointStats, DurablePipeline, RestoreStats, Store, StoreError};

/// Open (creating if needed) a store directory and restore the durable
/// pipeline from it: newest valid snapshot plus WAL replay, with torn
/// tails truncated and corrupt snapshots skipped.
///
/// A fresh directory yields an empty pipeline and zeroed
/// [`RestoreStats`] — the same call serves first boot and every restart.
///
/// # Errors
/// Fails on I/O errors and on a context fingerprint mismatch
/// ([`StoreError::ContextMismatch`]): restoring artifacts built under a
/// different pipeline configuration would silently mix incompatible
/// embedding spaces, so it is refused loudly.
pub fn boot(
    dir: impl Into<PathBuf>,
    ctx: PipelineContext,
) -> Result<(DurablePipeline, RestoreStats), StoreError> {
    let store = Store::open(dir)?;
    DurablePipeline::open(store, ctx)
}

/// Merge the durable pipeline's current segmented state into the
/// immutable pipeline the server slot serves. This is the same
/// `from_segments` construction path live ingest uses, so the served
/// rankings are byte-identical to a one-shot batch build over the same
/// live tables.
#[must_use]
pub fn serving_snapshot(durable: &DurablePipeline) -> Arc<DiscoveryPipeline> {
    durable.pipeline().snapshot()
}
