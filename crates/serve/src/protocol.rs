//! The wire protocol: length-prefixed JSON frames carrying typed
//! request/response envelopes, plus the canonical request encoder that
//! cache keys are derived from.
//!
//! ## Framing
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Frames longer than the
//! receiver's configured maximum are rejected without buffering.
//!
//! ## Canonicalization
//!
//! Cache keys must be byte-stable across client-side formatting noise:
//! `{"tau":0.5}`, `{"tau":5e-1}`, and `{"k":10.0}` versus `{"k":10}` all
//! describe the same query. The server therefore never keys a cache on
//! raw request bytes — it parses the request into [`Request`] and
//! re-serializes it with the single canonical encoder
//! ([`canonical_bytes`]): struct fields in declaration order, floats in
//! Rust's shortest-round-trip rendering, integers as integers.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use td_core::join::{CorrelatedHit, OverlapHit};
use td_shard::Bm25Stats;
use td_table::{Column, ColumnRef, Table, TableId};

/// Hard ceiling on accepted frame payloads (32 MiB) unless a tighter
/// limit is configured.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Ceiling on the buffer capacity a [`FrameReader`] allocates up front
/// for a declared payload length (64 KiB). A length prefix is attacker
/// data: a client that declares a huge frame and then stalls must tie
/// up at most this much memory, not `declared` bytes. Larger payloads
/// still work — the buffer grows as bytes actually arrive.
pub const MAX_FRAME_PREALLOC: usize = 64 << 10;

/// One discovery query, covering every `DiscoveryPipeline::search_*`
/// entry point plus a `Ping` health check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Keyword search over table metadata.
    Keyword {
        /// Query text.
        query: String,
        /// Results requested.
        k: usize,
    },
    /// Exact top-k joinable tables on a query column.
    Joinable {
        /// Query column.
        column: Column,
        /// Results requested.
        k: usize,
    },
    /// Unionable tables by the ensemble TUS measure.
    Unionable {
        /// Query table.
        table: Table,
        /// Results requested.
        k: usize,
    },
    /// Unionable tables by Starmie's contextual-embedding ranking.
    UnionableSemantic {
        /// Query table.
        table: Table,
        /// Results requested.
        k: usize,
    },
    /// Unionable tables by SANTOS's relationship-aware ranking.
    UnionableRelationship {
        /// Query table.
        table: Table,
        /// Results requested.
        k: usize,
    },
    /// Fuzzily joinable tables under similarity threshold `tau`.
    FuzzyJoinable {
        /// Query column.
        column: Column,
        /// Embedding similarity predicate.
        tau: f32,
        /// Results requested.
        k: usize,
    },
    /// Tables joinable on a composite key (MATE-style row matching).
    MultiJoinable {
        /// Query table.
        table: Table,
        /// Key column indices within the query table.
        key_cols: Vec<usize>,
        /// Results requested.
        k: usize,
    },
    /// Numeric columns correlated with the query's, reachable through a
    /// key join (QCR sketches).
    Correlated {
        /// Query key column.
        key: Column,
        /// Query numeric column.
        numeric: Column,
        /// Results requested.
        k: usize,
    },
    /// Administrative hot swap: atomically promote the staged pipeline
    /// (see `Server::stage_pipeline`) to serving, bump the epoch, and
    /// flush the result cache. With nothing staged it still bumps the
    /// epoch and flushes — a cache-invalidation barrier. Answered inline
    /// (never queued); in-flight queries finish on the pipeline they were
    /// admitted with.
    Reload,
    /// Admin: per-endpoint throughput/latency, shed/cache counters, and
    /// SLO error-budget accounting. Answered inline, never queued.
    Stats,
    /// Admin: full metrics dump — Prometheus exposition text plus the
    /// registry's JSON rendering. Answered inline, never queued.
    MetricsDump,
    /// Admin: the `n` worst request span trees since boot (over the
    /// server's slow-query latency threshold), worst first. Answered
    /// inline, never queued.
    SlowQueries {
        /// Maximum trees returned.
        n: usize,
    },
    /// Admin: liveness plus topology — pipeline epoch, segment/tombstone
    /// counts, queue depth, in-flight count, drain state. Answered
    /// inline, never queued (health checks must not flap under load).
    Health,
    /// Persist plane: extract, WAL-log, and apply one table into the
    /// durable pipeline, then stage a fresh serving pipeline for the
    /// next [`Request::Reload`]. Queries keep running against the
    /// current epoch until the reload promotes the staged build.
    /// Answered inline; requires a server started with persistence
    /// (`Server::start_durable`).
    IngestTable {
        /// Table id (re-ingesting a live id replaces it).
        id: TableId,
        /// The table itself; extraction happens server-side, once.
        table: Table,
    },
    /// Persist plane: WAL-log and apply a table drop, then stage a
    /// fresh serving pipeline. Answered inline; requires persistence.
    DropTable {
        /// Table id to drop (tombstoned until compaction).
        id: TableId,
    },
    /// Persist plane: checkpoint — fold the WAL into a fresh snapshot
    /// file so the next boot restores instead of replaying. Runs on the
    /// connection thread holding only the persistence lock; in-flight
    /// queries (worker threads, epoch slot) are untouched. Answered
    /// inline; requires persistence.
    Snapshot,
    /// Shard plane: per-shard BM25 statistics for a keyword query
    /// (phase one of the coordinator's two-phase distributed keyword
    /// search — see `td_shard::merge`).
    KeywordStats {
        /// Query text.
        query: String,
    },
    /// Shard plane: keyword search scored against *pinned* corpus
    /// statistics (phase two — every shard scores on the merged global
    /// scale, so the coordinator's merge is byte-identical to a
    /// one-shard answer).
    KeywordScored {
        /// Query text.
        query: String,
        /// Results requested.
        k: usize,
        /// Merged global corpus statistics from phase one.
        stats: Bm25Stats,
    },
    /// Shard plane: the exact-join *column* window (`width` best
    /// overlapping columns). The coordinator merges per-shard windows
    /// and runs the shared table aggregation on the merged window.
    JoinableColumns {
        /// Query column.
        column: Column,
        /// Window width (`td_core::join::exact::column_fetch_width(k)`).
        width: usize,
    },
    /// Shard plane: the fuzzy-join *column* window under threshold
    /// `tau`.
    FuzzyColumns {
        /// Query column.
        column: Column,
        /// Embedding similarity predicate.
        tau: f32,
        /// Window width.
        width: usize,
    },
    /// Shard plane: per-query-column semantic candidate windows (phase
    /// one of two-phase Starmie search).
    SemanticCandidates {
        /// Query table.
        table: Table,
    },
    /// Shard plane: semantic search restricted to a pinned candidate
    /// table set (phase two).
    SemanticScored {
        /// Query table.
        table: Table,
        /// Results requested.
        k: usize,
        /// Merged candidate tables from phase one (sorted ascending).
        tables: Vec<TableId>,
    },
    /// A batch of same-family queries answered as one unit: admitted as
    /// one queue entry, executed through the pipeline's `search_*_batch`
    /// entry point, answered with [`Reply::Batch`] carrying one
    /// sub-reply per sub-request in input order. Each sub-reply is
    /// byte-identical to what the same request sent alone would return.
    /// Constraints ([`Request::validate_batch`]): 1..=[`MAX_BATCH`]
    /// sub-requests, all of one search or shard-plane family — nested
    /// batches, pings, and the admin/persist planes are rejected as
    /// `BadRequest`.
    Batch {
        /// The sub-requests, all of one family.
        requests: Vec<Request>,
    },
}

/// Ceiling on sub-requests per [`Request::Batch`] frame. Large client
/// workloads split into multiple batches; one frame must stay bounded
/// in queue residency and reply size.
pub const MAX_BATCH: usize = 64;

impl Request {
    /// Stable endpoint name, used for per-endpoint metrics
    /// (`serve.<endpoint>.latency_ns`) and bench breakdowns.
    #[must_use]
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Keyword { .. } => "keyword",
            Request::Joinable { .. } => "joinable",
            Request::Unionable { .. } => "unionable",
            Request::UnionableSemantic { .. } => "unionable_semantic",
            Request::UnionableRelationship { .. } => "unionable_relationship",
            Request::FuzzyJoinable { .. } => "fuzzy_joinable",
            Request::MultiJoinable { .. } => "multi_joinable",
            Request::Correlated { .. } => "correlated",
            Request::Reload => "reload",
            Request::Stats => "stats",
            Request::MetricsDump => "metrics_dump",
            Request::SlowQueries { .. } => "slow_queries",
            Request::Health => "health",
            Request::IngestTable { .. } => "ingest_table",
            Request::DropTable { .. } => "drop_table",
            Request::Snapshot => "snapshot",
            Request::KeywordStats { .. } => "keyword_stats",
            Request::KeywordScored { .. } => "keyword_scored",
            Request::JoinableColumns { .. } => "joinable_columns",
            Request::FuzzyColumns { .. } => "fuzzy_columns",
            Request::SemanticCandidates { .. } => "semantic_candidates",
            Request::SemanticScored { .. } => "semantic_scored",
            Request::Batch { .. } => "batch",
        }
    }

    /// True for the request kinds a [`Request::Batch`] may carry: the
    /// eight search families and the shard plane — read-only queries
    /// answered from one pipeline snapshot. Everything stateful or
    /// inline-answered (ping, reload, admin, persist, nested batches)
    /// is excluded.
    #[must_use]
    pub fn is_batchable(&self) -> bool {
        matches!(
            self,
            Request::Keyword { .. }
                | Request::Joinable { .. }
                | Request::Unionable { .. }
                | Request::UnionableSemantic { .. }
                | Request::UnionableRelationship { .. }
                | Request::FuzzyJoinable { .. }
                | Request::MultiJoinable { .. }
                | Request::Correlated { .. }
                | Request::KeywordStats { .. }
                | Request::KeywordScored { .. }
                | Request::JoinableColumns { .. }
                | Request::FuzzyColumns { .. }
                | Request::SemanticCandidates { .. }
                | Request::SemanticScored { .. }
        )
    }

    /// Validate a batch payload: non-empty, at most [`MAX_BATCH`]
    /// sub-requests, every element batchable, and all of one family
    /// (homogeneous endpoint).
    ///
    /// # Errors
    /// Returns the diagnostic a server should attach to its
    /// `BadRequest` response.
    pub fn validate_batch(requests: &[Request]) -> Result<(), String> {
        if requests.is_empty() {
            return Err("empty batch".into());
        }
        if requests.len() > MAX_BATCH {
            return Err(format!(
                "batch of {} exceeds the {MAX_BATCH}-request limit",
                requests.len()
            ));
        }
        let family = requests[0].endpoint();
        for r in requests {
            if !r.is_batchable() {
                return Err(format!("'{}' requests cannot be batched", r.endpoint()));
            }
            if r.endpoint() != family {
                return Err(format!(
                    "mixed-family batch: '{family}' and '{}'",
                    r.endpoint()
                ));
            }
        }
        Ok(())
    }

    /// Every search endpoint name, in protocol order (excludes `ping`,
    /// `reload`, and the admin plane).
    #[must_use]
    pub fn search_endpoints() -> [&'static str; 8] {
        [
            "keyword",
            "joinable",
            "unionable",
            "unionable_semantic",
            "unionable_relationship",
            "fuzzy_joinable",
            "multi_joinable",
            "correlated",
        ]
    }

    /// Every admin-plane endpoint name, in protocol order.
    #[must_use]
    pub fn admin_endpoints() -> [&'static str; 4] {
        ["stats", "metrics_dump", "slow_queries", "health"]
    }

    /// Every persist-plane endpoint name, in protocol order.
    #[must_use]
    pub fn persist_endpoints() -> [&'static str; 3] {
        ["ingest_table", "drop_table", "snapshot"]
    }

    /// Every shard-plane endpoint name, in protocol order. These are the
    /// per-shard halves of the coordinator's two-phase keyword/semantic
    /// searches and the column-window fetches; they execute on the
    /// serving pipeline like any search request (queued, cacheable).
    #[must_use]
    pub fn shard_endpoints() -> [&'static str; 6] {
        [
            "keyword_stats",
            "keyword_scored",
            "joinable_columns",
            "fuzzy_columns",
            "semantic_candidates",
            "semantic_scored",
        ]
    }

    /// True for the admin observability plane (`Stats`, `MetricsDump`,
    /// `SlowQueries`, `Health`): answered inline from server state,
    /// never queued, never cached, never routed to a pipeline.
    #[must_use]
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Request::Stats | Request::MetricsDump | Request::SlowQueries { .. } | Request::Health
        )
    }

    /// True for the persist plane (`IngestTable`, `DropTable`,
    /// `Snapshot`): mutations routed to the durable pipeline, answered
    /// inline, never queued, never cached.
    #[must_use]
    pub fn is_persist(&self) -> bool {
        matches!(
            self,
            Request::IngestTable { .. } | Request::DropTable { .. } | Request::Snapshot
        )
    }
}

/// A client-to-server frame payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Per-request deadline in milliseconds from arrival; `0` disables.
    /// A request still queued when its deadline passes is answered
    /// `DeadlineExceeded` without executing.
    pub deadline_ms: u64,
    /// The query.
    pub req: Request,
}

/// Terminal status of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Executed; `reply` carries the result.
    Ok,
    /// Shed at admission: the bounded queue was full. Retry later.
    Overloaded,
    /// The request's deadline passed before execution.
    DeadlineExceeded,
    /// The frame parsed as JSON but not as a valid request envelope.
    BadRequest,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request was valid but the server failed to execute it
    /// (persistence I/O — WAL append, checkpoint write). The logical
    /// state is unchanged; the client may retry.
    Internal,
}

/// A successful query result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Score-ranked tables (keyword, unionable family, fuzzy/multi join).
    Scores(Vec<(TableId, f64)>),
    /// Overlap-ranked tables (exact join).
    Overlaps(Vec<(TableId, usize)>),
    /// Correlated-column hits.
    Correlated(Vec<CorrelatedHit>),
    /// Answer to [`Request::Reload`]: the pipeline epoch now serving.
    Reloaded(u64),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Answer to [`Request::MetricsDump`].
    Metrics(MetricsReply),
    /// Answer to [`Request::SlowQueries`]: worst first (duration
    /// descending, trace id ascending — a deterministic total order).
    SlowQueries(Vec<TraceJson>),
    /// Answer to [`Request::Health`].
    Health(HealthReply),
    /// Answer to [`Request::IngestTable`].
    Ingested(IngestReply),
    /// Answer to [`Request::DropTable`].
    Dropped(DropReply),
    /// Answer to [`Request::Snapshot`].
    Snapshotted(SnapshotReply),
    /// Answer to [`Request::KeywordStats`].
    KeywordStats(Bm25Stats),
    /// Answer to [`Request::JoinableColumns`]: the shard's exact-join
    /// column window (overlap descending, column ascending).
    OverlapColumns(Vec<OverlapHit>),
    /// Answer to [`Request::FuzzyColumns`]: the shard's fuzzy-join
    /// column window (containment descending, column ascending).
    FuzzyColumns(Vec<(ColumnRef, f64)>),
    /// Answer to [`Request::SemanticCandidates`]: one candidate window
    /// per query column (similarity descending, column ascending).
    CandidateWindows(Vec<Vec<(ColumnRef, f32)>>),
    /// Answer to [`Request::Batch`]: one sub-reply per sub-request, in
    /// input order, each byte-identical to the lone-request answer.
    Batch(Vec<Reply>),
}

/// Answer to [`Request::IngestTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestReply {
    /// Live tables in the durable pipeline after the ingest.
    pub tables: u64,
    /// WAL records accumulated since the last checkpoint.
    pub wal_records: u64,
    /// True when a fresh serving pipeline was staged for the next
    /// [`Request::Reload`].
    pub staged: bool,
}

/// Answer to [`Request::DropTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropReply {
    /// True when the id was live (the drop tombstoned something).
    pub existed: bool,
    /// WAL records accumulated since the last checkpoint.
    pub wal_records: u64,
    /// True when a fresh serving pipeline was staged for the next
    /// [`Request::Reload`].
    pub staged: bool,
}

/// Answer to [`Request::Snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotReply {
    /// Sequence number of the snapshot file written.
    pub seq: u64,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// WAL records folded into the snapshot and dropped from the log.
    pub wal_records_folded: u64,
}

/// Latency summary for one endpoint (from the `serve.<endpoint>.latency_ns`
/// histogram; nanoseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Endpoint name.
    pub endpoint: String,
    /// Requests recorded.
    pub count: u64,
    /// Approximate median latency.
    pub p50_ns: f64,
    /// Approximate 95th-percentile latency.
    pub p95_ns: f64,
    /// Approximate 99th-percentile latency.
    pub p99_ns: f64,
}

/// SLO error-budget accounting: of the executed requests, how many blew
/// the latency objective, against an allowed violation fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStats {
    /// Latency objective in nanoseconds.
    pub threshold_ns: u64,
    /// Executed requests measured against the objective.
    pub total: u64,
    /// Requests that exceeded the objective.
    pub violations: u64,
    /// Allowed violation fraction (e.g. `0.01` = 1% error budget).
    pub budget: f64,
    /// Budget remaining in `[0, 1]`: `1` = untouched, `0` = exhausted.
    pub budget_remaining: f64,
}

impl Default for SloStats {
    /// The zero-traffic state: nothing measured, so the whole budget
    /// remains (`budget_remaining` defaults to `1`, not `0`).
    fn default() -> Self {
        SloStats {
            threshold_ns: 0,
            total: 0,
            violations: 0,
            budget: 0.0,
            budget_remaining: 1.0,
        }
    }
}

/// Answer to [`Request::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Pipeline epoch currently serving.
    pub epoch: u64,
    /// Decoded request envelopes (every endpoint, including admin).
    pub requests: u64,
    /// Requests answered `Ok`.
    pub served_ok: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests expired in the queue.
    pub deadline_expired: u64,
    /// Frames that failed to decode.
    pub bad_requests: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Queries executing at snapshot time.
    pub inflight: u64,
    /// SLO error-budget accounting.
    pub slo: SloStats,
    /// Per-endpoint latency summaries in [`Request::search_endpoints`]
    /// order — a deterministic rendering, never a hash-map drain.
    pub endpoints: Vec<EndpointStats>,
}

/// Answer to [`Request::MetricsDump`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Prometheus text exposition of the metrics registry.
    pub prometheus: String,
    /// JSON rendering of the same registry snapshot.
    pub json: String,
}

/// Answer to [`Request::Health`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReply {
    /// True unless the server is draining.
    pub healthy: bool,
    /// Pipeline epoch currently serving.
    pub epoch: u64,
    /// Live segments in the serving pipeline (from the
    /// `pipeline.segments` gauge; `0` for a single-segment build).
    pub segments: u64,
    /// Tombstoned tables awaiting compaction (`pipeline.tombstones`).
    pub tombstones: u64,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Queries executing at snapshot time.
    pub inflight: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// True once shutdown has begun.
    pub draining: bool,
    /// Finished traces currently retained in the trace ring.
    pub traced: u64,
}

/// One span of a request trace on the wire (mirrors
/// `td_obs::trace::TraceNode`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNodeJson {
    /// Span name, e.g. `probe.exact_join`.
    pub name: String,
    /// Offset from the trace start (nanoseconds, or logical ticks when
    /// the server traces with the deterministic logical clock).
    pub start_ns: u64,
    /// Span duration (same unit as `start_ns`).
    pub dur_ns: u64,
    /// Child spans, in open order.
    pub children: Vec<SpanNodeJson>,
}

/// One finished request trace on the wire (mirrors
/// `td_obs::trace::TraceTree`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJson {
    /// Trace id (derived deterministically from the server's trace seed
    /// and the request envelope id).
    pub trace_id: u64,
    /// Endpoint the request hit.
    pub endpoint: String,
    /// Pipeline epoch the request was admitted under.
    pub epoch: u64,
    /// Terminal status (`ok`, `deadline_exceeded`, …).
    pub status: String,
    /// Whether the result cache answered the request.
    pub cache_hit: bool,
    /// Total duration (same unit as the spans).
    pub dur_ns: u64,
    /// Spans dropped by the per-trace cap.
    pub dropped: u64,
    /// Root spans, in open order.
    pub spans: Vec<SpanNodeJson>,
}

/// A server-to-client frame payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Correlation id copied from the request (`0` when the envelope
    /// could not be parsed far enough to recover one).
    pub id: u64,
    /// Terminal status.
    pub status: Status,
    /// Result when `status` is `Ok`, absent otherwise.
    pub reply: Option<Reply>,
    /// Human-readable diagnostic for non-`Ok` statuses.
    pub error: Option<String>,
    /// Shard ids whose answers are missing from `reply` because the
    /// shard was unreachable — always empty from a single server;
    /// non-empty only from a degraded coordinator, whose merged ranking
    /// then covers the reachable shards only.
    pub degraded: Vec<u32>,
}

impl ResponseEnvelope {
    /// A successful response.
    #[must_use]
    pub fn ok(id: u64, reply: Reply) -> Self {
        ResponseEnvelope {
            id,
            status: Status::Ok,
            reply: Some(reply),
            error: None,
            degraded: Vec::new(),
        }
    }

    /// A successful-but-degraded coordinator response: `reply` merges
    /// the reachable shards; `degraded` names the missing ones.
    #[must_use]
    pub fn ok_degraded(id: u64, reply: Reply, degraded: Vec<u32>) -> Self {
        ResponseEnvelope {
            id,
            status: Status::Ok,
            reply: Some(reply),
            error: None,
            degraded,
        }
    }

    /// A failure response with a diagnostic.
    #[must_use]
    pub fn fail(id: u64, status: Status, error: impl Into<String>) -> Self {
        ResponseEnvelope {
            id,
            status,
            reply: None,
            error: Some(error.into()),
            degraded: Vec::new(),
        }
    }
}

/// Protocol-level failure.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket/file error.
    Io(io::Error),
    /// A frame exceeded the configured maximum payload size.
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// Payload was not valid JSON for the expected envelope type.
    Decode(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::Decode(m) => write!(f, "decode error: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Serialize a request with the canonical encoder. Two semantically
/// equal requests — regardless of how the client formatted floats or
/// ordered JSON text — produce identical bytes, so these are the cache
/// key.
///
/// # Errors
/// Fails only if the value cannot be rendered as JSON (unrepresentable
/// map keys — impossible for [`Request`]'s types, kept as a `Result`
/// rather than a hidden panic).
pub fn canonical_bytes(req: &Request) -> Result<Vec<u8>, ProtocolError> {
    serde_json::to_string(req)
        .map(String::into_bytes)
        .map_err(|e| ProtocolError::Decode(e.to_string()))
}

/// Serialize a response envelope with the canonical encoder (the same
/// deterministic rendering clients can reproduce for byte-for-byte
/// comparison against direct in-process calls).
///
/// # Errors
/// Same (practically unreachable) condition as [`canonical_bytes`].
pub fn encode_response(resp: &ResponseEnvelope) -> Result<Vec<u8>, ProtocolError> {
    serde_json::to_string(resp)
        .map(String::into_bytes)
        .map_err(|e| ProtocolError::Decode(e.to_string()))
}

/// Parse a request envelope from frame payload bytes.
///
/// # Errors
/// Fails on non-UTF-8 payloads, malformed JSON, or a shape mismatch.
pub fn decode_request(payload: &[u8]) -> Result<RequestEnvelope, ProtocolError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ProtocolError::Decode(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| ProtocolError::Decode(e.to_string()))
}

/// Parse a response envelope from frame payload bytes.
///
/// # Errors
/// Fails on non-UTF-8 payloads, malformed JSON, or a shape mismatch.
pub fn decode_response(payload: &[u8]) -> Result<ResponseEnvelope, ProtocolError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ProtocolError::Decode(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| ProtocolError::Decode(e.to_string()))
}

/// Write one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
/// Propagates socket errors; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge {
            declared: payload.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX); // bounded by MAX_FRAME_BYTES above
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Outcome of one [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum FramePoll {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly (EOF between frames).
    Eof,
    /// No complete frame yet (the socket's read timeout elapsed);
    /// partial state is retained — call `poll` again.
    Pending,
}

/// Incremental frame reader that survives read timeouts mid-frame.
///
/// Server connection threads read with a socket timeout so they can
/// observe the shutdown flag between frames; a timeout must not discard
/// partially received bytes, so the reader keeps its progress across
/// `poll` calls.
#[derive(Debug, Default)]
pub struct FrameReader {
    len_buf: [u8; 4],
    len_got: usize,
    body: Vec<u8>,
    body_need: Option<usize>,
}

impl FrameReader {
    /// A reader with no buffered state.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Advance the in-progress frame with bytes from `r`.
    ///
    /// # Errors
    /// Propagates socket errors, EOF mid-frame, and frames whose
    /// declared length exceeds `max_payload`.
    pub fn poll(
        &mut self,
        r: &mut impl Read,
        max_payload: usize,
    ) -> Result<FramePoll, ProtocolError> {
        // Phase 1: the 4-byte length prefix.
        while self.body_need.is_none() {
            match r.read(&mut self.len_buf[self.len_got..]) {
                Ok(0) => {
                    if self.len_got == 0 {
                        return Ok(FramePoll::Eof);
                    }
                    return Err(ProtocolError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame header",
                    )));
                }
                Ok(n) => {
                    self.len_got += n;
                    if self.len_got == 4 {
                        let declared = u32::from_be_bytes(self.len_buf) as usize;
                        if declared > max_payload {
                            return Err(ProtocolError::FrameTooLarge {
                                declared,
                                max: max_payload,
                            });
                        }
                        // The declared length is untrusted until the
                        // bytes actually arrive: allocate at most
                        // MAX_FRAME_PREALLOC up front and let the buffer
                        // grow with real data.
                        self.body = Vec::with_capacity(declared.min(MAX_FRAME_PREALLOC));
                        self.body_need = Some(declared);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FramePoll::Pending);
                }
                Err(e) => return Err(ProtocolError::Io(e)),
            }
        }
        // Phase 2: the payload.
        let need = self.body_need.unwrap_or(0);
        let mut chunk = [0u8; 8192];
        while self.body.len() < need {
            let want = (need - self.body.len()).min(chunk.len());
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(ProtocolError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame payload",
                    )));
                }
                Ok(n) => self.body.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FramePoll::Pending);
                }
                Err(e) => return Err(ProtocolError::Io(e)),
            }
        }
        let payload = std::mem::take(&mut self.body);
        self.len_got = 0;
        self.body_need = None;
        Ok(FramePoll::Frame(payload))
    }
}

/// Read frames until one completes or the stream ends — the blocking
/// convenience used by clients (whose sockets have no read timeout).
///
/// # Errors
/// Propagates the same conditions as [`FrameReader::poll`].
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(r, max_payload)? {
            FramePoll::Frame(p) => return Ok(Some(p)),
            FramePoll::Eof => return Ok(None),
            FramePoll::Pending => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::Column;

    fn fuzzy(tau_text: &str, k_text: &str) -> RequestEnvelope {
        let text = format!(
            "{{\"deadline_ms\":0,\"id\":9,\"req\":{{\"FuzzyJoinable\":{{\"column\":{{\"name\":\"c\",\"values\":[{{\"Text\":\"x\"}}]}},\"tau\":{tau_text},\"k\":{k_text}}}}}}}"
        );
        decode_request(text.as_bytes()).expect("parse")
    }

    #[test]
    fn canonical_bytes_are_stable_across_float_formatting() {
        // `5e-1` vs `0.5`, `10.0` vs `10`: same query, same cache slot.
        let a = fuzzy("0.5", "10");
        let b = fuzzy("5e-1", "10.0");
        assert_eq!(a.req, b.req);
        assert_eq!(
            canonical_bytes(&a.req).expect("canonical"),
            canonical_bytes(&b.req).expect("canonical"),
        );
    }

    #[test]
    fn canonical_bytes_distinguish_different_requests() {
        let a = fuzzy("0.5", "10");
        let b = fuzzy("0.25", "10");
        assert_ne!(
            canonical_bytes(&a.req).expect("canonical"),
            canonical_bytes(&b.req).expect("canonical"),
        );
    }

    #[test]
    fn envelopes_round_trip() {
        let env = RequestEnvelope {
            id: 42,
            deadline_ms: 250,
            req: Request::Keyword {
                query: "census".into(),
                k: 5,
            },
        };
        let bytes = serde_json::to_string(&env).expect("encode").into_bytes();
        let back = decode_request(&bytes).expect("decode");
        assert_eq!(back, env);

        let resp = ResponseEnvelope::ok(42, Reply::Scores(vec![(TableId(3), 0.75)]));
        let bytes = encode_response(&resp).expect("encode");
        let back = decode_response(&bytes).expect("decode");
        assert_eq!(back, resp);
    }

    #[test]
    fn frames_round_trip_and_enforce_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).expect("frame 1"),
            Some(b"hello".to_vec())
        );
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).expect("frame 2"),
            Some(Vec::new())
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).expect("eof"), None);

        // A frame whose declared length exceeds the receiver limit is
        // rejected before any payload is buffered.
        let mut oversized = Vec::new();
        write_frame(&mut oversized, &[0u8; 128]).expect("write");
        let mut r = &oversized[..];
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(ProtocolError::FrameTooLarge {
                declared: 128,
                max: 64
            })
        ));
    }

    #[test]
    fn frame_reader_survives_split_reads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").expect("write");
        // Feed one byte at a time through a reader that times out after
        // every byte, as a socket with a short read timeout would.
        struct OneByte<'a>(&'a [u8], usize, bool);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.2 {
                    self.2 = false;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
                }
                self.2 = true;
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut src = OneByte(&buf, 0, false);
        let mut reader = FrameReader::new();
        let mut pendings = 0;
        loop {
            match reader.poll(&mut src, MAX_FRAME_BYTES).expect("poll") {
                FramePoll::Frame(p) => {
                    assert_eq!(p, b"abcdef");
                    break;
                }
                FramePoll::Pending => pendings += 1,
                FramePoll::Eof => panic!("EOF before frame completed"),
            }
        }
        assert!(pendings >= 9, "every byte should hit a timeout first");
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocation() {
        // A 4 GiB length prefix (u32::MAX) followed by nothing: the
        // reader must reject it from the prefix alone with a clean
        // protocol error, never waiting for (or allocating) the payload.
        let bytes = u32::MAX.to_be_bytes();
        let mut r = &bytes[..];
        let mut reader = FrameReader::new();
        match reader.poll(&mut r, MAX_FRAME_BYTES) {
            Err(ProtocolError::FrameTooLarge { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn declared_length_does_not_drive_preallocation() {
        // A frame declared just under the limit but never delivered must
        // not pin `declared` bytes of buffer — the initial allocation is
        // capped and growth follows actually-received data.
        let declared = (MAX_FRAME_BYTES - 1) as u32;
        let bytes = declared.to_be_bytes();
        let mut r = &bytes[..];
        let mut reader = FrameReader::new();
        // The header is consumed, then the empty source reports EOF
        // inside the payload — either way the allocation already
        // happened, which is what this test inspects.
        let _ = reader.poll(&mut r, MAX_FRAME_BYTES);
        assert_eq!(reader.body_need, Some(declared as usize));
        assert!(
            reader.body.capacity() <= MAX_FRAME_PREALLOC,
            "preallocated {} bytes for a {declared}-byte declaration",
            reader.body.capacity()
        );

        // And a frame larger than the prealloc cap still round-trips.
        let payload = vec![0xabu8; MAX_FRAME_PREALLOC * 2];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).expect("frame"),
            Some(payload)
        );
    }

    #[test]
    fn endpoint_names_are_stable() {
        let col = Column::from_strings("c", &["a"]);
        assert_eq!(
            Request::Joinable { column: col, k: 1 }.endpoint(),
            "joinable"
        );
        assert_eq!(Request::Ping.endpoint(), "ping");
        assert_eq!(Request::search_endpoints().len(), 8);
    }

    #[test]
    fn batch_validation_enforces_shape() {
        let kw = |q: &str| Request::Keyword {
            query: q.into(),
            k: 3,
        };
        // Happy path: homogeneous search batch.
        assert!(Request::validate_batch(&[kw("a"), kw("b")]).is_ok());
        // Zero-length.
        assert!(Request::validate_batch(&[]).is_err());
        // Oversized.
        let big: Vec<Request> = (0..=MAX_BATCH).map(|i| kw(&format!("q{i}"))).collect();
        assert!(Request::validate_batch(&big).is_err());
        // Mixed family.
        let col = Column::from_strings("c", &["a"]);
        let join = Request::Joinable { column: col, k: 2 };
        assert!(Request::validate_batch(&[kw("a"), join]).is_err());
        // Non-batchable kinds, including a nested batch.
        assert!(Request::validate_batch(&[Request::Ping]).is_err());
        assert!(Request::validate_batch(&[Request::Reload]).is_err());
        assert!(Request::validate_batch(&[Request::Health]).is_err());
        let nested = Request::Batch {
            requests: vec![kw("a")],
        };
        assert!(Request::validate_batch(&[nested]).is_err());
        assert!(!Request::Batch {
            requests: Vec::new()
        }
        .is_batchable());
    }
}
