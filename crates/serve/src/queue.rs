//! Bounded admission queue with explicit load shedding.
//!
//! The server admits work through this queue; when it is full the
//! request is *shed* — the client gets an immediate `overloaded`
//! response instead of waiting in an unbounded backlog. This is the
//! classic admission-control trade: bounded queueing delay and a fast
//! failure signal instead of ever-growing tail latency under
//! saturation.
//!
//! Closing the queue is graceful: already-admitted jobs drain to the
//! workers; only new pushes are refused. `pop` returns `None` once the
//! queue is both closed and empty, which is the workers' exit signal.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity; the request should be shed.
    Full,
    /// The queue is draining for shutdown.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: producers shed instead of blocking,
/// consumers block until work arrives or shutdown drains the queue.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

fn relock<G>(r: Result<G, PoisonError<G>>) -> G {
    // A panicking worker must not wedge the whole server; the queue's
    // only invariant is the VecDeque's own, which survives poison.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<T> AdmissionQueue<T> {
    /// Create a queue admitting at most `capacity` pending items
    /// (rounded up to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of pending items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit an item, or refuse immediately — never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = relock(self.inner.lock());
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available; `None` means the queue is
    /// closed and fully drained (worker exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut inner = relock(self.inner.lock());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = relock(self.ready.wait(inner));
        }
    }

    /// Current number of pending items.
    #[must_use]
    pub fn depth(&self) -> usize {
        relock(self.inner.lock()).items.len()
    }

    /// Remove and return up to `max` pending items matching `pred`,
    /// preserving their relative order — the opportunistic-coalescing
    /// hook: a worker that pops one query drains queued compatible
    /// queries and answers them all in one batched execution. Never
    /// blocks; non-matching items keep their positions.
    pub fn drain_matching(&self, max: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut inner = relock(self.inner.lock());
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(inner.items.len());
        while let Some(item) = inner.items.pop_front() {
            if taken.len() < max && pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        inner.items = kept;
        taken
    }

    /// Refuse new pushes and wake all blocked consumers; pending items
    /// still drain.
    pub fn close(&self) {
        relock(self.inner.lock()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let q = AdmissionQueue::new(2);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        assert_eq!(q.try_push(3), Err(PushError::Full));
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).expect("push after drain");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).expect("push");
        assert_eq!(q.try_push(2), Err(PushError::Full));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_matching_takes_in_order_and_keeps_the_rest() {
        let q = AdmissionQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.try_push(v).expect("push");
        }
        // Take at most two even items.
        let taken = q.drain_matching(2, |v| v % 2 == 0);
        assert_eq!(taken, vec![2, 4]);
        // The rest keep FIFO order, including the un-taken even item.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(6));
        assert_eq!(q.depth(), 0);
        assert!(q.drain_matching(0, |_| true).is_empty());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(AdmissionQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        // Give the consumers a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().expect("consumer thread"), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(AdmissionQueue::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sent = 0u32;
                    for i in 0..500u32 {
                        if q.try_push(t * 1000 + i).is_ok() {
                            sent += 1;
                        }
                        if i % 16 == 0 {
                            thread::yield_now();
                        }
                    }
                    sent
                })
            })
            .collect();
        let sent: u32 = producers
            .into_iter()
            .map(|h| h.join().expect("producer"))
            .sum();
        q.close();
        let received: usize = consumers
            .into_iter()
            .map(|h| h.join().expect("consumer").len())
            .sum();
        assert_eq!(received as u32, sent, "no admitted item may be lost");
    }
}
