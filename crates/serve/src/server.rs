//! The concurrent query server: accept loop, per-connection reader
//! threads, a worker pool behind the admission queue, and graceful
//! drain-then-shutdown.
//!
//! ## Thread topology
//!
//! ```text
//! accept loop ──spawns──▶ conn thread (one per client)
//!                            │  decode, canonicalize, cache lookup
//!                            │  hit → reply inline (bypasses the queue)
//!                            ▼  miss
//!                      AdmissionQueue (bounded; full → Overloaded)
//!                            │
//!                            ▼
//!                      worker pool (pipeline Arc captured at admission)
//!                            │  deadline check → execute → cache fill
//!                            ▼
//!                      client socket (mutex-serialized frame writes)
//! ```
//!
//! ## Hot swap
//!
//! The serving pipeline lives in an epoch-versioned slot
//! (`Mutex<PipelineSlot>`). [`Server::stage_pipeline`] parks a
//! replacement; a [`Request::Reload`] promotes it, bumps the epoch, and
//! flushes the result cache. Cache keys are prefixed with the epoch and
//! each job captures its pipeline `Arc` at admission, so in-flight
//! queries finish on the pipeline they started with and no pre-swap
//! cache entry can answer a post-swap request.
//!
//! Responses are written under a per-connection mutex, so workers and
//! the connection thread can interleave replies safely; clients match
//! responses to requests by envelope id.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] flips the drain flag, wakes the accept loop,
//! waits for connection threads to stop reading, closes the queue (new
//! work is refused with `ShuttingDown`), and joins the workers — which
//! first finish every already-admitted job. No admitted request is
//! dropped.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use td_core::DiscoveryPipeline;
use td_obs::trace::{ActiveSpan, Trace};
use td_obs::{Counter, Gauge, Histogram, Timer};

use crate::admin::{tree_to_json, TraceConfig, TraceLayer};
use crate::cache::{CacheConfig, CacheStats, ResultCache};
use crate::persist::{serving_snapshot, DurablePipeline};
use crate::protocol::{
    canonical_bytes, decode_request, encode_response, write_frame, DropReply, EndpointStats,
    FramePoll, FrameReader, HealthReply, IngestReply, MetricsReply, Reply, Request,
    ResponseEnvelope, SnapshotReply, StatsReply, Status, MAX_FRAME_BYTES,
};
use crate::queue::{AdmissionQueue, PushError};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port `0` for an ephemeral port.
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission queue bound; a full queue sheds with `Overloaded`.
    pub queue_capacity: usize,
    /// Result cache shape.
    pub cache: CacheConfig,
    /// Per-frame payload ceiling.
    pub max_frame_bytes: usize,
    /// Socket read timeout; bounds how fast connection threads observe
    /// the shutdown flag.
    pub poll_interval: Duration,
    /// Request-scoped tracing and admin-plane shape (td-trace).
    pub trace: TraceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            cache: CacheConfig::default(),
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(25),
            trace: TraceConfig::default(),
        }
    }
}

/// Point-in-time server statistics (all monotonic except `cache`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Decoded request envelopes (every endpoint, including `ping`).
    pub requests: u64,
    /// Requests answered `Ok` (cache hits and executed queries).
    pub served_ok: u64,
    /// Requests shed at admission (`Overloaded`).
    pub shed: u64,
    /// Requests expired in the queue (`DeadlineExceeded`).
    pub deadline_expired: u64,
    /// Frames that failed to decode (`BadRequest`).
    pub bad_requests: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
}

/// One admitted unit of work.
struct Job {
    id: u64,
    req: Request,
    key: Vec<u8>,
    endpoint: &'static str,
    deadline_ms: u64,
    /// Started at admission; workers check it against `deadline_ms`.
    admitted: Timer,
    /// The pipeline captured at admission: a hot swap between admission
    /// and execution must not change what this request runs against.
    pipeline: Arc<DiscoveryPipeline>,
    out: Arc<Mutex<TcpStream>>,
    /// The request's trace (absent when tracing is disabled).
    trace: Option<Trace>,
    /// The open `queue.wait` span: opened by the connection thread at
    /// admission, closed by the worker that dequeues the job — the guard
    /// rides the queue with the request.
    queue_span: Option<ActiveSpan>,
}

/// The epoch-versioned serving pipeline. Readers take the lock only long
/// enough to clone the `Arc` and the epoch; a `Reload` replaces the
/// pipeline and bumps the epoch while in-flight queries keep the `Arc`
/// they were admitted with.
struct PipelineSlot {
    epoch: u64,
    pipeline: Arc<DiscoveryPipeline>,
}

/// Registry handles held for the server's lifetime (hot paths must not
/// re-resolve metric names).
struct Metrics {
    queue_depth: Arc<Gauge>,
    inflight: Arc<Gauge>,
    shed: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    latency: HashMap<&'static str, Arc<Histogram>>,
}

impl Metrics {
    fn new() -> Self {
        let reg = td_obs::global();
        let mut latency = HashMap::new();
        latency.insert("ping", reg.histogram("serve.ping.latency_ns"));
        latency.insert("reload", reg.histogram("serve.reload.latency_ns"));
        latency.insert("batch", reg.histogram("serve.batch.latency_ns"));
        for ep in Request::search_endpoints() {
            latency.insert(ep, reg.histogram(&format!("serve.{ep}.latency_ns")));
        }
        for ep in Request::admin_endpoints() {
            latency.insert(ep, reg.histogram(&format!("serve.{ep}.latency_ns")));
        }
        for ep in Request::persist_endpoints() {
            latency.insert(ep, reg.histogram(&format!("serve.{ep}.latency_ns")));
        }
        for ep in Request::shard_endpoints() {
            latency.insert(ep, reg.histogram(&format!("serve.{ep}.latency_ns")));
        }
        Metrics {
            queue_depth: reg.gauge("serve.queue.depth"),
            inflight: reg.gauge("serve.inflight"),
            shed: reg.counter("serve.shed"),
            deadline_expired: reg.counter("serve.deadline_expired"),
            cache_hits: reg.counter("serve.cache.hits"),
            cache_misses: reg.counter("serve.cache.misses"),
            latency,
        }
    }

    fn record_latency(&self, endpoint: &str, elapsed: Duration) {
        if let Some(h) = self.latency.get(endpoint) {
            h.record_duration(elapsed);
        }
    }
}

struct Shared {
    slot: Mutex<PipelineSlot>,
    /// Pipeline prepared offline (e.g. by a `SegmentedPipeline` snapshot)
    /// waiting for a `Reload` to promote it.
    staged: Mutex<Option<Arc<DiscoveryPipeline>>>,
    queue: AdmissionQueue<Job>,
    cache: ResultCache<Reply>,
    shutting_down: AtomicBool,
    metrics: Metrics,
    requests: AtomicU64,
    served_ok: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    bad_requests: AtomicU64,
    /// td-trace state; absent when tracing is disabled.
    trace: Option<TraceLayer>,
    /// Worker-pool size (reported by `Health`).
    workers: u64,
    /// The durable pipeline behind the persist plane (absent on servers
    /// started without a store). Persist requests serialize on this
    /// mutex; query workers never touch it, so a checkpoint cannot
    /// block in-flight searches.
    persist: Option<Mutex<DurablePipeline>>,
}

fn relock<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Execute one request against the pipeline. Public so tests and
/// benches can compute the *direct in-process* answer and compare it
/// byte-for-byte against the served response.
#[must_use]
pub fn execute(pipeline: &DiscoveryPipeline, req: &Request) -> Reply {
    match req {
        Request::Ping => Reply::Pong,
        Request::Keyword { query, k } => Reply::Scores(pipeline.search_keyword(query, *k)),
        Request::Joinable { column, k } => Reply::Overlaps(pipeline.search_joinable(column, *k)),
        Request::Unionable { table, k } => Reply::Scores(pipeline.search_unionable(table, *k)),
        Request::UnionableSemantic { table, k } => {
            Reply::Scores(pipeline.search_unionable_semantic(table, *k))
        }
        Request::UnionableRelationship { table, k } => {
            Reply::Scores(pipeline.search_unionable_relationship(table, *k))
        }
        Request::FuzzyJoinable { column, tau, k } => {
            Reply::Scores(pipeline.search_fuzzy_joinable(column, *tau, *k))
        }
        Request::MultiJoinable { table, key_cols, k } => {
            Reply::Scores(pipeline.search_multi_joinable(table, key_cols, *k))
        }
        Request::Correlated { key, numeric, k } => {
            Reply::Correlated(pipeline.search_correlated(key, numeric, *k))
        }
        // A direct in-process call has no swap machinery; the server
        // answers `Reload` inline with the real epoch and never routes it
        // here.
        Request::Reload => Reply::Reloaded(0),
        // Likewise the admin plane: answered inline from server state
        // (which a direct in-process call does not have), never routed
        // here — these arms return empty shells.
        Request::Stats => Reply::Stats(StatsReply::default()),
        Request::MetricsDump => Reply::Metrics(MetricsReply::default()),
        Request::SlowQueries { .. } => Reply::SlowQueries(Vec::new()),
        Request::Health => Reply::Health(HealthReply::default()),
        // And the persist plane: routed to the durable pipeline (which a
        // direct in-process call does not have), never here.
        Request::IngestTable { .. } => Reply::Ingested(IngestReply::default()),
        Request::DropTable { .. } => Reply::Dropped(DropReply::default()),
        Request::Snapshot => Reply::Snapshotted(SnapshotReply::default()),
        // The shard plane: the per-shard halves of the coordinator's
        // scatter-gather. They run on the serving pipeline like any
        // search (queued, cacheable, deterministic).
        Request::KeywordStats { query } => Reply::KeywordStats(pipeline.keyword_term_stats(query)),
        Request::KeywordScored { query, k, stats } => {
            Reply::Scores(pipeline.search_keyword_with_stats(query, *k, stats))
        }
        Request::JoinableColumns { column, width } => {
            Reply::OverlapColumns(pipeline.search_joinable_columns(column, *width))
        }
        Request::FuzzyColumns { column, tau, width } => {
            Reply::FuzzyColumns(pipeline.search_fuzzy_columns(column, *tau, *width))
        }
        Request::SemanticCandidates { table } => {
            Reply::CandidateWindows(pipeline.semantic_candidates(table))
        }
        Request::SemanticScored { table, k, tables } => Reply::Scores(
            pipeline.search_semantic_with_candidates(table, *k, &tables.iter().copied().collect()),
        ),
        // A batch frame: one sub-reply per sub-request through the
        // pipeline's batched entry points. The server validates shape at
        // admission; a direct caller handing an invalid batch here still
        // gets a well-formed (per-request) answer via the fallback.
        Request::Batch { requests } => Reply::Batch(execute_batch(pipeline, requests)),
    }
}

/// Execute a homogeneous batch of requests through the pipeline's
/// `search_*_batch` entry points: one reply per request, in input order,
/// each byte-identical to [`execute`] on the same request alone. A batch
/// that is not homogeneous (which [`Request::validate_batch`] would have
/// rejected at admission) falls back to per-request execution, so this
/// function never panics on shape.
#[must_use]
pub fn execute_batch(pipeline: &DiscoveryPipeline, reqs: &[Request]) -> Vec<Reply> {
    fn fallback(pipeline: &DiscoveryPipeline, reqs: &[Request]) -> Vec<Reply> {
        reqs.iter().map(|r| execute(pipeline, r)).collect()
    }
    let Some(first) = reqs.first() else {
        return Vec::new();
    };
    match first {
        Request::Keyword { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::Keyword { query, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((query.as_str(), *k));
            }
            pipeline
                .search_keyword_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        Request::Joinable { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::Joinable { column, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((column, *k));
            }
            pipeline
                .search_joinable_batch(&qs)
                .into_iter()
                .map(Reply::Overlaps)
                .collect()
        }
        Request::Unionable { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::Unionable { table, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((table, *k));
            }
            pipeline
                .search_unionable_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        Request::UnionableSemantic { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::UnionableSemantic { table, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((table, *k));
            }
            pipeline
                .search_unionable_semantic_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        Request::UnionableRelationship { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::UnionableRelationship { table, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((table, *k));
            }
            pipeline
                .search_unionable_relationship_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        Request::FuzzyJoinable { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::FuzzyJoinable { column, tau, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((column, *tau, *k));
            }
            pipeline
                .search_fuzzy_joinable_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        Request::MultiJoinable { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::MultiJoinable { table, key_cols, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((table, key_cols.as_slice(), *k));
            }
            pipeline
                .search_multi_joinable_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        Request::Correlated { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::Correlated { key, numeric, k } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((key, numeric, *k));
            }
            pipeline
                .search_correlated_batch(&qs)
                .into_iter()
                .map(Reply::Correlated)
                .collect()
        }
        Request::KeywordStats { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::KeywordStats { query } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push(query.as_str());
            }
            pipeline
                .keyword_term_stats_batch(&qs)
                .into_iter()
                .map(Reply::KeywordStats)
                .collect()
        }
        Request::KeywordScored { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::KeywordScored { query, k, stats } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((query.as_str(), *k, stats));
            }
            pipeline
                .search_keyword_with_stats_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        Request::JoinableColumns { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::JoinableColumns { column, width } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((column, *width));
            }
            pipeline
                .search_joinable_columns_batch(&qs)
                .into_iter()
                .map(Reply::OverlapColumns)
                .collect()
        }
        Request::FuzzyColumns { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::FuzzyColumns { column, tau, width } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((column, *tau, *width));
            }
            pipeline
                .search_fuzzy_columns_batch(&qs)
                .into_iter()
                .map(Reply::FuzzyColumns)
                .collect()
        }
        Request::SemanticCandidates { .. } => {
            let mut qs = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::SemanticCandidates { table } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push(table);
            }
            pipeline
                .semantic_candidates_batch(&qs)
                .into_iter()
                .map(Reply::CandidateWindows)
                .collect()
        }
        Request::SemanticScored { .. } => {
            // The pinned candidate sets need owned storage; collect them
            // first, then borrow per query.
            let mut sets = Vec::with_capacity(reqs.len());
            for r in reqs {
                let Request::SemanticScored { tables, .. } = r else {
                    return fallback(pipeline, reqs);
                };
                sets.push(
                    tables
                        .iter()
                        .copied()
                        .collect::<std::collections::BTreeSet<_>>(),
                );
            }
            let mut qs = Vec::with_capacity(reqs.len());
            for (r, set) in reqs.iter().zip(&sets) {
                let Request::SemanticScored { table, k, .. } = r else {
                    return fallback(pipeline, reqs);
                };
                qs.push((table, *k, set));
            }
            pipeline
                .search_semantic_with_candidates_batch(&qs)
                .into_iter()
                .map(Reply::Scores)
                .collect()
        }
        _ => fallback(pipeline, reqs),
    }
}

/// Assemble the [`Request::Stats`] answer from the server's own counters
/// plus the global latency histograms. Endpoint rows are emitted in
/// [`Request::search_endpoints`] order — a deterministic rendering.
fn build_stats(shared: &Shared) -> StatsReply {
    let snap = td_obs::global().snapshot();
    let cache = shared.cache.stats();
    let epoch = relock(shared.slot.lock()).epoch;
    let slo = shared
        .trace
        .as_ref()
        .map(TraceLayer::slo_stats)
        .unwrap_or_default();
    let endpoints = Request::search_endpoints()
        .iter()
        .map(|ep| {
            let h = snap.histogram(&format!("serve.{ep}.latency_ns"));
            EndpointStats {
                endpoint: (*ep).to_string(),
                count: h.map_or(0, |h| h.count),
                p50_ns: h.map_or(0.0, |h| h.p50),
                p95_ns: h.map_or(0.0, |h| h.p95),
                p99_ns: h.map_or(0.0, |h| h.p99),
            }
        })
        .collect();
    StatsReply {
        epoch,
        requests: shared.requests.load(Ordering::Relaxed),
        served_ok: shared.served_ok.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        deadline_expired: shared.deadline_expired.load(Ordering::Relaxed),
        bad_requests: shared.bad_requests.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        queue_depth: shared.queue.depth() as u64,
        inflight: shared.metrics.inflight.get().max(0.0) as u64,
        slo,
        endpoints,
    }
}

/// Assemble the [`Request::Health`] answer. Segment/tombstone counts come
/// from the `pipeline.*` gauges the segmented pipeline maintains; for a
/// single-segment build they read zero.
fn build_health(shared: &Shared) -> HealthReply {
    let reg = td_obs::global();
    let draining = shared.shutting_down.load(Ordering::SeqCst);
    // Read the epoch in its own statement: inside the struct literal the
    // slot guard (a temporary) would live until the literal completes,
    // i.e. across the gauge/queue-depth lock acquisitions below.
    let epoch = relock(shared.slot.lock()).epoch;
    HealthReply {
        healthy: !draining,
        epoch,
        segments: reg.gauge("pipeline.segments").get().max(0.0) as u64,
        tombstones: reg.gauge("pipeline.tombstones").get().max(0.0) as u64,
        queue_depth: shared.queue.depth() as u64,
        inflight: shared.metrics.inflight.get().max(0.0) as u64,
        workers: shared.workers,
        draining,
        traced: shared.trace.as_ref().map_or(0, |l| l.ring.len() as u64),
    }
}

/// Answer one admin-plane request from server state. The caller guards
/// with [`Request::is_admin`], so the fallback arm is unreachable.
fn answer_admin(shared: &Shared, req: &Request) -> Reply {
    match req {
        Request::Stats => Reply::Stats(build_stats(shared)),
        Request::MetricsDump => {
            let reg = td_obs::global();
            Reply::Metrics(MetricsReply {
                prometheus: reg.export_prometheus(),
                json: reg.export_json(),
            })
        }
        Request::SlowQueries { n } => {
            let trees = shared.trace.as_ref().map_or_else(Vec::new, |l| {
                l.slow.worst(*n).iter().map(tree_to_json).collect()
            });
            Reply::SlowQueries(trees)
        }
        _ => Reply::Health(build_health(shared)),
    }
}

/// Answer one persist-plane request against the durable pipeline.
/// Mutations (`IngestTable`, `DropTable`) are WAL-logged before they are
/// applied, then a fresh serving pipeline is staged for the next
/// [`Request::Reload`] — queries keep running against the current epoch
/// until the operator promotes it. `Snapshot` folds the WAL into a new
/// checkpoint file without touching the epoch slot at all.
///
/// A persistence I/O failure answers `Status::Internal` and leaves the
/// logical state unchanged (the WAL append happens first, so a failed
/// append means nothing was applied).
fn answer_persist(shared: &Shared, id: u64, req: &Request) -> ResponseEnvelope {
    let Some(persist) = shared.persist.as_ref() else {
        return ResponseEnvelope::fail(
            id,
            Status::BadRequest,
            "persistence is not configured on this server",
        );
    };
    let mut durable = relock(persist.lock());
    match req {
        Request::IngestTable {
            id: table_id,
            table,
        } => {
            // td-lint: allow(TD008) the persist mutex exists to serialize WAL append + apply; doing the mutation under it is the point
            match durable.ingest_table(*table_id, table) {
                Ok(()) => {
                    // td-lint: allow(TD008) staging reads the durable pipeline, so it must happen under the persist mutex; the staged slot is held for one pointer swap
                    *relock(shared.staged.lock()) = Some(serving_snapshot(&durable));
                    ResponseEnvelope::ok(
                        id,
                        Reply::Ingested(IngestReply {
                            tables: durable.pipeline().len() as u64,
                            wal_records: durable.wal_records(),
                            staged: true,
                        }),
                    )
                }
                Err(e) => ResponseEnvelope::fail(id, Status::Internal, e.to_string()),
            }
        }
        // td-lint: allow(TD008) drop is WAL-logged under the persist mutex by design, same as ingest above
        Request::DropTable { id: table_id } => match durable.drop_table(*table_id) {
            Ok(existed) => {
                // td-lint: allow(TD008) staging reads the durable pipeline, so it must happen under the persist mutex; the staged slot is held for one pointer swap
                *relock(shared.staged.lock()) = Some(serving_snapshot(&durable));
                ResponseEnvelope::ok(
                    id,
                    Reply::Dropped(DropReply {
                        existed,
                        wal_records: durable.wal_records(),
                        staged: true,
                    }),
                )
            }
            Err(e) => ResponseEnvelope::fail(id, Status::Internal, e.to_string()),
        },
        // `answer_persist` is guarded by `Request::is_persist`, so the
        // remaining persist variant is `Snapshot`.
        // td-lint: allow(TD008) folding the WAL into a checkpoint must exclude concurrent mutations; the persist mutex is that exclusion
        _ => match durable.checkpoint() {
            Ok(cp) => ResponseEnvelope::ok(
                id,
                Reply::Snapshotted(SnapshotReply {
                    seq: cp.snapshot_seq,
                    bytes: cp.snapshot_bytes,
                    wal_records_folded: cp.wal_records_folded,
                }),
            ),
            Err(e) => ResponseEnvelope::fail(id, Status::Internal, e.to_string()),
        },
    }
}

/// Write a response frame; a failed write means the client is gone,
/// which is not the server's error to surface.
fn respond(out: &Arc<Mutex<TcpStream>>, resp: &ResponseEnvelope) {
    if let Ok(payload) = encode_response(resp) {
        let ok = {
            let mut stream = relock(out.lock());
            // td-lint: allow(TD008) the out-mutex exists to keep a whole frame contiguous on the shared stream; writing under it is the point
            write_frame(&mut *stream, &payload).is_ok()
        };
        if !ok {
            td_obs::global().counter("serve.io.write_errors").add(1);
        }
    }
}

/// A running server. Dropping it performs a full graceful shutdown.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    down: bool,
}

impl Server {
    /// Bind, start the worker pool, and begin accepting clients.
    ///
    /// # Errors
    /// Fails if the listener cannot bind `cfg.addr`.
    pub fn start(pipeline: Arc<DiscoveryPipeline>, cfg: ServerConfig) -> std::io::Result<Server> {
        Self::start_inner(pipeline, None, cfg)
    }

    /// Start a server whose state is backed by a td-store directory: the
    /// initial serving pipeline is merged from the (restored) durable
    /// pipeline, and the persist plane ([`Request::IngestTable`],
    /// [`Request::DropTable`], [`Request::Snapshot`]) is enabled —
    /// mutations are WAL-logged before they apply and stage fresh
    /// serving pipelines for the next [`Request::Reload`].
    ///
    /// Restore-aware boot is `crate::persist::boot` + this:
    ///
    /// ```no_run
    /// # use td_serve::{Server, ServerConfig};
    /// # let ctx: td_core::segment::PipelineContext = unimplemented!();
    /// let (durable, stats) = td_serve::persist::boot("/var/lib/td", ctx)?;
    /// assert!(stats.restore_ms >= 0.0);
    /// let server = Server::start_durable(durable, ServerConfig::default())?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Fails if the listener cannot bind `cfg.addr`.
    pub fn start_durable(durable: DurablePipeline, cfg: ServerConfig) -> std::io::Result<Server> {
        let pipeline = serving_snapshot(&durable);
        Self::start_inner(pipeline, Some(durable), cfg)
    }

    fn start_inner(
        pipeline: Arc<DiscoveryPipeline>,
        persist: Option<DurablePipeline>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        td_obs::global().gauge("serve.pipeline.epoch").set(0.0);
        let worker_count = cfg.workers.max(1);
        let trace = cfg
            .trace
            .enabled
            .then(|| TraceLayer::new(cfg.trace.clone(), worker_count));
        let shared = Arc::new(Shared {
            slot: Mutex::new(PipelineSlot { epoch: 0, pipeline }),
            staged: Mutex::new(None),
            queue: AdmissionQueue::new(cfg.queue_capacity),
            cache: ResultCache::new(cfg.cache),
            shutting_down: AtomicBool::new(false),
            metrics: Metrics::new(),
            requests: AtomicU64::new(0),
            served_ok: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            trace,
            workers: worker_count as u64,
            persist: persist.map(Mutex::new),
        });

        let workers = (0..worker_count)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, idx as u64))
            })
            .collect();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let max_frame = cfg.max_frame_bytes;
            let poll = cfg.poll_interval;
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns, max_frame, poll))
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            conns,
            workers,
            down: false,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stage a pipeline for the next [`Request::Reload`]. Staging is
    /// side-effect free: queries keep running against the current epoch
    /// until a `Reload` promotes the staged pipeline. Staging again
    /// before a reload replaces the previously staged pipeline.
    pub fn stage_pipeline(&self, pipeline: Arc<DiscoveryPipeline>) {
        *relock(self.shared.staged.lock()) = Some(pipeline);
    }

    /// The pipeline epoch currently serving (starts at 0, bumped by every
    /// [`Request::Reload`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        relock(self.shared.slot.lock()).epoch
    }

    /// Point-in-time statistics.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            served_ok: self.shared.served_ok.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            deadline_expired: self.shared.deadline_expired.load(Ordering::Relaxed),
            bad_requests: self.shared.bad_requests.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
        }
    }

    /// Graceful drain-then-shutdown: stop accepting, let connection
    /// threads finish their current frame, refuse new admissions, run
    /// every already-admitted job to completion, then join all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag.
        // td-lint: allow(TD011) best-effort wake-up dial: a refused connect means the accept loop already exited
        let _ = TcpStream::connect(self.addr);
        let mut panicked = 0u64;
        if let Some(h) = self.accept.take() {
            panicked += u64::from(h.join().is_err());
        }
        let conns = std::mem::take(&mut *relock(self.conns.lock()));
        for h in conns {
            panicked += u64::from(h.join().is_err());
        }
        // Connections are quiet: close the queue so workers drain the
        // backlog and exit.
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            panicked += u64::from(h.join().is_err());
        }
        if panicked > 0 {
            td_obs::global()
                .counter("serve.thread.panics")
                .add(panicked);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_frame: usize,
    poll: Duration,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): drop it.
                    return;
                }
                let shared = Arc::clone(shared);
                let handle =
                    std::thread::spawn(move || connection_loop(stream, &shared, max_frame, poll));
                // Prune exited connection threads so the handle list is
                // bounded by *live* connections, not by lifetime total.
                let mut conns = relock(conns.lock());
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failures (EMFILE, aborted handshakes)
                // must not kill the server; surface them to the operator.
                // td-lint: allow(TD004) accept-loop diagnostics have no other channel
                eprintln!("td-serve: accept error: {e}");
            }
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, max_frame: usize, poll: Duration) {
    // The read timeout is what lets this thread observe shutdown between
    // (or inside) frames; FrameReader keeps partial progress across
    // timeouts.
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let out = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut read_half = stream;
    let mut reader = FrameReader::new();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match reader.poll(&mut read_half, max_frame) {
            Ok(FramePoll::Pending) => {}
            Ok(FramePoll::Eof) => return,
            Ok(FramePoll::Frame(payload)) => handle_frame(&payload, shared, &out),
            Err(e) => {
                // Framing is unrecoverable mid-stream: report and close.
                shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                respond(
                    &out,
                    &ResponseEnvelope::fail(0, Status::BadRequest, e.to_string()),
                );
                return;
            }
        }
    }
}

fn handle_frame(payload: &[u8], shared: &Arc<Shared>, out: &Arc<Mutex<TcpStream>>) {
    let env = match decode_request(payload) {
        Ok(env) => env,
        Err(e) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond(
                out,
                &ResponseEnvelope::fail(0, Status::BadRequest, e.to_string()),
            );
            return;
        }
    };
    shared.requests.fetch_add(1, Ordering::Relaxed);

    // Liveness probes are answered inline — they must succeed even when
    // the queue is saturated, or health checks flap exactly when the
    // operator needs them.
    if matches!(env.req, Request::Ping) {
        let t = Timer::start();
        shared.served_ok.fetch_add(1, Ordering::Relaxed);
        respond(out, &ResponseEnvelope::ok(env.id, Reply::Pong));
        shared.metrics.record_latency("ping", t.elapsed());
        return;
    }

    // The admin plane is likewise answered inline from server state —
    // observability must keep working exactly when the queue is full or
    // the server is draining.
    if env.req.is_admin() {
        let t = Timer::start();
        let reply = answer_admin(shared, &env.req);
        shared.served_ok.fetch_add(1, Ordering::Relaxed);
        respond(out, &ResponseEnvelope::ok(env.id, reply));
        shared
            .metrics
            .record_latency(env.req.endpoint(), t.elapsed());
        return;
    }

    if shared.shutting_down.load(Ordering::SeqCst) {
        respond(
            out,
            &ResponseEnvelope::fail(env.id, Status::ShuttingDown, "server is draining"),
        );
        return;
    }

    // The persist plane is answered inline on this connection thread:
    // mutations serialize on the durable-pipeline mutex, which no query
    // worker ever takes, so a slow checkpoint cannot stall searches. It
    // sits after the drain check — a draining server refuses mutations.
    if env.req.is_persist() {
        let t = Timer::start();
        let resp = answer_persist(shared, env.id, &env.req);
        if resp.status == Status::Ok {
            shared.served_ok.fetch_add(1, Ordering::Relaxed);
        }
        respond(out, &resp);
        shared
            .metrics
            .record_latency(env.req.endpoint(), t.elapsed());
        return;
    }

    // Batch frames are shape-checked at admission so a malformed batch
    // (empty, oversized, mixed-family, or nesting non-batchable work)
    // fails fast with `BadRequest` instead of occupying a queue slot —
    // and can never panic a worker.
    if let Request::Batch { requests } = &env.req {
        if let Err(e) = Request::validate_batch(requests) {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond(out, &ResponseEnvelope::fail(env.id, Status::BadRequest, e));
            return;
        }
    }

    // Hot swap, answered inline: promote the staged pipeline (if any),
    // bump the epoch, flush the cache. Ordering matters — the epoch/
    // pipeline move under the slot lock first, the flush second: a racing
    // query either carries the old epoch (its stale cache fill is keyed
    // under the old epoch, unreachable by post-swap requests) or the new
    // one (it executes against the new pipeline).
    if matches!(env.req, Request::Reload) {
        let t = Timer::start();
        let staged = relock(shared.staged.lock()).take();
        let epoch = {
            let mut slot = relock(shared.slot.lock());
            if let Some(p) = staged {
                slot.pipeline = p;
            }
            slot.epoch += 1;
            slot.epoch
        };
        shared.cache.clear();
        td_obs::global()
            .gauge("serve.pipeline.epoch")
            .set(epoch as f64);
        shared.served_ok.fetch_add(1, Ordering::Relaxed);
        respond(out, &ResponseEnvelope::ok(env.id, Reply::Reloaded(epoch)));
        shared.metrics.record_latency("reload", t.elapsed());
        return;
    }

    // Epoch and pipeline are read under one lock so a request can never
    // pair a new-epoch cache key with an old pipeline (or vice versa).
    let (epoch, pipeline) = {
        let slot = relock(shared.slot.lock());
        (slot.epoch, Arc::clone(&slot.pipeline))
    };

    // The request's trace starts here — everything before this point is
    // framing. The id is a pure function of (server seed, envelope id),
    // so a seeded replay reproduces its trace ids.
    let trace = shared.trace.as_ref().map(|l| {
        let tr = l.start(env.id);
        tr.set_endpoint(env.req.endpoint());
        tr.set_epoch(epoch);
        tr
    });

    // Cache keys are epoch-prefixed: entries filled before a swap are
    // unreachable afterwards even if a racing worker writes one after the
    // flush.
    let key = match canonical_bytes(&env.req) {
        Ok(k) => {
            let mut key = epoch.to_be_bytes().to_vec();
            key.extend_from_slice(&k);
            key
        }
        Err(e) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond(
                out,
                &ResponseEnvelope::fail(env.id, Status::BadRequest, e.to_string()),
            );
            return;
        }
    };

    // Cache hits bypass admission entirely: they cost microseconds and
    // consuming queue slots for them would shed real work.
    let t = Timer::start();
    let cached = {
        let _lookup = trace.as_ref().map(|tr| tr.open("cache.lookup"));
        shared.cache.get(&key)
    };
    if let Some(reply) = cached {
        shared.metrics.cache_hits.inc();
        shared.served_ok.fetch_add(1, Ordering::Relaxed);
        // Finish the trace before the response leaves: once the client
        // has its reply, an admin probe must already see this request.
        if let (Some(layer), Some(tr)) = (shared.trace.as_ref(), trace.as_ref()) {
            tr.set_cache_hit(true);
            layer.finish(tr.id().0, tr, t.elapsed_ns());
        }
        respond(out, &ResponseEnvelope::ok(env.id, (*reply).clone()));
        shared
            .metrics
            .record_latency(env.req.endpoint(), t.elapsed());
        return;
    }
    shared.metrics.cache_misses.inc();

    let endpoint = env.req.endpoint();
    // The queue-wait span opens on this thread and rides the queue inside
    // the job; the worker that dequeues it drops the guard.
    let queue_span = trace.as_ref().map(|tr| tr.open("queue.wait"));
    let job = Job {
        id: env.id,
        req: env.req,
        key,
        endpoint,
        deadline_ms: env.deadline_ms,
        admitted: Timer::start(),
        pipeline,
        out: Arc::clone(out),
        trace,
        queue_span,
    };
    // Raise the depth gauge *before* the push: once pushed, a worker can
    // pop and decrement immediately, and inc-after-push would let the
    // gauge go negative. The floored decrement on the error paths (and in
    // the workers) keeps concurrent snapshots at zero or above.
    shared.metrics.queue_depth.inc();
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.metrics.queue_depth.dec_floored();
            shared.shed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.shed.inc();
            respond(
                out,
                &ResponseEnvelope::fail(
                    env.id,
                    Status::Overloaded,
                    "admission queue full; retry later",
                ),
            );
        }
        Err(PushError::Closed) => {
            shared.metrics.queue_depth.dec_floored();
            respond(
                out,
                &ResponseEnvelope::fail(env.id, Status::ShuttingDown, "server is draining"),
            );
        }
    }
}

/// Most queued compatible singles a worker may fold into one batched
/// execution (counting the request it popped). Matches the sweet spot of
/// the batched probe paths without starving other workers of queue work.
const MAX_COALESCE: usize = 16;

/// Answer a job whose deadline passed while it sat in the queue.
fn expire_job(shared: &Arc<Shared>, worker_idx: u64, job: &Job) {
    shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
    shared.metrics.deadline_expired.inc();
    if let (Some(layer), Some(tr)) = (shared.trace.as_ref(), job.trace.as_ref()) {
        tr.set_status("deadline_exceeded");
        layer.finish(worker_idx, tr, job.admitted.elapsed_ns());
    }
    respond(
        &job.out,
        &ResponseEnvelope::fail(
            job.id,
            Status::DeadlineExceeded,
            "deadline passed while queued",
        ),
    );
}

/// Record, trace-finish, cache, and write one job's reply.
fn deliver(shared: &Arc<Shared>, worker_idx: u64, job: Job, reply: Arc<Reply>, elapsed: Duration) {
    shared.metrics.record_latency(job.endpoint, elapsed);
    if let (Some(layer), Some(tr)) = (shared.trace.as_ref(), job.trace.as_ref()) {
        layer.finish(worker_idx, tr, job.admitted.elapsed_ns());
    }
    let resp = ResponseEnvelope::ok(job.id, (*reply).clone());
    if let Ok(payload) = encode_response(&resp) {
        // Charge the cache what the reply costs on the wire.
        shared.cache.put(job.key, reply, payload.len());
        shared.served_ok.fetch_add(1, Ordering::Relaxed);
        let ok = {
            let mut stream = relock(job.out.lock());
            // td-lint: allow(TD008) frame serialization: the out-mutex is held across the write so concurrent workers cannot interleave frames
            let wrote = write_frame(&mut *stream, &payload).is_ok();
            wrote && stream.flush().is_ok() // td-lint: allow(TD008) same frame-serialization section as the write above
        };
        if !ok {
            td_obs::global().counter("serve.io.write_errors").add(1);
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, worker_idx: u64) {
    while let Some(mut job) = shared.queue.pop() {
        shared.metrics.queue_depth.dec_floored();
        // The request is out of the queue: close its queue-wait span.
        drop(job.queue_span.take());
        if job.deadline_ms > 0 && job.admitted.elapsed_ms() > job.deadline_ms as f64 {
            expire_job(shared, worker_idx, &job);
            continue;
        }
        // Opportunistic coalescing: a worker that pops a batchable single
        // sweeps queued compatible singles (same family, same pipeline)
        // and answers them all through one batched execution. The batched
        // entry points produce byte-identical replies, so a coalesced
        // client sees nothing but lower latency under load.
        let extras = if job.req.is_batchable() {
            shared.queue.drain_matching(MAX_COALESCE - 1, |j| {
                j.endpoint == job.endpoint
                    && j.req.is_batchable()
                    && Arc::ptr_eq(&j.pipeline, &job.pipeline)
            })
        } else {
            Vec::new()
        };
        if extras.is_empty() {
            shared.metrics.inflight.inc();
            let t = Timer::start();
            let reply = {
                // Attach the trace to this worker thread for the duration
                // of the query: the pipeline's probe/rank instrumentation
                // finds it through the thread-local and nests under
                // `execute`.
                let _attached = job.trace.as_ref().map(td_obs::trace::attach);
                let _exec = job.trace.as_ref().map(|tr| tr.open("execute"));
                Arc::new(execute(&job.pipeline, &job.req))
            };
            shared.metrics.inflight.dec_floored();
            deliver(shared, worker_idx, job, reply, t.elapsed());
            continue;
        }
        let mut batch = Vec::with_capacity(1 + extras.len());
        // td-lint: allow(TD010) batch is a per-pop local holding at most MAX_COALESCE jobs
        batch.push(job);
        for mut extra in extras {
            shared.metrics.queue_depth.dec_floored();
            drop(extra.queue_span.take());
            if extra.deadline_ms > 0 && extra.admitted.elapsed_ms() > extra.deadline_ms as f64 {
                expire_job(shared, worker_idx, &extra);
            } else {
                // td-lint: allow(TD010) drain_matching already capped extras at MAX_COALESCE - 1
                batch.push(extra);
            }
        }
        td_obs::global()
            .counter("serve.batch.coalesced")
            .add((batch.len() - 1) as u64);
        shared.metrics.inflight.inc();
        let t = Timer::start();
        let reqs: Vec<Request> = batch.iter().map(|j| j.req.clone()).collect();
        let replies = {
            // Only the primary job's trace attaches for the shared
            // execution — a thread carries at most one trace, so the
            // per-component probe spans nest under the primary. The
            // coalesced extras still record their own `execute` window
            // plus a `probe.batched` marker so their trees stay
            // well-formed, and every job gets its own finish below.
            let _attached = batch[0].trace.as_ref().map(td_obs::trace::attach);
            let _execs: Vec<_> = batch
                .iter()
                .filter_map(|j| j.trace.as_ref())
                .map(|tr| tr.open("execute"))
                .collect();
            let _probes: Vec<_> = batch
                .iter()
                .skip(1)
                .filter_map(|j| j.trace.as_ref())
                .map(|tr| tr.open("probe.batched"))
                .collect();
            execute_batch(&batch[0].pipeline, &reqs)
        };
        shared.metrics.inflight.dec_floored();
        let elapsed = t.elapsed();
        for (j, reply) in batch.into_iter().zip(replies) {
            deliver(shared, worker_idx, j, Arc::new(reply), elapsed);
        }
    }
}
