//! Seeded, deterministic query workloads for load generation.
//!
//! A [`Workload`] draws requests from a fixed *pool* built once from a
//! [`DataLake`]; the pool is intentionally smaller than the request
//! count so the stream repeats queries — exactly the locality a result
//! cache exists to exploit. Everything is driven by a splitmix64 state
//! seeded from [`WorkloadConfig::seed`], so two workloads with the same
//! seed over the same lake produce byte-identical request sequences
//! (the property the `--seed` flag of `serve_report` exposes and the
//! integration tests assert).

use td_table::{DataLake, Table};

use crate::protocol::{Request, RequestEnvelope};

/// Workload shape.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// RNG seed; same seed + same lake = same request sequence.
    pub seed: u64,
    /// Distinct queries in the pool. Smaller pools repeat more and so
    /// hit the cache more.
    pub pool_size: usize,
    /// `k` passed to every search.
    pub k: usize,
    /// Deadline stamped on every envelope (`0` = none).
    pub deadline_ms: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x7D15_C0DE,
            pool_size: 32,
            k: 5,
            deadline_ms: 0,
        }
    }
}

/// Deterministic counter-free PRNG step (splitmix64). Local rather than
/// a `rand` dependency so the serving crate stays std-only.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<'a, T>(state: &mut u64, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        let idx = (splitmix64(state) % items.len() as u64) as usize;
        Some(&items[idx])
    }
}

/// A seeded stream of requests over a fixed pool.
pub struct Workload {
    pool: Vec<Request>,
    state: u64,
    deadline_ms: u64,
}

/// Build one pool entry for endpoint slot `which` (0..8) from `table`.
/// Falls back to `Keyword` when the table lacks what the endpoint
/// needs (e.g. no numeric column for `Correlated`).
fn pool_request(which: u64, table: &Table, tau: f32, k: usize) -> Request {
    let keyword = || Request::Keyword {
        query: table.name.clone(),
        k,
    };
    let text_col = || table.columns.iter().find(|c| !c.is_numeric());
    match which {
        0 => keyword(),
        1 => match text_col() {
            Some(c) => Request::Joinable {
                column: c.clone(),
                k,
            },
            None => keyword(),
        },
        2 => Request::Unionable {
            table: table.clone(),
            k,
        },
        3 => Request::UnionableSemantic {
            table: table.clone(),
            k,
        },
        4 => Request::UnionableRelationship {
            table: table.clone(),
            k,
        },
        5 => match text_col() {
            Some(c) => Request::FuzzyJoinable {
                column: c.clone(),
                tau,
                k,
            },
            None => keyword(),
        },
        6 => {
            let key_cols: Vec<usize> = if table.num_cols() > 1 {
                vec![0, 1]
            } else {
                vec![0]
            };
            Request::MultiJoinable {
                table: table.clone(),
                key_cols,
                k,
            }
        }
        _ => {
            let key = text_col();
            let numeric = table.columns.iter().find(|c| c.is_numeric());
            match (key, numeric) {
                (Some(key), Some(numeric)) => Request::Correlated {
                    key: key.clone(),
                    numeric: numeric.clone(),
                    k,
                },
                _ => keyword(),
            }
        }
    }
}

impl Workload {
    /// Build the query pool from `lake` and seed the stream.
    #[must_use]
    pub fn new(lake: &DataLake, cfg: &WorkloadConfig) -> Self {
        let tables: Vec<&Table> = lake.iter().map(|(_, t)| t).collect();
        let mut state = cfg.seed;
        let mut pool = Vec::with_capacity(cfg.pool_size.max(1));
        const TAUS: [f32; 4] = [0.5, 0.6, 0.7, 0.8];
        for _ in 0..cfg.pool_size.max(1) {
            let Some(table) = pick(&mut state, &tables) else {
                break;
            };
            let which = splitmix64(&mut state) % 8;
            let tau = TAUS[(splitmix64(&mut state) % TAUS.len() as u64) as usize];
            pool.push(pool_request(which, table, tau, cfg.k));
        }
        Workload {
            pool,
            state: cfg.seed ^ 0xA5A5_A5A5_A5A5_A5A5,
            deadline_ms: cfg.deadline_ms,
        }
    }

    /// Number of distinct pooled queries (0 only for an empty lake).
    #[must_use]
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Draw the next request (uniform over the pool).
    pub fn next_request(&mut self) -> Option<Request> {
        let state = &mut self.state;
        pick(state, &self.pool).cloned()
    }

    /// Draw the next request wrapped in an envelope.
    pub fn next_envelope(&mut self, id: u64) -> Option<RequestEnvelope> {
        self.next_request().map(|req| RequestEnvelope {
            id,
            deadline_ms: self.deadline_ms,
            req,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};

    fn small_lake() -> DataLake {
        LakeGenerator::standard()
            .generate(&LakeGenConfig {
                num_tables: 8,
                rows: (5, 12),
                cols: (2, 4),
                seed: 11,
                ..LakeGenConfig::default()
            })
            .lake
    }

    #[test]
    fn same_seed_same_sequence() {
        let lake = small_lake();
        let cfg = WorkloadConfig {
            seed: 42,
            pool_size: 16,
            ..WorkloadConfig::default()
        };
        let mut a = Workload::new(&lake, &cfg);
        let mut b = Workload::new(&lake, &cfg);
        for _ in 0..64 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let lake = small_lake();
        let mut cfg = WorkloadConfig {
            seed: 1,
            pool_size: 16,
            ..WorkloadConfig::default()
        };
        let mut a = Workload::new(&lake, &cfg);
        cfg.seed = 2;
        let mut b = Workload::new(&lake, &cfg);
        let same = (0..64)
            .filter(|_| a.next_request() == b.next_request())
            .count();
        assert!(same < 64, "seeds 1 and 2 should not generate identically");
    }

    #[test]
    fn pool_repeats_produce_duplicate_requests() {
        // pool_size 4 with 64 draws must repeat — the cache-hit driver.
        let lake = small_lake();
        let cfg = WorkloadConfig {
            seed: 7,
            pool_size: 4,
            ..WorkloadConfig::default()
        };
        let mut w = Workload::new(&lake, &cfg);
        let draws: Vec<Request> = (0..64).filter_map(|_| w.next_request()).collect();
        let mut seen = Vec::new();
        for d in &draws {
            if !seen.contains(d) {
                seen.push(d.clone());
            }
        }
        assert!(seen.len() <= 4);
        assert!(draws.len() > seen.len());
    }

    #[test]
    fn envelopes_carry_deadline_and_id() {
        let lake = small_lake();
        let cfg = WorkloadConfig {
            deadline_ms: 250,
            ..WorkloadConfig::default()
        };
        let mut w = Workload::new(&lake, &cfg);
        let env = w.next_envelope(9).expect("non-empty pool");
        assert_eq!(env.id, 9);
        assert_eq!(env.deadline_ms, 250);
    }
}
