//! The serve-layer batch story, over real sockets:
//!
//! * a `Request::Batch` frame answers with one sub-reply per sub-request,
//!   each **byte-identical** to the single-request response — against a
//!   single server and against the K-shard coordinator;
//! * opportunistic coalescing (a worker folding queued compatible
//!   singles into one batched execution) is invisible to clients except
//!   as latency;
//! * malformed batch frames — empty, oversized, mixed-family, nested,
//!   admin/control requests inside — fail with a clean `BadRequest` and
//!   never panic or hang the server. The committed corpus under
//!   `tests/corpus/batch/` replays those frames raw off disk and doubles
//!   as a seed corpus for future fuzzing of the batch surface.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use td_core::segment::PipelineContext;
use td_core::{DiscoveryPipeline, PipelineConfig};
use td_serve::{
    decode_response, encode_response, execute, read_frame, write_frame, Client, CoordServer,
    CoordServerConfig, Reply, Request, RequestEnvelope, ResponseEnvelope, Server, ServerConfig,
    ShardFleet, Status, MAX_BATCH, MAX_FRAME_BYTES,
};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

const K: usize = 6;

struct Fixture {
    tables: Vec<(TableId, Table)>,
    ctx: PipelineContext,
    /// Batch pipeline over the whole lake: the byte-identity oracle.
    batch: Arc<DiscoveryPipeline>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (8, 24),
            cols: (2, 4),
            seed: 20260808,
            ..LakeGenConfig::default()
        });
        let cfg = PipelineConfig::default();
        let batch = Arc::new(DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg));
        let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
        let tables = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        Fixture { tables, ctx, batch }
    })
}

fn env(id: u64, req: Request) -> RequestEnvelope {
    RequestEnvelope {
        id,
        deadline_ms: 0,
        req,
    }
}

/// One probe per search family (all eight), built from the fixture's
/// first table.
fn probes(fx: &Fixture) -> Vec<Request> {
    let qt = &fx.tables[0].1;
    let mut out = vec![
        Request::Keyword {
            query: "dataset".into(),
            k: K,
        },
        Request::Unionable {
            table: qt.clone(),
            k: K,
        },
        Request::UnionableSemantic {
            table: qt.clone(),
            k: K,
        },
        Request::UnionableRelationship {
            table: qt.clone(),
            k: K,
        },
        Request::MultiJoinable {
            table: qt.clone(),
            key_cols: vec![0, 1],
            k: K,
        },
    ];
    if let Some(c) = qt.columns.first() {
        out.push(Request::Joinable {
            column: c.clone(),
            k: K,
        });
        out.push(Request::FuzzyJoinable {
            column: c.clone(),
            tau: 0.8,
            k: K,
        });
    }
    let key = qt.columns.iter().find(|c| !c.is_numeric());
    let num = qt.columns.iter().find(|c| c.is_numeric());
    if let (Some(key), Some(num)) = (key, num) {
        out.push(Request::Correlated {
            key: key.clone(),
            numeric: num.clone(),
            k: K,
        });
    }
    out
}

/// The same request with a different k — batches mix result sizes.
fn with_k(req: &Request, k: usize) -> Request {
    let mut r = req.clone();
    match &mut r {
        Request::Keyword { k: kk, .. }
        | Request::Joinable { k: kk, .. }
        | Request::Unionable { k: kk, .. }
        | Request::UnionableSemantic { k: kk, .. }
        | Request::UnionableRelationship { k: kk, .. }
        | Request::FuzzyJoinable { k: kk, .. }
        | Request::MultiJoinable { k: kk, .. }
        | Request::Correlated { k: kk, .. } => *kk = k,
        _ => {}
    }
    r
}

/// A batch frame against a single server answers each sub-request
/// byte-for-byte like the one-at-a-time path — for every family, with
/// mixed k values, and again from the result cache.
#[test]
fn batch_frames_are_byte_identical_to_singles() {
    let fx = fixture();
    let mut server = Server::start(
        Arc::clone(&fx.batch),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for round in 0..2 {
        // Round 1 misses the cache, round 2 hits it: both byte-identical.
        for (i, probe) in probes(fx).into_iter().enumerate() {
            let requests: Vec<Request> = [1, K, 17].iter().map(|&k| with_k(&probe, k)).collect();
            let id = 500 + round * 100 + i as u64;
            let raw = client
                .call_raw(&env(
                    id,
                    Request::Batch {
                        requests: requests.clone(),
                    },
                ))
                .expect("call");
            let subs: Vec<Reply> = requests.iter().map(|r| execute(&fx.batch, r)).collect();
            let expected =
                encode_response(&ResponseEnvelope::ok(id, Reply::Batch(subs))).expect("encode");
            assert_eq!(
                raw,
                expected,
                "round {round} batch diverged on {}",
                probe.endpoint()
            );
        }
    }
    server.shutdown();
}

/// Malformed batches constructed in-process: every shape violation is a
/// clean `BadRequest` on a connection that stays usable afterwards.
#[test]
fn malformed_batches_fail_clean_and_never_hang() {
    let fx = fixture();
    let mut server = Server::start(
        Arc::clone(&fx.batch),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let kw = |k: usize| Request::Keyword {
        query: "dataset".into(),
        k,
    };

    let cases: Vec<(&str, Vec<Request>)> = vec![
        ("empty", Vec::new()),
        ("oversized", (0..=MAX_BATCH).map(|i| kw(i + 1)).collect()),
        (
            "mixed-family",
            vec![
                kw(3),
                Request::Unionable {
                    table: fx.tables[0].1.clone(),
                    k: 3,
                },
            ],
        ),
        (
            "nested",
            vec![Request::Batch {
                requests: vec![kw(1)],
            }],
        ),
        ("admin-inside", vec![Request::Stats]),
        ("ping-inside", vec![Request::Ping]),
        ("reload-inside", vec![Request::Reload]),
    ];
    for (i, (name, requests)) in cases.into_iter().enumerate() {
        let resp = client
            .call(&env(700 + i as u64, Request::Batch { requests }))
            .expect("a malformed batch must still get a reply");
        assert_eq!(resp.status, Status::BadRequest, "{name} must be rejected");
        assert!(resp.reply.is_none(), "{name} must carry no reply payload");
    }

    // The connection survives every rejection.
    let resp = client
        .call(&env(990, kw(3)))
        .expect("call after rejections");
    assert_eq!(resp.status, Status::Ok);
    server.shutdown();
}

/// Replay the committed seed corpus raw off disk — the server must
/// answer every frame with a well-formed error envelope (never a panic,
/// never a hang, never a protocol desync).
#[test]
fn seed_corpus_replays_to_clean_errors() {
    let fx = fixture();
    let mut server = Server::start(
        Arc::clone(&fx.batch),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/batch");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 6, "corpus must stay seeded");

    for path in entries {
        let payload = std::fs::read(&path).expect("read corpus file");
        write_frame(&mut stream, &payload).expect("send corpus frame");
        let resp_bytes = read_frame(&mut stream, MAX_FRAME_BYTES)
            .expect("server must answer the corpus frame")
            .expect("connection must stay open");
        let resp = decode_response(&resp_bytes).expect("well-formed response envelope");
        assert_eq!(
            resp.status,
            Status::BadRequest,
            "{} must be rejected cleanly",
            path.display()
        );
    }

    // The same connection still serves valid work: no desync.
    let valid = env(
        4242,
        Request::Keyword {
            query: "dataset".into(),
            k: 3,
        },
    );
    let payload = serde_json::to_string(&valid).expect("encode").into_bytes();
    write_frame(&mut stream, &payload).expect("send valid frame");
    let resp_bytes = read_frame(&mut stream, MAX_FRAME_BYTES)
        .expect("answer")
        .expect("open");
    let resp = decode_response(&resp_bytes).expect("decode");
    assert_eq!(resp.status, Status::Ok);
    server.shutdown();
}

/// Hammer a single-worker server from concurrent clients so the queue
/// backs up and the worker's opportunistic coalescing actually fires:
/// every reply must still be byte-identical to the direct oracle.
#[test]
fn coalesced_singles_stay_byte_identical() {
    let fx = fixture();
    let mut server = Server::start(
        Arc::clone(&fx.batch),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr();
    let reqs = probes(fx);

    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let reqs = reqs.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut out = Vec::new();
                for round in 0..3u64 {
                    for (i, req) in reqs.iter().enumerate() {
                        // Unique k per (client, round) so replies cannot
                        // all come from the cache.
                        let req = with_k(req, 1 + ((t + round) as usize % 5));
                        let id = t * 1000 + round * 100 + i as u64;
                        let raw = client.call_raw(&env(id, req.clone())).expect("call");
                        out.push((id, req, raw));
                    }
                }
                out
            })
        })
        .collect();

    for h in handles {
        for (id, req, raw) in h.join().expect("client thread") {
            let expected = encode_response(&ResponseEnvelope::ok(id, execute(&fx.batch, &req)))
                .expect("encode");
            assert_eq!(
                raw,
                expected,
                "coalesced single diverged on {}",
                req.endpoint()
            );
        }
    }
    server.shutdown();
}

/// A batch through the coordinator front-end (real TCP on both hops,
/// one fanout round per phase for the whole batch) matches the
/// whole-lake oracle byte-for-byte, for 1 and 3 shards; malformed and
/// shard-plane batches are refused.
#[test]
fn coordinator_batches_are_byte_identical_to_singles() {
    let fx = fixture();
    for shards in [1usize, 3] {
        let mut fleet = ShardFleet::start_partitioned(
            shards,
            &fx.ctx,
            &fx.tables,
            &ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("fleet");
        let coord = Arc::new(fleet.coordinator());
        let mut front =
            CoordServer::start(Arc::clone(&coord), CoordServerConfig::default()).expect("front");
        let mut client = Client::connect(front.local_addr()).expect("connect");

        for (i, probe) in probes(fx).into_iter().enumerate() {
            let requests: Vec<Request> = [1, K, 17].iter().map(|&k| with_k(&probe, k)).collect();
            let id = 600 + i as u64;
            let raw = client
                .call_raw(&env(
                    id,
                    Request::Batch {
                        requests: requests.clone(),
                    },
                ))
                .expect("call");
            let subs: Vec<Reply> = requests.iter().map(|r| execute(&fx.batch, r)).collect();
            let expected =
                encode_response(&ResponseEnvelope::ok(id, Reply::Batch(subs))).expect("encode");
            assert_eq!(
                raw,
                expected,
                "{shards}-shard coordinator batch diverged on {}",
                probe.endpoint()
            );
        }

        // The coordinator applies the same shape validation...
        let mixed = coord.handle(&env(
            900,
            Request::Batch {
                requests: vec![
                    Request::Keyword {
                        query: "dataset".into(),
                        k: 2,
                    },
                    Request::Unionable {
                        table: fx.tables[0].1.clone(),
                        k: 2,
                    },
                ],
            },
        ));
        assert_eq!(mixed.status, Status::BadRequest);
        // ...and keeps refusing shard-plane kinds even inside a batch.
        let plane = coord.handle(&env(
            901,
            Request::Batch {
                requests: vec![Request::KeywordStats {
                    query: "dataset".into(),
                }],
            },
        ));
        assert_eq!(plane.status, Status::BadRequest);

        front.shutdown();
        fleet.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random homogeneous batches (any family, any mix of k, any batch
    /// size up to the limit) over a live socket: byte-identical to the
    /// sequential oracle.
    #[test]
    fn random_batches_match_singles_over_sockets(
        family in 0usize..8,
        ks in proptest::collection::vec(1usize..20, 1..12),
    ) {
        static SRV: OnceLock<Server> = OnceLock::new();
        let fx = fixture();
        let server = SRV.get_or_init(|| {
            Server::start(
                Arc::clone(&fx.batch),
                ServerConfig { workers: 2, ..ServerConfig::default() },
            )
            .expect("server")
        });
        let all = probes(fx);
        let probe = &all[family % all.len()];
        let requests: Vec<Request> = ks.iter().map(|&k| with_k(probe, k)).collect();
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let raw = client
            .call_raw(&env(42, Request::Batch { requests: requests.clone() }))
            .expect("call");
        let subs: Vec<Reply> = requests.iter().map(|r| execute(&fx.batch, r)).collect();
        let expected = encode_response(&ResponseEnvelope::ok(42, Reply::Batch(subs)))
            .expect("encode");
        prop_assert_eq!(raw, expected);
    }
}
