//! End-to-end serving tests: a real server on an ephemeral port, real
//! TCP clients, and byte-for-byte comparison against direct in-process
//! pipeline calls.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use td_core::{DiscoveryPipeline, PipelineConfig};
use td_serve::{
    encode_response, execute, Client, Reply, Request, RequestEnvelope, ResponseEnvelope, Server,
    ServerConfig, Status, Workload, WorkloadConfig,
};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::DataLake;

struct Fixture {
    lake: DataLake,
    pipeline: Arc<DiscoveryPipeline>,
}

/// One shared pipeline for every test in this binary: builds are the
/// expensive part, serving is cheap.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (8, 24),
            cols: (2, 5),
            seed: 20260805,
            ..LakeGenConfig::default()
        });
        let pipeline =
            DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default());
        Fixture {
            lake: gl.lake,
            pipeline: Arc::new(pipeline),
        }
    })
}

fn start_server(cfg: ServerConfig) -> Server {
    Server::start(Arc::clone(&fixture().pipeline), cfg).expect("bind ephemeral port")
}

#[test]
fn ping_round_trips() {
    let mut server = start_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let resp = client
        .call(&RequestEnvelope {
            id: 7,
            deadline_ms: 0,
            req: Request::Ping,
        })
        .expect("ping");
    assert_eq!(resp.id, 7);
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.reply, Some(Reply::Pong));
    server.shutdown();
}

/// The tentpole correctness property: eight concurrent clients issuing
/// a mixed-endpoint workload each receive responses byte-for-byte
/// identical to encoding the direct in-process call themselves.
#[test]
fn concurrent_clients_get_byte_identical_answers() {
    let fx = fixture();
    let mut server = start_server(ServerConfig {
        workers: 4,
        queue_capacity: 256,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let pipeline = Arc::clone(&fx.pipeline);
            let lake = &fx.lake;
            let mut workload = Workload::new(
                lake,
                &WorkloadConfig {
                    seed: 1000 + t,
                    pool_size: 12,
                    k: 4,
                    deadline_ms: 0,
                },
            );
            let mut requests = Vec::new();
            for i in 0..20u64 {
                requests.push(workload.next_envelope(t * 1000 + i).expect("pool"));
            }
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for env in requests {
                    let served = client.call_raw(&env).expect("served response");
                    let direct = encode_response(&ResponseEnvelope::ok(
                        env.id,
                        execute(&pipeline, &env.req),
                    ))
                    .expect("encode direct");
                    assert_eq!(
                        served,
                        direct,
                        "served bytes must match the direct in-process call for {:?}",
                        env.req.endpoint()
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let stats = server.stats();
    assert_eq!(stats.requests, 8 * 20);
    assert_eq!(
        stats.served_ok,
        8 * 20,
        "nothing may be shed at capacity 256"
    );
    server.shutdown();
}

#[test]
fn repeated_queries_hit_the_cache_with_identical_bytes() {
    let mut server = start_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let env = RequestEnvelope {
        id: 1,
        deadline_ms: 0,
        req: Request::Keyword {
            query: "census data".into(),
            k: 5,
        },
    };
    let cold = client.call_raw(&env).expect("cold call");
    let warm = client.call_raw(&env).expect("warm call");
    assert_eq!(cold, warm, "cache hit must serialize identically");
    let stats = server.stats();
    assert!(stats.cache.hits >= 1, "second call must be a cache hit");
    assert_eq!(stats.cache.misses, 1);
    server.shutdown();
}

/// Float-formatting noise in the client JSON must not split cache
/// entries: `5e-1` and `0.5` land in the same slot.
#[test]
fn cache_key_is_stable_across_client_float_formatting() {
    let mut server = start_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let a: RequestEnvelope =
        serde_json::from_str(r#"{"id":1,"deadline_ms":0,"req":{"Keyword":{"query":"tbl","k":3}}}"#)
            .expect("parse a");
    let b: RequestEnvelope = serde_json::from_str(
        r#"{"id":1,"deadline_ms":0,"req":{"Keyword":{"query":"tbl","k":3.0}}}"#,
    )
    .expect("parse b");
    let ra = client.call_raw(&a).expect("call a");
    let rb = client.call_raw(&b).expect("call b");
    assert_eq!(ra, rb);
    let stats = server.stats();
    assert_eq!(stats.cache.misses, 1, "first spelling populates the slot");
    assert!(stats.cache.hits >= 1, "second spelling must hit it");
    server.shutdown();
}

/// Saturation: one worker and a queue bound of 1 must shed rather than
/// build a backlog, and every request still gets a response.
#[test]
fn saturated_queue_sheds_with_overloaded_status() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let tables: Vec<_> = fixture().lake.iter().map(|(_, t)| t.clone()).collect();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let tables = tables.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut outcomes = (0u64, 0u64); // (ok, overloaded)
                for i in 0..16u64 {
                    // Distinct (table, k) per request: no cache hits, so
                    // every request competes for the single queue slot.
                    let table = tables[((t * 16 + i) as usize) % tables.len()].clone();
                    let resp = client
                        .call(&RequestEnvelope {
                            id: t * 100 + i,
                            deadline_ms: 0,
                            req: Request::Unionable {
                                table,
                                k: (t * 16 + i + 1) as usize,
                            },
                        })
                        .expect("every request must get a response");
                    match resp.status {
                        Status::Ok => outcomes.0 += 1,
                        Status::Overloaded => {
                            assert!(resp.reply.is_none());
                            outcomes.1 += 1;
                        }
                        other => panic!("unexpected status {other:?}"),
                    }
                }
                outcomes
            })
        })
        .collect();
    let (mut ok, mut overloaded) = (0, 0);
    for h in handles {
        let (o, v) = h.join().expect("client thread");
        ok += o;
        overloaded += v;
    }
    assert_eq!(ok + overloaded, 8 * 16);
    assert!(ok > 0, "the worker must still make progress");
    let stats = server.stats();
    assert_eq!(stats.shed, overloaded);
    assert!(
        stats.shed > 0,
        "8 concurrent clients against queue bound 1 must shed"
    );
    server.shutdown();
}

/// A request whose deadline passes while it waits behind a long backlog
/// is answered `DeadlineExceeded` without executing.
#[test]
fn queued_request_past_deadline_is_expired_not_executed() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        queue_capacity: 256,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let table = fixture()
        .lake
        .iter()
        .next()
        .map(|(_, t)| t.clone())
        .expect("non-empty lake");
    // Pipeline a deep backlog of distinct (cache-missing) queries, then
    // one with a 1 ms deadline. With a single worker the deadlined
    // request waits for the whole backlog — far longer than 1 ms.
    let mut pending = Vec::new();
    for i in 0..96u64 {
        let env = RequestEnvelope {
            id: i,
            deadline_ms: 0,
            req: Request::Unionable {
                table: table.clone(),
                k: (i + 1) as usize,
            },
        };
        let payload = serde_json::to_string(&env).expect("encode").into_bytes();
        pending.push(payload);
    }
    let deadlined = RequestEnvelope {
        id: 999,
        deadline_ms: 1,
        req: Request::Keyword {
            query: "expired-query".into(),
            k: 1,
        },
    };
    pending.push(
        serde_json::to_string(&deadlined)
            .expect("encode")
            .into_bytes(),
    );

    use std::io::Write;
    use std::net::TcpStream;
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
    for payload in &pending {
        let len = u32::try_from(payload.len()).expect("fits").to_be_bytes();
        stream.write_all(&len).expect("len");
        stream.write_all(payload).expect("payload");
    }
    stream.flush().expect("flush");

    let mut expired = false;
    let mut got = 0;
    while got < pending.len() {
        let frame = td_serve::read_frame(&mut stream, td_serve::MAX_FRAME_BYTES)
            .expect("read")
            .expect("response before EOF");
        let resp = td_serve::decode_response(&frame).expect("decode");
        got += 1;
        if resp.id == 999 {
            assert_eq!(resp.status, Status::DeadlineExceeded);
            assert!(resp.reply.is_none());
            expired = true;
        }
    }
    assert!(expired, "the deadlined request must be answered");
    assert!(server.stats().deadline_expired >= 1);
    drop(client.call(&RequestEnvelope {
        id: 1,
        deadline_ms: 0,
        req: Request::Ping,
    }));
    server.shutdown();
}

/// Two load-generator runs with the same seed over the same lake must
/// produce identical request sequences (the `--seed` reproducibility
/// contract of `serve_report`).
#[test]
fn same_seed_workloads_are_identical_end_to_end() {
    let fx = fixture();
    let cfg = WorkloadConfig {
        seed: 77,
        pool_size: 16,
        k: 3,
        deadline_ms: 50,
    };
    let mut a = Workload::new(&fx.lake, &cfg);
    let mut b = Workload::new(&fx.lake, &cfg);
    for i in 0..128u64 {
        let ea = a.next_envelope(i).expect("pool");
        let eb = b.next_envelope(i).expect("pool");
        assert_eq!(ea, eb);
        // Identity must hold at the byte level too — that is what makes
        // two same-seed bench runs hit the same cache slots.
        assert_eq!(
            td_serve::canonical_bytes(&ea.req).expect("canonical"),
            td_serve::canonical_bytes(&eb.req).expect("canonical"),
        );
    }
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let mut server = start_server(ServerConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .call(&RequestEnvelope {
            id: 3,
            deadline_ms: 0,
            req: Request::Keyword {
                query: "pre-shutdown".into(),
                k: 2,
            },
        })
        .expect("request before shutdown");
    assert_eq!(resp.status, Status::Ok);
    server.shutdown();
    server.shutdown(); // idempotent
    let stats = server.stats();
    assert_eq!(stats.served_ok, 1);
    // The listener is gone: new connections must be refused (or reset
    // immediately), not silently queued.
    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    if let Ok(s) = refused {
        // Some platforms accept briefly in the backlog; the socket must
        // then be closed without a response.
        let mut s = s;
        let env = RequestEnvelope {
            id: 1,
            deadline_ms: 0,
            req: Request::Ping,
        };
        let payload = serde_json::to_string(&env).expect("encode").into_bytes();
        use std::io::Write;
        if s.write_all(&(payload.len() as u32).to_be_bytes()).is_ok()
            && s.write_all(&payload).is_ok()
        {
            let got = td_serve::read_frame(&mut s, td_serve::MAX_FRAME_BYTES);
            assert!(
                matches!(got, Ok(None) | Err(_)),
                "no service after shutdown"
            );
        }
    }
}
