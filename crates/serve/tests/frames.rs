//! Malformed-length defense over a live socket: a client that declares
//! an absurd frame length gets a clean `BadRequest` protocol error and a
//! closed connection — the server neither buffers toward the declared
//! length nor dies.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

use td_core::{DiscoveryPipeline, PipelineConfig};
use td_serve::{
    decode_response, read_frame, Client, Request, RequestEnvelope, Server, ServerConfig, Status,
    MAX_FRAME_BYTES,
};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};

fn pipeline() -> Arc<DiscoveryPipeline> {
    static P: OnceLock<Arc<DiscoveryPipeline>> = OnceLock::new();
    Arc::clone(P.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 4,
            rows: (6, 12),
            cols: (2, 3),
            seed: 20260805,
            ..LakeGenConfig::default()
        });
        Arc::new(DiscoveryPipeline::build(
            &gl.lake,
            &gl.registry,
            &[],
            &PipelineConfig::default(),
        ))
    }))
}

/// Declare a 4 GiB frame: the server answers `BadRequest` naming the
/// limit and closes the connection, while other clients keep working.
#[test]
fn absurd_length_prefix_gets_clean_error_and_close() {
    let mut server = Server::start(pipeline(), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(&u32::MAX.to_be_bytes()).expect("send prefix");
    raw.flush().expect("flush");

    let payload = read_frame(&mut raw, MAX_FRAME_BYTES)
        .expect("server must answer, not drop")
        .expect("a response frame, not EOF");
    let resp = decode_response(&payload).expect("decode");
    assert_eq!(resp.status, Status::BadRequest);
    let msg = resp.error.as_deref().unwrap_or("");
    assert!(
        msg.contains("exceeds") && msg.contains("limit"),
        "diagnostic should name the limit: {msg:?}"
    );
    // The connection is closed after the protocol error.
    assert_eq!(read_frame(&mut raw, MAX_FRAME_BYTES).expect("eof"), None);

    // The server is unaffected: a fresh client gets served.
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .call(&RequestEnvelope {
            id: 1,
            deadline_ms: 0,
            req: Request::Ping,
        })
        .expect("ping");
    assert_eq!(resp.status, Status::Ok);

    drop(client);
    server.shutdown();
}

/// A tighter configured ceiling is enforced the same way: the declared
/// length is judged against `max_frame_bytes`, not the protocol-wide
/// maximum.
#[test]
fn configured_frame_ceiling_is_enforced() {
    let mut server = Server::start(
        pipeline(),
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(&4096u32.to_be_bytes()).expect("send prefix");
    raw.flush().expect("flush");

    let payload = read_frame(&mut raw, MAX_FRAME_BYTES)
        .expect("server must answer")
        .expect("a response frame");
    let resp = decode_response(&payload).expect("decode");
    assert_eq!(resp.status, Status::BadRequest);
    assert!(
        resp.error.as_deref().unwrap_or("").contains("4096"),
        "diagnostic should echo the declared length: {:?}",
        resp.error
    );

    server.shutdown();
}
