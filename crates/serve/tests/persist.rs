//! The persist plane end-to-end: a server started from a td-store
//! directory ingests over the wire (WAL-logged), promotes staged
//! pipelines via `Reload`, checkpoints via `Snapshot`, and — after a
//! full process "restart" (drop the server, boot from the same
//! directory) — serves responses byte-identical to a one-shot batch
//! build over the same live tables.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use td_core::segment::PipelineContext;
use td_core::{DiscoveryPipeline, PipelineConfig};
use td_serve::{
    boot, encode_response, execute, Client, Reply, Request, RequestEnvelope, ResponseEnvelope,
    Server, ServerConfig, Status,
};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

struct Fixture {
    tables: Vec<(TableId, Table)>,
    ctx: PipelineContext,
    /// Batch pipeline over the whole lake: the byte-identity oracle.
    batch: Arc<DiscoveryPipeline>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 10,
            rows: (8, 24),
            cols: (2, 4),
            seed: 20260807,
            ..LakeGenConfig::default()
        });
        let cfg = PipelineConfig::default();
        let batch = Arc::new(DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg));
        let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
        let tables = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        Fixture { tables, ctx, batch }
    })
}

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "td-serve-persist-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn env(id: u64, req: Request) -> RequestEnvelope {
    RequestEnvelope {
        id,
        deadline_ms: 0,
        req,
    }
}

/// Probe requests that exercise several search families against the
/// serving pipeline.
fn probes(fx: &Fixture) -> Vec<Request> {
    let qt = &fx.tables[0].1;
    let mut out = vec![
        Request::Keyword {
            query: "dataset".into(),
            k: 8,
        },
        Request::Unionable {
            table: qt.clone(),
            k: 8,
        },
        Request::UnionableSemantic {
            table: qt.clone(),
            k: 8,
        },
    ];
    if let Some(c) = qt.columns.first() {
        out.push(Request::Joinable {
            column: c.clone(),
            k: 8,
        });
        out.push(Request::FuzzyJoinable {
            column: c.clone(),
            tau: 0.8,
            k: 8,
        });
    }
    out
}

/// Every probe served over the wire must byte-match the direct
/// in-process answer from the batch oracle.
fn assert_serves_batch(client: &mut Client, fx: &Fixture) {
    for (i, req) in probes(fx).into_iter().enumerate() {
        let id = 7000 + i as u64;
        let served = client.call_raw(&env(id, req.clone())).expect("probe");
        let direct =
            encode_response(&ResponseEnvelope::ok(id, execute(&fx.batch, &req))).expect("encode");
        assert_eq!(
            served,
            direct,
            "served response diverged from batch build on {}",
            req.endpoint()
        );
    }
}

/// The tentpole round trip: ingest the lake over the wire, checkpoint,
/// "restart" the process, and the restored server answers byte-
/// identically to the batch build — without re-ingesting anything.
#[test]
fn durable_server_survives_restart_with_identical_answers() {
    let fx = fixture();
    let dir = scratch();

    // Boot 1: empty store, ingest everything over the wire.
    let (durable, stats) = boot(&dir, fx.ctx.clone()).expect("boot");
    assert!(stats.snapshot_seq.is_none());
    let mut server = Server::start_durable(durable, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for (i, (id, t)) in fx.tables.iter().enumerate() {
        let resp = client
            .call(&env(
                i as u64,
                Request::IngestTable {
                    id: *id,
                    table: t.clone(),
                },
            ))
            .expect("ingest");
        assert_eq!(resp.status, Status::Ok);
        match resp.reply {
            Some(Reply::Ingested(r)) => {
                assert_eq!(r.tables, i as u64 + 1);
                assert!(r.staged);
            }
            other => panic!("unexpected ingest reply {other:?}"),
        }
    }

    // Ingests stage but do not swap: promotion is the operator's Reload.
    assert_eq!(server.epoch(), 0);
    let resp = client.call(&env(100, Request::Reload)).expect("reload");
    assert_eq!(resp.reply, Some(Reply::Reloaded(1)));
    assert_serves_batch(&mut client, fx);

    // Checkpoint: the WAL (one record per ingest) folds into snapshot 1.
    let resp = client.call(&env(101, Request::Snapshot)).expect("snapshot");
    match resp.reply {
        Some(Reply::Snapshotted(s)) => {
            assert_eq!(s.seq, 1);
            assert!(s.bytes > 0);
            assert_eq!(s.wal_records_folded, fx.tables.len() as u64);
        }
        other => panic!("unexpected snapshot reply {other:?}"),
    }
    drop(client);
    server.shutdown();

    // Boot 2: restore from the snapshot — no WAL replay, no rebuild.
    let (durable, stats) = boot(&dir, fx.ctx.clone()).expect("reboot");
    assert_eq!(stats.snapshot_seq, Some(1));
    assert_eq!(stats.wal_records_replayed, 0);
    let mut server = Server::start_durable(durable, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_serves_batch(&mut client, fx);
    drop(client);
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

/// Ingest stages without swapping (queries keep the current epoch until
/// a Reload), and a drop over the wire tombstones the table in both the
/// durable state and the next promoted serving pipeline.
#[test]
fn ingest_and_drop_go_through_the_epoch_slot() {
    let fx = fixture();
    let dir = scratch();

    let (durable, _) = boot(&dir, fx.ctx.clone()).expect("boot");
    let mut server = Server::start_durable(durable, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let (victim, vt) = (fx.tables[0].0, fx.tables[0].1.clone());
    let probe = Request::Unionable { table: vt, k: 5 };

    // Epoch 0 serves the (empty) boot pipeline even after the ingest.
    for (i, (id, t)) in fx.tables.iter().enumerate() {
        client
            .call(&env(
                i as u64,
                Request::IngestTable {
                    id: *id,
                    table: t.clone(),
                },
            ))
            .expect("ingest");
    }
    match client.call(&env(50, probe.clone())).expect("probe").reply {
        Some(Reply::Scores(s)) => assert!(s.is_empty(), "pre-reload epoch must still be empty"),
        other => panic!("unexpected reply {other:?}"),
    }

    client.call(&env(51, Request::Reload)).expect("reload");
    match client.call(&env(52, probe.clone())).expect("probe").reply {
        Some(Reply::Scores(s)) => {
            assert!(s.iter().any(|(id, _)| *id == victim), "self-union ranks");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // Drop the table, promote, and it disappears from the ranking.
    let resp = client
        .call(&env(53, Request::DropTable { id: victim }))
        .expect("drop");
    match resp.reply {
        Some(Reply::Dropped(d)) => {
            assert!(d.existed);
            assert!(d.staged);
        }
        other => panic!("unexpected drop reply {other:?}"),
    }
    client.call(&env(54, Request::Reload)).expect("reload");
    match client.call(&env(55, probe)).expect("probe").reply {
        Some(Reply::Scores(s)) => {
            assert!(s.iter().all(|(id, _)| *id != victim), "dropped table gone");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // Dropping a dead id is observable but not an error.
    let resp = client
        .call(&env(56, Request::DropTable { id: victim }))
        .expect("re-drop");
    match resp.reply {
        Some(Reply::Dropped(d)) => assert!(!d.existed),
        other => panic!("unexpected drop reply {other:?}"),
    }

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Persist requests against a server started without a store answer a
/// clean BadRequest — not a panic, not a hang.
#[test]
fn persist_requests_without_a_store_are_refused_cleanly() {
    let fx = fixture();
    let mut server = Server::start(Arc::clone(&fx.batch), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for (i, req) in [
        Request::Snapshot,
        Request::DropTable { id: fx.tables[0].0 },
        Request::IngestTable {
            id: fx.tables[0].0,
            table: fx.tables[0].1.clone(),
        },
    ]
    .into_iter()
    .enumerate()
    {
        let resp = client.call(&env(i as u64, req)).expect("call");
        assert_eq!(resp.status, Status::BadRequest);
        assert!(
            resp.error.as_deref().unwrap_or("").contains("persistence"),
            "error should say persistence is not configured: {:?}",
            resp.error
        );
    }

    // The connection is still usable for ordinary queries afterwards.
    let resp = client
        .call(&env(
            99,
            Request::Keyword {
                query: "dataset".into(),
                k: 3,
            },
        ))
        .expect("query");
    assert_eq!(resp.status, Status::Ok);

    drop(client);
    server.shutdown();
}
