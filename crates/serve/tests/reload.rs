//! Epoch-versioned hot swap: staging a new pipeline, promoting it with
//! `Request::Reload`, and the cache-coherence guarantee that no pre-swap
//! cached result ever answers a post-swap request.
//!
//! The staged pipeline comes from a [`SegmentedPipeline`] with one table
//! dropped — the incremental path feeding the serving path, which is the
//! intended production loop: ingest/drop offline, snapshot, stage,
//! reload.

use std::sync::{Arc, OnceLock};

use td_core::{DiscoveryPipeline, PipelineConfig, SegmentedPipeline};
use td_serve::{
    encode_response, execute, Client, Reply, Request, RequestEnvelope, ResponseEnvelope, Server,
    ServerConfig, Status, Workload, WorkloadConfig,
};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{DataLake, Table, TableId};

struct Fixture {
    lake: DataLake,
    /// Batch pipeline over the whole lake (epoch 0).
    old: Arc<DiscoveryPipeline>,
    /// Snapshot of a `SegmentedPipeline` after dropping `victim`.
    new: Arc<DiscoveryPipeline>,
    victim: TableId,
    victim_table: Table,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (8, 24),
            cols: (2, 5),
            seed: 20260806,
            ..LakeGenConfig::default()
        });
        let cfg = PipelineConfig::default();
        let old = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg);
        let (victim, victim_table) = gl
            .lake
            .iter()
            .last()
            .map(|(id, t)| (id, t.clone()))
            .expect("non-empty lake");
        let mut sp = SegmentedPipeline::new(&gl.registry, &[], &cfg);
        for (id, t) in gl.lake.iter() {
            sp.ingest_table(id, t);
        }
        sp.drop_table(victim);
        let new = sp.snapshot();
        Fixture {
            lake: gl.lake,
            old: Arc::new(old),
            new,
            victim,
            victim_table,
        }
    })
}

/// A request whose answer must differ across the swap: self-union on the
/// dropped table ranks it first before, and cannot return it after.
fn victim_request() -> Request {
    Request::Unionable {
        table: fixture().victim_table.clone(),
        k: 5,
    }
}

fn env(id: u64, req: Request) -> RequestEnvelope {
    RequestEnvelope {
        id,
        deadline_ms: 0,
        req,
    }
}

/// The satellite regression: warm the cache, reload, and verify the
/// post-reload response is the new pipeline's answer — never the
/// pre-reload cached bytes.
#[test]
fn post_reload_request_never_sees_pre_reload_cache() {
    let fx = fixture();
    let old_direct = encode_response(&ResponseEnvelope::ok(
        1,
        execute(&fx.old, &victim_request()),
    ))
    .expect("encode old");
    let new_direct = encode_response(&ResponseEnvelope::ok(
        1,
        execute(&fx.new, &victim_request()),
    ))
    .expect("encode new");
    assert_ne!(
        old_direct, new_direct,
        "fixture must make the swap observable"
    );
    match execute(&fx.new, &victim_request()) {
        Reply::Scores(scores) => assert!(
            scores.iter().all(|(id, _)| *id != fx.victim),
            "dropped table must be absent from the new pipeline's ranking"
        ),
        other => panic!("unexpected reply shape {other:?}"),
    }

    let mut server = Server::start(Arc::clone(&fx.old), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Warm the cache: two identical requests, the second a cache hit.
    let cold = client.call_raw(&env(1, victim_request())).expect("cold");
    let warm = client.call_raw(&env(1, victim_request())).expect("warm");
    assert_eq!(cold, old_direct, "epoch 0 serves the old pipeline");
    assert_eq!(warm, old_direct);
    assert!(server.stats().cache.hits >= 1, "second call must hit");

    server.stage_pipeline(Arc::clone(&fx.new));
    assert_eq!(server.epoch(), 0, "staging alone must not swap");
    let resp = client.call(&env(2, Request::Reload)).expect("reload");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.reply, Some(Reply::Reloaded(1)));
    assert_eq!(server.epoch(), 1);

    // Same request, same connection: must be the new pipeline's answer.
    let after = client.call_raw(&env(1, victim_request())).expect("after");
    assert_eq!(
        after, new_direct,
        "post-reload response must come from the new pipeline"
    );
    assert_ne!(after, old_direct, "pre-reload cache must be unreachable");
    server.shutdown();
}

/// A reload with nothing staged is a cache-invalidation barrier: the
/// epoch bumps, cached entries die, and the same pipeline re-executes.
#[test]
fn reload_without_staged_pipeline_flushes_and_keeps_serving() {
    let fx = fixture();
    let mut server = Server::start(Arc::clone(&fx.old), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let before = client.call_raw(&env(1, victim_request())).expect("call");
    let entries_before = server.stats().cache.entries;
    assert!(entries_before >= 1);

    let resp = client.call(&env(2, Request::Reload)).expect("reload");
    assert_eq!(resp.reply, Some(Reply::Reloaded(1)));
    assert_eq!(server.stats().cache.entries, 0, "reload must flush");

    let after = client.call_raw(&env(1, victim_request())).expect("call");
    assert_eq!(before, after, "same pipeline, same bytes");
    server.shutdown();
}

/// The tentpole integration property: concurrent clients keep issuing a
/// mixed workload while the server hot-swaps underneath them. Every Ok
/// response must byte-match the old or the new pipeline's direct answer
/// — no torn state, no stale cache — and once a client has observed a
/// new-epoch answer to the probe request it must never see the old one
/// again.
#[test]
fn concurrent_clients_survive_hot_swap_with_exact_answers() {
    let fx = fixture();
    let mut server = Server::start(
        Arc::clone(&fx.old),
        ServerConfig {
            workers: 4,
            queue_capacity: 512,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server.stage_pipeline(Arc::clone(&fx.new));
    let addr = server.local_addr();

    let probe = victim_request();
    let old_probe = encode_response(&ResponseEnvelope::ok(77, execute(&fx.old, &probe)))
        .expect("encode old probe");
    let new_probe = encode_response(&ResponseEnvelope::ok(77, execute(&fx.new, &probe)))
        .expect("encode new probe");

    let handles: Vec<_> = (0..6)
        .map(|t| {
            let old = Arc::clone(&fx.old);
            let new = Arc::clone(&fx.new);
            let probe = probe.clone();
            let mut workload = Workload::new(
                &fx.lake,
                &WorkloadConfig {
                    seed: 500 + t,
                    pool_size: 12,
                    k: 4,
                    deadline_ms: 0,
                },
            );
            let mut requests = Vec::new();
            for i in 0..30u64 {
                let mut e = workload.next_envelope(t * 1000 + i).expect("pool");
                if i % 5 == 4 {
                    // Interleave the swap-sensitive probe.
                    e = RequestEnvelope {
                        id: e.id,
                        deadline_ms: 0,
                        req: probe.clone(),
                    };
                }
                requests.push(e);
            }
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut saw_new_probe = false;
                for e in requests {
                    let served = client.call_raw(&e).expect("response");
                    let from_old =
                        encode_response(&ResponseEnvelope::ok(e.id, execute(&old, &e.req)))
                            .expect("encode");
                    let from_new =
                        encode_response(&ResponseEnvelope::ok(e.id, execute(&new, &e.req)))
                            .expect("encode");
                    assert!(
                        served == from_old || served == from_new,
                        "response must exactly match one of the two pipelines ({:?})",
                        e.req.endpoint()
                    );
                    if e.req == probe {
                        if served == from_new {
                            saw_new_probe = true;
                        } else if saw_new_probe {
                            panic!("old-epoch answer observed after a new-epoch one");
                        }
                    }
                }
            })
        })
        .collect();

    // Let clients make progress on epoch 0, then swap mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let mut admin = Client::connect(addr).expect("connect admin");
    let resp = admin.call(&env(9999, Request::Reload)).expect("reload");
    assert_eq!(resp.reply, Some(Reply::Reloaded(1)));

    for h in handles {
        h.join().expect("client thread");
    }

    // After the dust settles the probe must be the new pipeline's answer.
    let settled = admin.call_raw(&env(77, probe)).expect("settled probe");
    assert_eq!(settled, new_probe);
    assert_ne!(settled, old_probe);
    assert_eq!(server.epoch(), 1);
    server.shutdown();
}
