//! The sharded deployment end-to-end, over real sockets: K shard
//! servers behind the scatter-gather coordinator answer every search
//! family **byte-identically** to a single server over the whole lake;
//! mutations route to the owning shard; `Reload` rolls across shards;
//! a killed shard degrades replies (named in the envelope's `degraded`
//! field) without hanging, and a rejoined shard restores byte-identical
//! answers.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use td_core::segment::PipelineContext;
use td_core::{DiscoveryPipeline, PipelineConfig};
use td_serve::{
    encode_response, execute, Client, CoordServer, CoordServerConfig, Reply, Request,
    RequestEnvelope, ResponseEnvelope, ServerConfig, ShardFleet, Status,
};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

const K: usize = 6;

struct Fixture {
    tables: Vec<(TableId, Table)>,
    ctx: PipelineContext,
    /// Batch pipeline over the whole lake: the byte-identity oracle.
    batch: Arc<DiscoveryPipeline>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (8, 24),
            cols: (2, 4),
            seed: 20260808,
            ..LakeGenConfig::default()
        });
        let cfg = PipelineConfig::default();
        let batch = Arc::new(DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg));
        let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
        let tables = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        Fixture { tables, ctx, batch }
    })
}

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "td-serve-shard-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn env(id: u64, req: Request) -> RequestEnvelope {
    RequestEnvelope {
        id,
        deadline_ms: 0,
        req,
    }
}

/// One probe per search family (all eight), built from the fixture's
/// first table.
fn probes(fx: &Fixture) -> Vec<Request> {
    let qt = &fx.tables[0].1;
    let mut out = vec![
        Request::Keyword {
            query: "dataset".into(),
            k: K,
        },
        Request::Unionable {
            table: qt.clone(),
            k: K,
        },
        Request::UnionableSemantic {
            table: qt.clone(),
            k: K,
        },
        Request::UnionableRelationship {
            table: qt.clone(),
            k: K,
        },
        Request::MultiJoinable {
            table: qt.clone(),
            key_cols: vec![0, 1],
            k: K,
        },
    ];
    if let Some(c) = qt.columns.first() {
        out.push(Request::Joinable {
            column: c.clone(),
            k: K,
        });
        out.push(Request::FuzzyJoinable {
            column: c.clone(),
            tau: 0.8,
            k: K,
        });
    }
    let key = qt.columns.iter().find(|c| !c.is_numeric());
    let num = qt.columns.iter().find(|c| c.is_numeric());
    if let (Some(key), Some(num)) = (key, num) {
        out.push(Request::Correlated {
            key: key.clone(),
            numeric: num.clone(),
            k: K,
        });
    }
    out
}

/// Every family served through the coordinator front-end (real TCP on
/// both hops: client → coordinator → shards) is byte-for-byte the
/// response a single whole-lake server would produce.
#[test]
fn coordinator_answers_are_byte_identical_to_single_pipeline() {
    let fx = fixture();
    for shards in [1, 3] {
        let mut fleet = ShardFleet::start_partitioned(
            shards,
            &fx.ctx,
            &fx.tables,
            &ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("fleet");
        let coord = Arc::new(fleet.coordinator());
        let mut front = CoordServer::start(coord, CoordServerConfig::default()).expect("front");
        let mut client = Client::connect(front.local_addr()).expect("connect");

        for (i, req) in probes(fx).into_iter().enumerate() {
            let id = 100 + i as u64;
            let raw = client.call_raw(&env(id, req.clone())).expect("call");
            let expected = encode_response(&ResponseEnvelope::ok(id, execute(&fx.batch, &req)))
                .expect("encode");
            assert_eq!(
                raw,
                expected,
                "{shards}-shard coordinator diverged on {}",
                req.endpoint()
            );
        }

        front.shutdown();
        fleet.shutdown();
    }
}

/// The full admin story over a durable fleet: mutations route to owning
/// shards (WAL-logged per shard), a rolling `Reload` promotes every
/// shard, then a killed shard degrades replies without hanging and a
/// restarted shard (restored from its own store directory) brings the
/// fleet back to byte-identical answers.
#[test]
fn degraded_replies_and_rejoin_over_durable_fleet() {
    let fx = fixture();
    let root = scratch();
    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let mut fleet = ShardFleet::start_durable(3, &root, &fx.ctx, &cfg).expect("fleet");
    let coord = fleet.coordinator();

    // Ingest the whole lake through the coordinator: each table is
    // routed to (and WAL-logged on) exactly its owning shard.
    for (i, (id, t)) in fx.tables.iter().enumerate() {
        let resp = coord.handle(&env(
            i as u64,
            Request::IngestTable {
                id: *id,
                table: t.clone(),
            },
        ));
        assert_eq!(resp.status, Status::Ok, "ingest {id:?}: {:?}", resp.error);
        assert!(resp.degraded.is_empty());
    }

    // Rolling reload: every shard promotes its staged pipeline.
    let resp = coord.handle(&env(900, Request::Reload));
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.reply, Some(Reply::Reloaded(1)));
    assert!(resp.degraded.is_empty());

    // Healthy fleet answers match the whole-lake oracle byte-for-byte.
    let reqs = probes(fx);
    let healthy: Vec<ResponseEnvelope> = reqs
        .iter()
        .enumerate()
        .map(|(i, req)| coord.handle(&env(1000 + i as u64, req.clone())))
        .collect();
    for (req, resp) in reqs.iter().zip(&healthy) {
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.degraded.is_empty());
        assert_eq!(
            resp.reply.as_ref(),
            Some(&execute(&fx.batch, req)),
            "healthy fleet diverged on {}",
            req.endpoint()
        );
    }

    // Kill shard 1 mid-workload: every family still answers Ok, fast,
    // with `degraded: [1]` — never a hang, never an error.
    fleet.stop_shard(1);
    for (i, req) in reqs.iter().enumerate() {
        let resp = coord.handle(&env(2000 + i as u64, req.clone()));
        assert_eq!(
            resp.status,
            Status::Ok,
            "degraded fleet must still answer {}",
            req.endpoint()
        );
        assert_eq!(
            resp.degraded,
            vec![1],
            "missing shard must be named on {}",
            req.endpoint()
        );
    }

    // Mutations whose owner is down fail hard (a routed write has one
    // home); mutations owned by live shards keep working.
    let owner_down = fx
        .tables
        .iter()
        .find(|(id, _)| coord.map().shard_of(*id) == 1)
        .expect("some table routes to shard 1");
    let resp = coord.handle(&env(3000, Request::DropTable { id: owner_down.0 }));
    assert_eq!(resp.status, Status::Internal);
    assert_eq!(resp.degraded, vec![1]);

    // Rejoin: restart shard 1 from its own store directory and re-point
    // the coordinator. Answers are byte-identical to the healthy run.
    let addr = fleet
        .restart_shard_durable(1, &root, &fx.ctx, &cfg)
        .expect("restart shard 1");
    coord.set_shard_addr(1, addr);
    for (i, (req, before)) in reqs.iter().zip(&healthy).enumerate() {
        let resp = coord.handle(&env(4000 + i as u64, req.clone()));
        assert_eq!(resp.status, Status::Ok);
        assert!(
            resp.degraded.is_empty(),
            "rejoined shard must clear degradation on {}",
            req.endpoint()
        );
        assert_eq!(
            resp.reply,
            before.reply,
            "rejoined fleet diverged on {}",
            req.endpoint()
        );
    }

    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The coordinator refuses shard-plane requests on its public surface.
#[test]
fn shard_plane_requests_are_rejected_by_the_coordinator() {
    let fx = fixture();
    let mut fleet = ShardFleet::start_partitioned(
        2,
        &fx.ctx,
        &fx.tables,
        &ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("fleet");
    let coord = fleet.coordinator();
    let resp = coord.handle(&env(
        1,
        Request::KeywordStats {
            query: "dataset".into(),
        },
    ));
    assert_eq!(resp.status, Status::BadRequest);
    fleet.shutdown();
}
