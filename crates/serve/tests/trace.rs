//! td-trace end-to-end tests: trace-id uniqueness under a saturated
//! worker pool, span-tree well-formedness over the wire, byte-identical
//! `SlowQueries` output across two identically seeded runs, and the
//! admin plane answering inline.

use std::sync::{Arc, OnceLock};

use td_core::{DiscoveryPipeline, PipelineConfig};
use td_serve::{
    Client, Reply, Request, RequestEnvelope, Server, ServerConfig, SpanNodeJson, Status,
    TraceConfig, TraceJson, Workload, WorkloadConfig,
};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::DataLake;

struct Fixture {
    lake: DataLake,
    pipeline: Arc<DiscoveryPipeline>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (8, 24),
            cols: (2, 5),
            seed: 20260807,
            ..LakeGenConfig::default()
        });
        let pipeline =
            DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default());
        Fixture {
            lake: gl.lake,
            pipeline: Arc::new(pipeline),
        }
    })
}

fn start_server(cfg: ServerConfig) -> Server {
    Server::start(Arc::clone(&fixture().pipeline), cfg).expect("bind ephemeral port")
}

/// Recursively collect every span name in a subtree.
fn names(span: &SpanNodeJson, out: &mut Vec<String>) {
    out.push(span.name.clone());
    for c in &span.children {
        names(c, out);
    }
}

/// Every child span must lie within its parent's `[start, start+dur)`
/// window — the wire-level restatement of `TraceTree::well_formed`.
fn well_formed(span: &SpanNodeJson) -> bool {
    span.children.iter().all(|c| {
        c.start_ns >= span.start_ns
            && c.start_ns.saturating_add(c.dur_ns) <= span.start_ns.saturating_add(span.dur_ns)
            && well_formed(c)
    })
}

fn span_names(tree: &TraceJson) -> Vec<String> {
    let mut out = Vec::new();
    for s in &tree.spans {
        names(s, &mut out);
    }
    out
}

fn slow_queries(client: &mut Client, id: u64, n: usize) -> Vec<TraceJson> {
    let resp = client
        .call(&RequestEnvelope {
            id,
            deadline_ms: 0,
            req: Request::SlowQueries { n },
        })
        .expect("slow_queries");
    assert_eq!(resp.status, Status::Ok);
    match resp.reply {
        Some(Reply::SlowQueries(trees)) => trees,
        other => panic!("expected SlowQueries reply, got {other:?}"),
    }
}

/// Eight concurrent clients against eight workers: every admitted
/// request gets a distinct trace id, and every recorded span tree is
/// well-formed with the expected structure (queue wait + cache lookup
/// on misses, per-component probes under `execute`).
#[test]
fn trace_ids_unique_and_trees_well_formed_under_load() {
    let fx = fixture();
    let mut server = start_server(ServerConfig {
        workers: 8,
        queue_capacity: 256,
        trace: TraceConfig {
            slow_threshold_ns: 0, // admit every trace to the slow log
            slow_capacity: 512,
            ..TraceConfig::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let mut workload = Workload::new(
                &fx.lake,
                &WorkloadConfig {
                    seed: 9000 + t,
                    pool_size: 12,
                    k: 4,
                    deadline_ms: 0,
                },
            );
            let mut requests = Vec::new();
            for i in 0..20u64 {
                requests.push(workload.next_envelope(t * 1000 + i).expect("pool"));
            }
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for env in requests {
                    let resp = client.call(&env).expect("response");
                    assert_eq!(resp.status, Status::Ok, "capacity 256 must not shed");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let mut client = Client::connect(addr).expect("connect admin");
    let trees = slow_queries(&mut client, 1_000_000, 512);
    assert_eq!(trees.len(), 8 * 20, "every finished request is traced");

    let mut ids: Vec<u64> = trees.iter().map(|t| t.trace_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 8 * 20, "trace ids must be unique across workers");

    for tree in &trees {
        assert!(tree.spans.iter().all(well_formed), "nested spans in bounds");
        assert!(!tree.endpoint.is_empty());
        let names = span_names(tree);
        assert!(
            names.iter().any(|n| n == "cache.lookup"),
            "every request records its cache probe: {names:?}"
        );
        if tree.cache_hit {
            assert!(
                !names.iter().any(|n| n == "execute"),
                "cache hits never reach a worker: {names:?}"
            );
        } else {
            assert!(
                names.iter().any(|n| n == "queue.wait"),
                "missing queue.wait: {names:?}"
            );
            assert!(
                names.iter().any(|n| n == "execute"),
                "missing execute: {names:?}"
            );
            assert!(
                names.iter().any(|n| n.starts_with("probe.")),
                "an executed query must probe at least one index component: {names:?}"
            );
        }
    }
    // Durations are descending — the log is the N *worst* since boot.
    for w in trees.windows(2) {
        assert!(w[0].dur_ns >= w[1].dur_ns, "slow log must be ordered");
    }
    server.shutdown();
}

/// The determinism contract: two fresh servers with the same trace seed
/// and the logical trace clock, fed the same seeded workload, answer
/// `SlowQueries` with byte-identical JSON.
#[test]
fn slow_queries_bytes_identical_across_seeded_runs() {
    fn run() -> Vec<u8> {
        let fx = fixture();
        let mut server = start_server(ServerConfig {
            workers: 2,
            queue_capacity: 64,
            trace: TraceConfig {
                logical_clock: true, // durations become event counts
                slow_threshold_ns: 0,
                slow_capacity: 64,
                seed: 0xDE7E_C7AB,
                ..TraceConfig::default()
            },
            ..ServerConfig::default()
        });
        let mut workload = Workload::new(
            &fx.lake,
            &WorkloadConfig {
                seed: 4242,
                pool_size: 10,
                k: 3,
                deadline_ms: 0,
            },
        );
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for i in 0..24u64 {
            let env = workload.next_envelope(i).expect("pool");
            let resp = client.call(&env).expect("response");
            assert_eq!(resp.status, Status::Ok);
        }
        let bytes = client
            .call_raw(&RequestEnvelope {
                id: 9999,
                deadline_ms: 0,
                req: Request::SlowQueries { n: 32 },
            })
            .expect("slow_queries raw");
        server.shutdown();
        bytes
    }
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "seeded SlowQueries must be byte-identical");
}

/// `Stats`, `MetricsDump`, and `Health` answer inline with a coherent
/// picture of the server, and `Health` keeps answering during drain.
#[test]
fn admin_plane_reports_coherent_state() {
    let mut server = start_server(ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Issue the same query twice: one miss (executed) + one cache hit.
    for id in 0..2u64 {
        let resp = client
            .call(&RequestEnvelope {
                id,
                deadline_ms: 0,
                req: Request::Keyword {
                    query: "census".into(),
                    k: 3,
                },
            })
            .expect("keyword");
        assert_eq!(resp.status, Status::Ok);
    }

    let resp = client
        .call(&RequestEnvelope {
            id: 10,
            deadline_ms: 0,
            req: Request::Stats,
        })
        .expect("stats");
    assert_eq!(resp.status, Status::Ok);
    let stats = match resp.reply {
        Some(Reply::Stats(s)) => s,
        other => panic!("expected Stats reply, got {other:?}"),
    };
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.slo.total, 2, "both keyword requests charge the SLO");
    assert!(stats.slo.budget_remaining >= 0.0 && stats.slo.budget_remaining <= 1.0);
    let kw = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "keyword")
        .expect("keyword endpoint row");
    assert!(kw.count >= 2);
    assert!(kw.p50_ns <= kw.p95_ns && kw.p95_ns <= kw.p99_ns);

    let resp = client
        .call(&RequestEnvelope {
            id: 11,
            deadline_ms: 0,
            req: Request::MetricsDump,
        })
        .expect("metrics_dump");
    let metrics = match resp.reply {
        Some(Reply::Metrics(m)) => m,
        other => panic!("expected Metrics reply, got {other:?}"),
    };
    assert!(metrics.prometheus.contains("serve_keyword_latency_ns"));
    assert!(metrics.json.starts_with('{'), "JSON export must be JSON");

    let resp = client
        .call(&RequestEnvelope {
            id: 12,
            deadline_ms: 0,
            req: Request::Health,
        })
        .expect("health");
    let health = match resp.reply {
        Some(Reply::Health(h)) => h,
        other => panic!("expected Health reply, got {other:?}"),
    };
    assert!(health.healthy);
    assert!(!health.draining);
    assert_eq!(health.workers, 3);
    assert!(health.traced >= 1, "the executed keyword query was traced");
    server.shutdown();
}

/// Tracing off: the request path works identically and the admin plane
/// degrades gracefully (empty SlowQueries, zeroed SLO) instead of
/// erroring.
#[test]
fn disabled_tracing_serves_and_answers_admin_empty() {
    let mut server = start_server(ServerConfig {
        trace: TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let resp = client
        .call(&RequestEnvelope {
            id: 1,
            deadline_ms: 0,
            req: Request::Keyword {
                query: "census".into(),
                k: 3,
            },
        })
        .expect("keyword");
    assert_eq!(resp.status, Status::Ok);
    let trees = slow_queries(&mut client, 2, 8);
    assert!(trees.is_empty(), "no tracing, no slow queries");
    let resp = client
        .call(&RequestEnvelope {
            id: 3,
            deadline_ms: 0,
            req: Request::Stats,
        })
        .expect("stats");
    let stats = match resp.reply {
        Some(Reply::Stats(s)) => s,
        other => panic!("expected Stats reply, got {other:?}"),
    };
    assert_eq!(stats.slo.total, 0);
    assert_eq!(stats.slo.budget_remaining, 1.0);
    server.shutdown();
}
