//! td-shard: sharded lake partitions with an exact scatter-gather
//! merge algebra.
//!
//! One process, one pipeline is the wrong shape for a lake of millions
//! of tables. This crate partitions a lake by hash of table id into K
//! shards ([`ShardMap`]), each owning its own
//! [`td_core::SegmentedPipeline`] (and, under a fleet store root, its
//! own WAL/snapshot directory — [`shard_dir`]), and provides the merge
//! algebra ([`merge`]) that folds per-shard answers for all eight
//! `search_*` families into rankings **byte-identical** to a one-shard
//! answer. [`ShardedPipeline`] is the in-process reference
//! implementation of that scatter-gather; td-serve's coordinator runs
//! the same algebra over the TCP protocol.
//!
//! Byte-identity rests on three properties, each enforced elsewhere and
//! relied on here:
//!
//! 1. every ranking is a total order (score descending, id ascending —
//!    `td_index::TopK`),
//! 2. per-table scores are pairwise (query vs table), never
//!    corpus-dependent — except BM25, which is re-based onto merged
//!    global statistics, and the column-aggregating families, which
//!    merge *column* windows before table aggregation,
//! 3. artifact extraction is context-only, so a table's indexed form
//!    does not depend on which shard owns it.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod merge;
pub mod partition;
pub mod sharded;

pub use partition::ShardMap;
pub use sharded::{shard_dir, ShardedPipeline};

// Re-exported so higher layers (td-serve's coordinator) can name the
// keyword statistics envelope without a direct td-index edge.
pub use td_index::Bm25Stats;
