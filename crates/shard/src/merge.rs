//! The exact scatter-gather merge algebra.
//!
//! Every ranking the pipeline produces is a *total order* — score
//! descending, then id ascending (this is what `TopK` enforces and
//! td-lint's TD005 polices). Under a total order, an item's rank within
//! any subset of the corpus is never better than its global rank, so
//! the global top-k is always contained in the union of per-shard
//! top-ks, and re-sorting that union under the same order reproduces
//! the global answer byte for byte.
//!
//! Three families need more than a plain top-k union:
//!
//! - **keyword** — BM25 scores depend on whole-corpus statistics (idf
//!   and average document length). The coordinator gathers per-shard
//!   [`Bm25Stats`], sums them, and re-scatters the merged stats so every
//!   shard scores on the global scale (two network phases).
//! - **joinable / fuzzy joinable** — the single-process implementations
//!   aggregate tables from an over-fetched *column* window
//!   (`column_fetch_width(k)` columns). The coordinator therefore merges
//!   per-shard column windows first and runs the very same table
//!   aggregation on the merged window.
//! - **unionable semantic (Starmie)** — retrieval-then-score: the
//!   coordinator merges per-shard candidate-column windows per query
//!   column, broadcasts the merged candidate *table* set, and merges the
//!   resulting scores. Exact for the `Flat` backend; with `Hnsw` the
//!   merged candidate window is at least as complete as any one shard's.
//!
//! All functions here are pure: they see only shard replies, never
//! sockets, so they are unit-testable against in-process pipelines.

use std::collections::BTreeSet;
use td_core::join::{CorrelatedHit, OverlapHit};
use td_index::Bm25Stats;
use td_table::{ColumnRef, TableId};

/// Merge per-shard `(table, score)` rankings into the global top-k.
/// Shards own disjoint tables, so no deduplication is needed.
#[must_use]
pub fn merge_scores(per_shard: Vec<Vec<(TableId, f64)>>, k: usize) -> Vec<(TableId, f64)> {
    let mut all: Vec<(TableId, f64)> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Merge per-shard `(table, overlap)` rankings into the global top-k
/// (exact-join table aggregation order: overlap descending, id
/// ascending).
#[must_use]
pub fn merge_overlaps(per_shard: Vec<Vec<(TableId, usize)>>, k: usize) -> Vec<(TableId, usize)> {
    let mut all: Vec<(TableId, usize)> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Merge per-shard exact-overlap *column* windows into the global
/// column window of `width` columns (overlap descending, column
/// ascending — the order the single-process inverted index emits).
#[must_use]
pub fn merge_overlap_columns(per_shard: Vec<Vec<OverlapHit>>, width: usize) -> Vec<OverlapHit> {
    let mut all: Vec<OverlapHit> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| b.overlap.cmp(&a.overlap).then(a.column.cmp(&b.column)));
    all.truncate(width);
    all
}

/// Merge per-shard fuzzy-containment *column* windows into the global
/// column window (containment descending, column ascending).
#[must_use]
pub fn merge_fuzzy_columns(
    per_shard: Vec<Vec<(ColumnRef, f64)>>,
    width: usize,
) -> Vec<(ColumnRef, f64)> {
    let mut all: Vec<(ColumnRef, f64)> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(width);
    all
}

/// Merge per-shard semantic candidate windows (outer: shard; inner: one
/// window per query column) into one global window per query column,
/// each of `fanout` columns (similarity descending, column ascending).
#[must_use]
pub fn merge_candidate_windows(
    per_shard: &[Vec<Vec<(ColumnRef, f32)>>],
    fanout: usize,
) -> Vec<Vec<(ColumnRef, f32)>> {
    let ncols = per_shard.iter().map(Vec::len).max().unwrap_or(0);
    (0..ncols)
        .map(|qc| {
            let mut all: Vec<(ColumnRef, f32)> = per_shard
                .iter()
                .filter_map(|shard| shard.get(qc))
                .flatten()
                .copied()
                .collect();
            all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            all.truncate(fanout);
            all
        })
        .collect()
}

/// The candidate *table* set of merged semantic windows: every table
/// owning a retrieved column.
#[must_use]
pub fn candidate_tables(windows: &[Vec<(ColumnRef, f32)>]) -> BTreeSet<TableId> {
    windows.iter().flatten().map(|(c, _)| c.table).collect()
}

/// Sum per-shard BM25 statistics into global corpus statistics (phase
/// one of distributed keyword search). `None` when shards disagree on
/// the query's term count or no shard replied.
#[must_use]
pub fn merge_keyword_stats(per_shard: &[Bm25Stats]) -> Option<Bm25Stats> {
    Bm25Stats::merge(per_shard)
}

/// Merge per-shard correlated-search hits into the global top-k. The
/// single-process ranking orders by |estimated correlation| descending,
/// ties by ascending sketch position — and sketches are laid out in
/// ascending (table, key column, numeric column) order, so that tuple
/// reproduces the tie order here.
#[must_use]
pub fn merge_correlated(per_shard: Vec<Vec<CorrelatedHit>>, k: usize) -> Vec<CorrelatedHit> {
    let mut all: Vec<CorrelatedHit> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        b.estimated_correlation
            .abs()
            .total_cmp(&a.estimated_correlation.abs())
            .then((a.key_column, a.numeric_column).cmp(&(b.key_column, b.numeric_column)))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TableId {
        TableId(i)
    }

    #[test]
    fn merge_scores_is_total_order() {
        let merged = merge_scores(
            vec![
                vec![(t(5), 2.0), (t(1), 1.0)],
                vec![(t(3), 2.0), (t(0), 2.0)],
            ],
            3,
        );
        assert_eq!(merged, vec![(t(0), 2.0), (t(3), 2.0), (t(5), 2.0)]);
    }

    #[test]
    fn merge_scores_negative_zero_ties_break_by_sign() {
        // total_cmp orders +0.0 above -0.0; the merge must agree with
        // TopK, which uses the same comparator.
        let merged = merge_scores(vec![vec![(t(1), -0.0)], vec![(t(2), 0.0)]], 2);
        assert_eq!(merged, vec![(t(2), 0.0), (t(1), -0.0)]);
    }

    #[test]
    fn merge_overlap_columns_orders_by_column_on_ties() {
        let h = |table: u32, col: usize, ov: usize| OverlapHit {
            column: ColumnRef::new(t(table), col),
            overlap: ov,
        };
        let merged = merge_overlap_columns(vec![vec![h(4, 0, 7), h(4, 1, 3)], vec![h(2, 2, 7)]], 2);
        assert_eq!(merged, vec![h(2, 2, 7), h(4, 0, 7)]);
    }

    #[test]
    fn merge_candidate_windows_per_query_column() {
        let c = |table: u32, col: usize, sim: f32| (ColumnRef::new(t(table), col), sim);
        let shard_a = vec![vec![c(0, 0, 0.9), c(0, 1, 0.5)]];
        let shard_b = vec![vec![c(7, 0, 0.7)]];
        let merged = merge_candidate_windows(&[shard_a, shard_b], 2);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], vec![c(0, 0, 0.9), c(7, 0, 0.7)]);
        let tables = candidate_tables(&merged);
        assert_eq!(tables.into_iter().collect::<Vec<_>>(), vec![t(0), t(7)]);
    }

    #[test]
    fn merge_keyword_stats_sums() {
        let a = Bm25Stats {
            num_docs: 3,
            total_len: 30,
            df: vec![1, 0],
        };
        let b = Bm25Stats {
            num_docs: 2,
            total_len: 10,
            df: vec![0, 2],
        };
        let m = merge_keyword_stats(&[a, b]).expect("merge");
        assert_eq!(m.num_docs, 5);
        assert_eq!(m.total_len, 40);
        assert_eq!(m.df, vec![1, 2]);
        let odd = Bm25Stats {
            num_docs: 1,
            total_len: 1,
            df: vec![0],
        };
        assert!(merge_keyword_stats(&[m, odd]).is_none());
        assert!(merge_keyword_stats(&[]).is_none());
    }

    #[test]
    fn merge_correlated_orders_by_abs_then_columns() {
        let hit = |table: u32, ki: usize, ni: usize, est: f64| CorrelatedHit {
            key_column: ColumnRef::new(t(table), ki),
            numeric_column: ColumnRef::new(t(table), ni),
            estimated_correlation: est,
            shared_keys: 4,
        };
        let merged = merge_correlated(
            vec![
                vec![hit(3, 0, 1, -0.8)],
                vec![hit(1, 0, 1, 0.8), hit(2, 0, 1, 0.5)],
            ],
            2,
        );
        assert_eq!(merged[0].key_column.table, t(1));
        assert_eq!(merged[1].key_column.table, t(3));
    }
}
