//! Deterministic hash partitioning of a lake into shards.
//!
//! Every placement decision in the sharded deployment — which shard
//! indexes a table, which shard an `IngestTable`/`DropTable` is routed
//! to, which shard's store directory persists it — goes through
//! [`ShardMap::shard_of`]. The function is a pure splitmix64 mix of the
//! table id, so coordinator and shards never have to exchange placement
//! state: both sides compute it.

use td_table::TableId;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
#[inline]
#[must_use]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-size hash partition of table ids into `shards` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count of zero");
        ShardMap { shards }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `id`.
    #[must_use]
    pub fn shard_of(&self, id: TableId) -> usize {
        (splitmix64(u64::from(id.0)) % self.shards as u64) as usize
    }

    /// Partition `(id, item)` pairs into per-shard buckets, preserving
    /// the input order within each bucket.
    #[must_use]
    pub fn partition<T>(
        &self,
        items: impl IntoIterator<Item = (TableId, T)>,
    ) -> Vec<Vec<(TableId, T)>> {
        let mut out: Vec<Vec<(TableId, T)>> = (0..self.shards).map(|_| Vec::new()).collect();
        for (id, item) in items {
            out[self.shard_of(id)].push((id, item));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_total() {
        let m = ShardMap::new(4);
        for i in 0..1000 {
            let s = m.shard_of(TableId(i));
            assert!(s < 4);
            assert_eq!(s, m.shard_of(TableId(i)), "routing must be pure");
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let m = ShardMap::new(1);
        for i in 0..100 {
            assert_eq!(m.shard_of(TableId(i)), 0);
        }
    }

    #[test]
    fn hash_spreads_sequential_ids() {
        // Sequential ids (the common case: dense lake ids) must not pile
        // onto one shard. With 1000 ids over 7 shards, each shard should
        // own a reasonable fraction.
        let m = ShardMap::new(7);
        let mut counts = [0usize; 7];
        for i in 0..1000 {
            counts[m.shard_of(TableId(i))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (80..=220).contains(&c),
                "shard {s} owns {c} of 1000 — poor spread: {counts:?}"
            );
        }
    }

    #[test]
    fn partition_preserves_order_within_buckets() {
        let m = ShardMap::new(3);
        let buckets = m.partition((0..50u32).map(|i| (TableId(i), i)));
        assert_eq!(buckets.len(), 3);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, 50);
        for b in &buckets {
            for w in b.windows(2) {
                assert!(w[0].0 < w[1].0, "input order lost within bucket");
            }
        }
    }
}
