//! In-process sharded pipeline: the reference scatter-gather
//! implementation.
//!
//! [`ShardedPipeline`] owns K [`SegmentedPipeline`]s, routes every write
//! through [`ShardMap`], and answers all eight search families by
//! running the merge algebra of [`crate::merge`] over per-shard
//! snapshots — exactly the orchestration td-serve's TCP coordinator
//! performs over sockets, minus the sockets. It is the byte-identity
//! oracle the equivalence proptests pin (K shards vs one pipeline) and
//! the in-process baseline `shard_report` sweeps.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use td_core::join::exact::column_fetch_width;
use td_core::join::CorrelatedHit;
use td_core::segment::PipelineContext;
use td_core::{DiscoveryPipeline, SegmentedPipeline};
use td_table::{Column, Table, TableId};

use crate::merge;
use crate::partition::ShardMap;

/// K hash-partitioned [`SegmentedPipeline`]s behind one search surface.
pub struct ShardedPipeline {
    map: ShardMap,
    shards: Vec<SegmentedPipeline>,
    /// Per-shard live-table gauges (`shard.<i>.tables`), kept current by
    /// the routed ingest/drop paths so an operator can see skew at a
    /// glance.
    table_gauges: Vec<std::sync::Arc<td_obs::Gauge>>,
}

impl ShardedPipeline {
    /// Empty sharded pipeline over `shards` partitions of one lake
    /// world. All shards share the context (embedders, KB, config), so
    /// a table's extracted artifacts do not depend on which shard owns
    /// it.
    #[must_use]
    pub fn with_context(shards: usize, ctx: &PipelineContext) -> Self {
        let map = ShardMap::new(shards);
        let reg = td_obs::global();
        ShardedPipeline {
            map,
            shards: (0..shards)
                .map(|_| SegmentedPipeline::with_context(ctx.clone()))
                .collect(),
            table_gauges: (0..shards)
                .map(|i| reg.gauge(&format!("shard.{i}.tables")))
                .collect(),
        }
    }

    /// The routing map.
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Per-shard pipelines (read access, e.g. to serve each behind its
    /// own server).
    #[must_use]
    pub fn shards(&self) -> &[SegmentedPipeline] {
        &self.shards
    }

    /// Total live tables across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(SegmentedPipeline::len).sum()
    }

    /// True if no shard holds a live table.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Route a table to its owning shard and ingest it there. Returns
    /// the shard index.
    pub fn ingest_table(&mut self, id: TableId, table: &Table) -> usize {
        let s = self.map.shard_of(id);
        self.shards[s].ingest_table(id, table);
        self.table_gauges[s].set(self.shards[s].len() as f64);
        s
    }

    /// Route a drop to the owning shard. Returns the shard index.
    pub fn drop_table(&mut self, id: TableId) -> usize {
        let s = self.map.shard_of(id);
        self.shards[s].drop_table(id);
        self.table_gauges[s].set(self.shards[s].len() as f64);
        s
    }

    /// Seal every shard's delta segment.
    pub fn seal_all(&mut self) {
        for s in &mut self.shards {
            s.seal();
        }
    }

    /// Compact every shard.
    pub fn compact_all(&mut self) {
        for s in &mut self.shards {
            s.compact();
        }
    }

    /// Current per-shard snapshots (cached inside each shard).
    #[must_use]
    pub fn snapshots(&self) -> Vec<Arc<DiscoveryPipeline>> {
        self.shards
            .iter()
            .map(SegmentedPipeline::snapshot)
            .collect()
    }

    /// Keyword search: two-phase (gather stats, scatter pinned stats).
    #[must_use]
    pub fn search_keyword(&self, query: &str, k: usize) -> Vec<(TableId, f64)> {
        let snaps = self.snapshots();
        let stats: Vec<_> = snaps.iter().map(|p| p.keyword_term_stats(query)).collect();
        let Some(global) = merge::merge_keyword_stats(&stats) else {
            return Vec::new();
        };
        merge::merge_scores(
            snaps
                .iter()
                .map(|p| p.search_keyword_with_stats(query, k, &global))
                .collect(),
            k,
        )
    }

    /// Exact-join search: merge column windows, then aggregate tables.
    #[must_use]
    pub fn search_joinable(&self, query: &Column, k: usize) -> Vec<(TableId, usize)> {
        let width = column_fetch_width(k);
        let window = merge::merge_overlap_columns(
            self.snapshots()
                .iter()
                .map(|p| p.search_joinable_columns(query, width))
                .collect(),
            width,
        );
        td_core::join::exact::aggregate_tables(window, k)
    }

    /// TUS union search: plain top-k union (pairwise scores).
    #[must_use]
    pub fn search_unionable(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        merge::merge_scores(
            self.snapshots()
                .iter()
                .map(|p| p.search_unionable(query, k))
                .collect(),
            k,
        )
    }

    /// Starmie union search: two-phase (merge candidate windows, scatter
    /// the pinned candidate set).
    #[must_use]
    pub fn search_unionable_semantic(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        let snaps = self.snapshots();
        let fanout = self.shards[0].context().cfg.starmie.fanout;
        let windows: Vec<_> = snaps.iter().map(|p| p.semantic_candidates(query)).collect();
        let merged = merge::merge_candidate_windows(&windows, fanout);
        let tables = merge::candidate_tables(&merged);
        merge::merge_scores(
            snaps
                .iter()
                .map(|p| p.search_semantic_with_candidates(query, k, &tables))
                .collect(),
            k,
        )
    }

    /// SANTOS union search: plain top-k union (pairwise scores).
    #[must_use]
    pub fn search_unionable_relationship(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        merge::merge_scores(
            self.snapshots()
                .iter()
                .map(|p| p.search_unionable_relationship(query, k))
                .collect(),
            k,
        )
    }

    /// Fuzzy-join search: merge column windows, then aggregate tables.
    #[must_use]
    pub fn search_fuzzy_joinable(&self, query: &Column, tau: f32, k: usize) -> Vec<(TableId, f64)> {
        let width = column_fetch_width(k);
        let window = merge::merge_fuzzy_columns(
            self.snapshots()
                .iter()
                .map(|p| p.search_fuzzy_columns(query, tau, width))
                .collect(),
            width,
        );
        td_core::join::fuzzy::aggregate_tables(window, k)
    }

    /// MATE multi-attribute join: plain top-k union (pairwise scores).
    #[must_use]
    pub fn search_multi_joinable(
        &self,
        query: &Table,
        key_cols: &[usize],
        k: usize,
    ) -> Vec<(TableId, f64)> {
        merge::merge_scores(
            self.snapshots()
                .iter()
                .map(|p| p.search_multi_joinable(query, key_cols, k))
                .collect(),
            k,
        )
    }

    /// Correlated search: plain union under the sketch-order tie-break.
    #[must_use]
    pub fn search_correlated(
        &self,
        query_key: &Column,
        query_num: &Column,
        k: usize,
    ) -> Vec<CorrelatedHit> {
        merge::merge_correlated(
            self.snapshots()
                .iter()
                .map(|p| p.search_correlated(query_key, query_num, k))
                .collect(),
            k,
        )
    }
}

/// The persistence root for one shard under a fleet store root
/// (`<root>/shard-<i>`): each shard gets its own WAL + snapshot
/// directory so restore, checkpoint, and corruption stay independent
/// per shard.
#[must_use]
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}
