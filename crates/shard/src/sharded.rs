//! In-process sharded pipeline: the reference scatter-gather
//! implementation.
//!
//! [`ShardedPipeline`] owns K [`SegmentedPipeline`]s, routes every write
//! through [`ShardMap`], and answers all eight search families by
//! running the merge algebra of [`crate::merge`] over per-shard
//! snapshots — exactly the orchestration td-serve's TCP coordinator
//! performs over sockets, minus the sockets. It is the byte-identity
//! oracle the equivalence proptests pin (K shards vs one pipeline) and
//! the in-process baseline `shard_report` sweeps.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use td_core::join::exact::column_fetch_width;
use td_core::join::CorrelatedHit;
use td_core::segment::PipelineContext;
use td_core::{DiscoveryPipeline, SegmentedPipeline};
use td_table::{Column, Table, TableId};

use crate::merge;
use crate::partition::ShardMap;

/// One query's semantic candidate windows from one shard:
/// `[query column][rank] -> (lake column, similarity)`.
type CandidateWindows = Vec<Vec<(td_table::ColumnRef, f32)>>;

/// K hash-partitioned [`SegmentedPipeline`]s behind one search surface.
pub struct ShardedPipeline {
    map: ShardMap,
    shards: Vec<SegmentedPipeline>,
    /// Per-shard live-table gauges (`shard.<i>.tables`), kept current by
    /// the routed ingest/drop paths so an operator can see skew at a
    /// glance.
    table_gauges: Vec<std::sync::Arc<td_obs::Gauge>>,
}

impl ShardedPipeline {
    /// Empty sharded pipeline over `shards` partitions of one lake
    /// world. All shards share the context (embedders, KB, config), so
    /// a table's extracted artifacts do not depend on which shard owns
    /// it.
    #[must_use]
    pub fn with_context(shards: usize, ctx: &PipelineContext) -> Self {
        let map = ShardMap::new(shards);
        let reg = td_obs::global();
        ShardedPipeline {
            map,
            shards: (0..shards)
                .map(|_| SegmentedPipeline::with_context(ctx.clone()))
                .collect(),
            table_gauges: (0..shards)
                .map(|i| reg.gauge(&format!("shard.{i}.tables")))
                .collect(),
        }
    }

    /// The routing map.
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Per-shard pipelines (read access, e.g. to serve each behind its
    /// own server).
    #[must_use]
    pub fn shards(&self) -> &[SegmentedPipeline] {
        &self.shards
    }

    /// Total live tables across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(SegmentedPipeline::len).sum()
    }

    /// True if no shard holds a live table.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Route a table to its owning shard and ingest it there. Returns
    /// the shard index.
    pub fn ingest_table(&mut self, id: TableId, table: &Table) -> usize {
        let s = self.map.shard_of(id);
        self.shards[s].ingest_table(id, table);
        self.table_gauges[s].set(self.shards[s].len() as f64);
        s
    }

    /// Route a drop to the owning shard. Returns the shard index.
    pub fn drop_table(&mut self, id: TableId) -> usize {
        let s = self.map.shard_of(id);
        self.shards[s].drop_table(id);
        self.table_gauges[s].set(self.shards[s].len() as f64);
        s
    }

    /// Seal every shard's delta segment.
    pub fn seal_all(&mut self) {
        for s in &mut self.shards {
            s.seal();
        }
    }

    /// Compact every shard.
    pub fn compact_all(&mut self) {
        for s in &mut self.shards {
            s.compact();
        }
    }

    /// Current per-shard snapshots (cached inside each shard).
    #[must_use]
    pub fn snapshots(&self) -> Vec<Arc<DiscoveryPipeline>> {
        self.shards
            .iter()
            .map(SegmentedPipeline::snapshot)
            .collect()
    }

    /// Keyword search: two-phase (gather stats, scatter pinned stats).
    #[must_use]
    pub fn search_keyword(&self, query: &str, k: usize) -> Vec<(TableId, f64)> {
        let snaps = self.snapshots();
        let stats: Vec<_> = snaps.iter().map(|p| p.keyword_term_stats(query)).collect();
        let Some(global) = merge::merge_keyword_stats(&stats) else {
            return Vec::new();
        };
        merge::merge_scores(
            snaps
                .iter()
                .map(|p| p.search_keyword_with_stats(query, k, &global))
                .collect(),
            k,
        )
    }

    /// Exact-join search: merge column windows, then aggregate tables.
    #[must_use]
    pub fn search_joinable(&self, query: &Column, k: usize) -> Vec<(TableId, usize)> {
        let width = column_fetch_width(k);
        let window = merge::merge_overlap_columns(
            self.snapshots()
                .iter()
                .map(|p| p.search_joinable_columns(query, width))
                .collect(),
            width,
        );
        td_core::join::exact::aggregate_tables(window, k)
    }

    /// TUS union search: plain top-k union (pairwise scores).
    #[must_use]
    pub fn search_unionable(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        merge::merge_scores(
            self.snapshots()
                .iter()
                .map(|p| p.search_unionable(query, k))
                .collect(),
            k,
        )
    }

    /// Starmie union search: two-phase (merge candidate windows, scatter
    /// the pinned candidate set).
    #[must_use]
    pub fn search_unionable_semantic(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        let snaps = self.snapshots();
        let fanout = self.shards[0].context().cfg.starmie.fanout;
        let windows: Vec<_> = snaps.iter().map(|p| p.semantic_candidates(query)).collect();
        let merged = merge::merge_candidate_windows(&windows, fanout);
        let tables = merge::candidate_tables(&merged);
        merge::merge_scores(
            snaps
                .iter()
                .map(|p| p.search_semantic_with_candidates(query, k, &tables))
                .collect(),
            k,
        )
    }

    /// SANTOS union search: plain top-k union (pairwise scores).
    #[must_use]
    pub fn search_unionable_relationship(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        merge::merge_scores(
            self.snapshots()
                .iter()
                .map(|p| p.search_unionable_relationship(query, k))
                .collect(),
            k,
        )
    }

    /// Fuzzy-join search: merge column windows, then aggregate tables.
    #[must_use]
    pub fn search_fuzzy_joinable(&self, query: &Column, tau: f32, k: usize) -> Vec<(TableId, f64)> {
        let width = column_fetch_width(k);
        let window = merge::merge_fuzzy_columns(
            self.snapshots()
                .iter()
                .map(|p| p.search_fuzzy_columns(query, tau, width))
                .collect(),
            width,
        );
        td_core::join::fuzzy::aggregate_tables(window, k)
    }

    /// MATE multi-attribute join: plain top-k union (pairwise scores).
    #[must_use]
    pub fn search_multi_joinable(
        &self,
        query: &Table,
        key_cols: &[usize],
        k: usize,
    ) -> Vec<(TableId, f64)> {
        merge::merge_scores(
            self.snapshots()
                .iter()
                .map(|p| p.search_multi_joinable(query, key_cols, k))
                .collect(),
            k,
        )
    }

    /// Correlated search: plain union under the sketch-order tie-break.
    #[must_use]
    pub fn search_correlated(
        &self,
        query_key: &Column,
        query_num: &Column,
        k: usize,
    ) -> Vec<CorrelatedHit> {
        merge::merge_correlated(
            self.snapshots()
                .iter()
                .map(|p| p.search_correlated(query_key, query_num, k))
                .collect(),
            k,
        )
    }

    // --- batched scatter-gather ------------------------------------------
    //
    // One entry per family answering a whole batch with one snapshot
    // fetch and one batched probe per shard per phase — the in-process
    // model of td-serve's "one fanout round-trip per batch". The merge
    // algebra above is reused verbatim per query, so batched shard
    // rankings stay byte-identical to the sequential ones
    // (`crates/shard/tests/batch.rs` pins this for K ∈ {1,2,4,7}).

    /// Batched [`Self::search_keyword`]: both distributed phases (stats
    /// gather, pinned-stats scatter) run once per shard for the whole
    /// batch.
    #[must_use]
    pub fn search_keyword_batch(&self, queries: &[(&str, usize)]) -> Vec<Vec<(TableId, f64)>> {
        let snaps = self.snapshots();
        let texts: Vec<&str> = queries.iter().map(|&(q, _)| q).collect();
        let stats_by_shard: Vec<Vec<td_index::Bm25Stats>> = snaps
            .iter()
            .map(|p| p.keyword_term_stats_batch(&texts))
            .collect();
        let globals: Vec<Option<td_index::Bm25Stats>> = (0..queries.len())
            .map(|qi| {
                let per: Vec<td_index::Bm25Stats> =
                    stats_by_shard.iter().map(|s| s[qi].clone()).collect();
                merge::merge_keyword_stats(&per)
            })
            .collect();
        // Phase two only for queries whose stats merged; the rest answer
        // empty exactly like the sequential path.
        let scored: Vec<(usize, (&str, usize, &td_index::Bm25Stats))> = queries
            .iter()
            .zip(&globals)
            .enumerate()
            .filter_map(|(qi, (&(q, k), g))| g.as_ref().map(|g| (qi, (q, k, g))))
            .collect();
        let reqs: Vec<(&str, usize, &td_index::Bm25Stats)> =
            scored.iter().map(|&(_, r)| r).collect();
        let replies_by_shard: Vec<Vec<Vec<(TableId, f64)>>> = snaps
            .iter()
            .map(|p| p.search_keyword_with_stats_batch(&reqs))
            .collect();
        let mut out: Vec<Vec<(TableId, f64)>> = vec![Vec::new(); queries.len()];
        for (ri, &(qi, (_, k, _))) in scored.iter().enumerate() {
            out[qi] =
                merge::merge_scores(replies_by_shard.iter().map(|s| s[ri].clone()).collect(), k);
        }
        out
    }

    /// Batched [`Self::search_joinable`]: one column-window probe per
    /// shard for the whole batch, then per-query window merge and table
    /// aggregation.
    #[must_use]
    pub fn search_joinable_batch(
        &self,
        queries: &[(&Column, usize)],
    ) -> Vec<Vec<(TableId, usize)>> {
        let snaps = self.snapshots();
        let reqs: Vec<(&Column, usize)> = queries
            .iter()
            .map(|&(q, k)| (q, column_fetch_width(k)))
            .collect();
        let windows_by_shard: Vec<Vec<Vec<td_core::join::OverlapHit>>> = snaps
            .iter()
            .map(|p| p.search_joinable_columns_batch(&reqs))
            .collect();
        queries
            .iter()
            .enumerate()
            .map(|(qi, &(_, k))| {
                let window = merge::merge_overlap_columns(
                    windows_by_shard.iter().map(|s| s[qi].clone()).collect(),
                    column_fetch_width(k),
                );
                td_core::join::exact::aggregate_tables(window, k)
            })
            .collect()
    }

    /// Batched [`Self::search_unionable`].
    #[must_use]
    pub fn search_unionable_batch(&self, queries: &[(&Table, usize)]) -> Vec<Vec<(TableId, f64)>> {
        let snaps = self.snapshots();
        let replies_by_shard: Vec<Vec<Vec<(TableId, f64)>>> = snaps
            .iter()
            .map(|p| p.search_unionable_batch(queries))
            .collect();
        Self::merge_scored_batch(&replies_by_shard, queries)
    }

    /// Batched [`Self::search_unionable_semantic`]: both distributed
    /// phases (candidate gather, pinned-candidate scatter) run once per
    /// shard for the whole batch.
    #[must_use]
    pub fn search_unionable_semantic_batch(
        &self,
        queries: &[(&Table, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        let snaps = self.snapshots();
        let fanout = self.shards[0].context().cfg.starmie.fanout;
        let texts: Vec<&Table> = queries.iter().map(|&(q, _)| q).collect();
        let windows_by_shard: Vec<Vec<CandidateWindows>> = snaps
            .iter()
            .map(|p| p.semantic_candidates_batch(&texts))
            .collect();
        let tables: Vec<std::collections::BTreeSet<TableId>> = (0..queries.len())
            .map(|qi| {
                let per_query: Vec<CandidateWindows> =
                    windows_by_shard.iter().map(|s| s[qi].clone()).collect();
                let merged = merge::merge_candidate_windows(&per_query, fanout);
                merge::candidate_tables(&merged)
            })
            .collect();
        let reqs: Vec<(&Table, usize, &std::collections::BTreeSet<TableId>)> = queries
            .iter()
            .zip(&tables)
            .map(|(&(q, k), t)| (q, k, t))
            .collect();
        let replies_by_shard: Vec<Vec<Vec<(TableId, f64)>>> = snaps
            .iter()
            .map(|p| p.search_semantic_with_candidates_batch(&reqs))
            .collect();
        Self::merge_scored_batch(&replies_by_shard, queries)
    }

    /// Batched [`Self::search_unionable_relationship`].
    #[must_use]
    pub fn search_unionable_relationship_batch(
        &self,
        queries: &[(&Table, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        let snaps = self.snapshots();
        let replies_by_shard: Vec<Vec<Vec<(TableId, f64)>>> = snaps
            .iter()
            .map(|p| p.search_unionable_relationship_batch(queries))
            .collect();
        Self::merge_scored_batch(&replies_by_shard, queries)
    }

    /// Batched [`Self::search_fuzzy_joinable`].
    #[must_use]
    pub fn search_fuzzy_joinable_batch(
        &self,
        queries: &[(&Column, f32, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        let snaps = self.snapshots();
        let reqs: Vec<(&Column, f32, usize)> = queries
            .iter()
            .map(|&(q, tau, k)| (q, tau, column_fetch_width(k)))
            .collect();
        let windows_by_shard: Vec<Vec<Vec<(td_table::ColumnRef, f64)>>> = snaps
            .iter()
            .map(|p| p.search_fuzzy_columns_batch(&reqs))
            .collect();
        queries
            .iter()
            .enumerate()
            .map(|(qi, &(_, _, k))| {
                let window = merge::merge_fuzzy_columns(
                    windows_by_shard.iter().map(|s| s[qi].clone()).collect(),
                    column_fetch_width(k),
                );
                td_core::join::fuzzy::aggregate_tables(window, k)
            })
            .collect()
    }

    /// Batched [`Self::search_multi_joinable`].
    #[must_use]
    pub fn search_multi_joinable_batch(
        &self,
        queries: &[(&Table, &[usize], usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        let snaps = self.snapshots();
        let replies_by_shard: Vec<Vec<Vec<(TableId, f64)>>> = snaps
            .iter()
            .map(|p| p.search_multi_joinable_batch(queries))
            .collect();
        (0..queries.len())
            .map(|qi| {
                merge::merge_scores(
                    replies_by_shard.iter().map(|s| s[qi].clone()).collect(),
                    queries[qi].2,
                )
            })
            .collect()
    }

    /// Batched [`Self::search_correlated`].
    #[must_use]
    pub fn search_correlated_batch(
        &self,
        queries: &[(&Column, &Column, usize)],
    ) -> Vec<Vec<CorrelatedHit>> {
        let snaps = self.snapshots();
        let replies_by_shard: Vec<Vec<Vec<CorrelatedHit>>> = snaps
            .iter()
            .map(|p| p.search_correlated_batch(queries))
            .collect();
        (0..queries.len())
            .map(|qi| {
                merge::merge_correlated(
                    replies_by_shard.iter().map(|s| s[qi].clone()).collect(),
                    queries[qi].2,
                )
            })
            .collect()
    }

    /// Per-query [`merge::merge_scores`] over `(query, k)` batches whose
    /// per-shard replies are already in input order.
    fn merge_scored_batch<Q>(
        replies_by_shard: &[Vec<Vec<(TableId, f64)>>],
        queries: &[(Q, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        (0..queries.len())
            .map(|qi| {
                merge::merge_scores(
                    replies_by_shard.iter().map(|s| s[qi].clone()).collect(),
                    queries[qi].1,
                )
            })
            .collect()
    }
}

/// The persistence root for one shard under a fleet store root
/// (`<root>/shard-<i>`): each shard gets its own WAL + snapshot
/// directory so restore, checkpoint, and corruption stay independent
/// per shard.
#[must_use]
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}
