//! Batched scatter-gather equivalence: for every shard count K ∈
//! {1, 2, 4, 7}, `ShardedPipeline::search_*_batch` over a workload is
//! **byte-identical** to (a) the one-at-a-time sharded path on each
//! query in order, and (b) the unsharded `DiscoveryPipeline` batch
//! path — i.e. batching commutes with sharding for all eight families.
//!
//! The batched paths do one scatter round per phase for the whole batch
//! (two for keyword and semantic), so this suite is the proof that the
//! per-query merge algebra survives the request fan-in unchanged.

use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::OnceLock;
use td_core::segment::PipelineContext;
use td_core::union::starmie::VectorBackend;
use td_core::{DiscoveryPipeline, PipelineConfig};
use td_shard::ShardedPipeline;
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

struct Fixture {
    tables: Vec<(TableId, Table)>,
    queries: Vec<(TableId, Table)>,
    ctx: PipelineContext,
    /// The unsharded pipeline — the batch-of-one oracle.
    oracle: DiscoveryPipeline,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        // Flat semantic backend with a truncating fanout, so the batched
        // two-phase candidate exchange is load-bearing (with Flat
        // retrieval the merged window provably equals the global window).
        let mut cfg = PipelineConfig::default();
        cfg.starmie.backend = VectorBackend::Flat;
        cfg.starmie.fanout = 8;
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 24,
            rows: (12, 30),
            cols: (2, 4),
            seed: 20260808,
            ..LakeGenConfig::default()
        });
        let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        let queries: Vec<(TableId, Table)> = tables[..4].to_vec();
        let oracle = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg);
        let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
        Fixture {
            tables,
            queries,
            ctx,
            oracle,
        }
    })
}

fn sharded_over(f: &Fixture, shards: usize) -> ShardedPipeline {
    let mut sp = ShardedPipeline::with_context(shards, &f.ctx);
    for (id, t) in &f.tables {
        sp.ingest_table(*id, t);
    }
    sp.seal_all();
    sp
}

/// Render one full batched workload for every family on a sharded
/// pipeline, plus the sequential render of the same workload, and the
/// oracle's batched render. All three strings must be equal.
fn check_workload(f: &Fixture, sp: &ShardedPipeline, workload: &[(usize, usize)]) {
    let terms = ["dataset", "sensor", "city", "record"];
    let kw: Vec<(&str, usize)> = workload
        .iter()
        .map(|&(qi, k)| (terms[qi % terms.len()], k))
        .collect();
    let cols: Vec<(&td_table::Column, usize)> = workload
        .iter()
        .map(|&(qi, k)| (&f.queries[qi % f.queries.len()].1.columns[0], k))
        .collect();
    let fuzzy: Vec<(&td_table::Column, f32, usize)> =
        cols.iter().map(|&(c, k)| (c, 0.8, k)).collect();
    let tabs: Vec<(&Table, usize)> = workload
        .iter()
        .map(|&(qi, k)| (&f.queries[qi % f.queries.len()].1, k))
        .collect();
    let multi: Vec<(&Table, &[usize], usize)> = tabs
        .iter()
        .map(|&(t, k)| (t, &[0usize, 1][..], k))
        .collect();
    let corr: Vec<(&td_table::Column, &td_table::Column, usize)> = workload
        .iter()
        .filter_map(|&(qi, k)| {
            let t = &f.queries[qi % f.queries.len()].1;
            let key = t.columns.iter().find(|c| !c.is_numeric())?;
            let num = t.columns.iter().find(|c| c.is_numeric())?;
            Some((key, num, k))
        })
        .collect();

    // Duck-typed render over anything exposing the batch surface.
    macro_rules! render_batched {
        ($p:expr) => {{
            let p = $p;
            let mut out = String::new();
            let _ = writeln!(out, "keyword {:?}", p.search_keyword_batch(&kw));
            let _ = writeln!(out, "joinable {:?}", p.search_joinable_batch(&cols));
            let _ = writeln!(out, "fuzzy {:?}", p.search_fuzzy_joinable_batch(&fuzzy));
            let _ = writeln!(out, "tus {:?}", p.search_unionable_batch(&tabs));
            let _ = writeln!(
                out,
                "starmie {:?}",
                p.search_unionable_semantic_batch(&tabs)
            );
            let _ = writeln!(
                out,
                "santos {:?}",
                p.search_unionable_relationship_batch(&tabs)
            );
            let _ = writeln!(out, "mate {:?}", p.search_multi_joinable_batch(&multi));
            let _ = writeln!(out, "correlated {:?}", p.search_correlated_batch(&corr));
            out
        }};
    }
    let batched = render_batched!(sp);

    // (a) the one-at-a-time sharded path over the same workload.
    let mut sequential = String::new();
    let _ = writeln!(
        sequential,
        "keyword {:?}",
        kw.iter()
            .map(|&(q, k)| sp.search_keyword(q, k))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        sequential,
        "joinable {:?}",
        cols.iter()
            .map(|&(c, k)| sp.search_joinable(c, k))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        sequential,
        "fuzzy {:?}",
        fuzzy
            .iter()
            .map(|&(c, tau, k)| sp.search_fuzzy_joinable(c, tau, k))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        sequential,
        "tus {:?}",
        tabs.iter()
            .map(|&(t, k)| sp.search_unionable(t, k))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        sequential,
        "starmie {:?}",
        tabs.iter()
            .map(|&(t, k)| sp.search_unionable_semantic(t, k))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        sequential,
        "santos {:?}",
        tabs.iter()
            .map(|&(t, k)| sp.search_unionable_relationship(t, k))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        sequential,
        "mate {:?}",
        multi
            .iter()
            .map(|&(t, key_cols, k)| sp.search_multi_joinable(t, key_cols, k))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        sequential,
        "correlated {:?}",
        corr.iter()
            .map(|&(key, num, k)| sp.search_correlated(key, num, k))
            .collect::<Vec<_>>()
    );
    assert_eq!(batched, sequential, "batched diverged from sequential");

    // (b) the unsharded batch oracle.
    let oracle = render_batched!(&f.oracle);
    assert_eq!(batched, oracle, "batched sharded diverged from the oracle");
}

/// The headline pin: a mixed workload (duplicate queries, k from 1 past
/// the lake size, batch wider than the coalescing window) commutes with
/// sharding for every K.
#[test]
fn batched_scatter_gather_matches_sequential_and_oracle() {
    let f = fixture();
    let workload: Vec<(usize, usize)> = (0..9).map(|i| (i % 4, [1, 4, 8, 30][i % 4])).collect();
    for shards in SHARD_COUNTS {
        let sp = sharded_over(f, shards);
        check_workload(f, &sp, &workload);
    }
}

/// A batch of one must behave exactly like the single-query path — the
/// degenerate case the serve layer hits when coalescing finds nothing.
#[test]
fn batch_of_one_matches_single() {
    let f = fixture();
    let sp = sharded_over(f, 4);
    check_workload(f, &sp, &[(0, 8)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random workloads across random shard counts: batching always
    /// commutes with sharding.
    #[test]
    fn random_workload_commutes_with_sharding(
        shard_sel in 0usize..SHARD_COUNTS.len(),
        workload in proptest::collection::vec((0usize..4, 1usize..16), 1..10),
    ) {
        let f = fixture();
        let sp = sharded_over(f, SHARD_COUNTS[shard_sel]);
        check_workload(f, &sp, &workload);
    }
}
