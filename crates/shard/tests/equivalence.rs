//! The tentpole invariant of td-shard: a K-shard scatter-gather answer
//! is **byte-identical** to a one-shard answer, for all eight search
//! families, for K ∈ {1, 2, 4, 7}, under any ingest history.
//!
//! This extends the segmented-pipeline equivalence suite one level up:
//! where `crates/core/tests/segmented.rs` pins "any segment history ==
//! batch build", this suite pins "any shard partition of that history ==
//! batch build". Every family's full response (ids and scores) is
//! rendered via `Debug` into one string; `Debug` on `f64`/`f32` prints
//! the shortest round-trip representation, so string equality is bit
//! equality of every score.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::OnceLock;
use td_core::segment::PipelineContext;
use td_core::union::starmie::VectorBackend;
use td_core::{DiscoveryPipeline, PipelineConfig};
use td_shard::ShardedPipeline;
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

const K: usize = 8;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Render every family's complete response for a set of query tables.
/// Duck-typed over the search surface so the same rendering covers both
/// `DiscoveryPipeline` (the oracle) and `ShardedPipeline` (the system
/// under test) — the two expose identical `search_*` signatures.
macro_rules! render_with {
    ($p:expr, $queries:expr) => {{
        let p = $p;
        let mut out = String::new();
        let _ = writeln!(out, "keyword {:?}", p.search_keyword("dataset", K));
        for (qid, qt) in $queries {
            let _ = writeln!(out, "== query {qid:?}");
            for (ci, c) in qt.columns.iter().enumerate() {
                let _ = writeln!(out, "joinable[{ci}] {:?}", p.search_joinable(c, K));
                let _ = writeln!(out, "fuzzy[{ci}] {:?}", p.search_fuzzy_joinable(c, 0.8, K));
            }
            let _ = writeln!(out, "tus {:?}", p.search_unionable(qt, K));
            let _ = writeln!(out, "starmie {:?}", p.search_unionable_semantic(qt, K));
            let _ = writeln!(out, "santos {:?}", p.search_unionable_relationship(qt, K));
            let _ = writeln!(out, "mate {:?}", p.search_multi_joinable(qt, &[0, 1], K));
            let key = qt.columns.iter().find(|c| !c.is_numeric());
            let num = qt.columns.iter().find(|c| c.is_numeric());
            if let (Some(key), Some(num)) = (key, num) {
                let _ = writeln!(out, "correlated {:?}", p.search_correlated(key, num, K));
            }
        }
        out
    }};
}

struct Fixture {
    tables: Vec<(TableId, Table)>,
    queries: Vec<(TableId, Table)>,
    ctx: PipelineContext,
    /// Rendering of the one-shot `DiscoveryPipeline::build` over the lake.
    expected: String,
}

fn build_fixture(num_tables: usize, seed: u64, cfg: PipelineConfig) -> Fixture {
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables,
        rows: (12, 30),
        cols: (2, 4),
        seed,
        ..LakeGenConfig::default()
    });
    let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
    let queries: Vec<(TableId, Table)> = tables[..3].to_vec();
    let batch = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg);
    let expected = render_with!(&batch, &queries);
    let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
    Fixture {
        tables,
        queries,
        ctx,
        expected,
    }
}

/// Default config (Hnsw semantic backend), 16 tables.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| build_fixture(16, 20260806, PipelineConfig::default()))
}

/// Flat semantic backend with a fanout much smaller than the lake's
/// column count, so the candidate windows genuinely truncate and the
/// two-phase candidate exchange is load-bearing (with Flat retrieval the
/// merged window provably equals the global window).
fn flat_fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut cfg = PipelineConfig::default();
        cfg.starmie.backend = VectorBackend::Flat;
        cfg.starmie.fanout = 8;
        build_fixture(40, 20260807, cfg)
    })
}

fn sharded_over(f: &Fixture, shards: usize) -> ShardedPipeline {
    let mut sp = ShardedPipeline::with_context(shards, &f.ctx);
    for (id, t) in &f.tables {
        sp.ingest_table(*id, t);
    }
    sp.seal_all();
    sp
}

/// The headline pin: hash-partitioning the lake across K shards and
/// scatter-gathering every family reproduces the single-pipeline batch
/// build byte for byte, for every K.
#[test]
fn sharded_answers_match_batch_build_for_all_shard_counts() {
    let f = fixture();
    for shards in SHARD_COUNTS {
        let sp = sharded_over(f, shards);
        assert!(sp.len() == f.tables.len());
        let got = render_with!(&sp, &f.queries);
        assert_eq!(
            got, f.expected,
            "{shards}-shard scatter-gather diverged from the batch build"
        );
    }
}

/// Same pin under the Flat semantic backend with truncating fanout:
/// exercises the candidate-window merge where it actually drops columns.
#[test]
fn flat_backend_truncating_fanout_matches_batch_build() {
    let f = flat_fixture();
    for shards in [2, 4, 7] {
        let sp = sharded_over(f, shards);
        let got = render_with!(&sp, &f.queries);
        assert_eq!(
            got, f.expected,
            "{shards}-shard Flat-backend scatter-gather diverged"
        );
    }
}

/// Drops route to the owning shard and vanish from every family's
/// ranking: a sharded lake minus one table equals a batch build over the
/// remaining tables.
#[test]
fn drop_without_reingest_matches_rebuild_over_remaining() {
    let f = fixture();
    let victim_id = f.tables.last().expect("fixture tables").0; // not a query table

    let mut sp = sharded_over(f, 4);
    sp.drop_table(victim_id);
    sp.seal_all();
    assert_eq!(sp.len(), f.tables.len() - 1);

    let remaining: Vec<(TableId, Table)> = f
        .tables
        .iter()
        .filter(|(id, _)| *id != victim_id)
        .cloned()
        .collect();
    let mut oneshot = ShardedPipeline::with_context(1, &f.ctx);
    for (id, t) in &remaining {
        oneshot.ingest_table(*id, t);
    }

    assert_eq!(
        render_with!(&sp, &f.queries),
        render_with!(&oneshot, &f.queries)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random ingest order, random per-shard segment boundaries, an
    /// optional drop/re-ingest cycle, and an optional compaction point —
    /// across every shard count: all byte-identical to the batch build.
    #[test]
    fn random_history_matches_batch_build_across_shards(
        seed in any::<u64>(),
        seal_mask in any::<u16>(),
        shard_sel in 0usize..SHARD_COUNTS.len(),
        // 16 (the table count) acts as "never" for both events.
        compact_sel in 0usize..17,
        drop_sel in 1usize..17,
    ) {
        let shards = SHARD_COUNTS[shard_sel];
        let compact_at = (compact_sel < 16).then_some(compact_sel);
        let drop_at = (drop_sel < 16).then_some(drop_sel);
        let f = fixture();
        let mut sp = ShardedPipeline::with_context(shards, &f.ctx);

        let mut order: Vec<usize> = (0..f.tables.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);

        for (step, &i) in order.iter().enumerate() {
            sp.ingest_table(f.tables[i].0, &f.tables[i].1);
            if seal_mask >> (step % 16) & 1 == 1 {
                sp.seal_all();
            }
            if drop_at == Some(step) {
                // Drop an already-ingested table, then bring it back.
                let victim = order[step - 1];
                sp.drop_table(f.tables[victim].0);
                sp.ingest_table(f.tables[victim].0, &f.tables[victim].1);
            }
            if compact_at == Some(step) {
                sp.compact_all();
            }
        }

        let got = render_with!(&sp, &f.queries);
        prop_assert_eq!(got, f.expected.clone());
    }
}
