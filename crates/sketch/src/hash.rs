//! Seeded 64-bit hashing primitives shared by all sketches.
//!
//! Sketch quality depends on hash independence, and reproducibility depends
//! on the hash being ours (not `std`'s randomly-keyed SipHash). We use an
//! FNV-1a core whiskered through a SplitMix64 finalizer, which passes the
//! avalanche sanity checks below and is plenty for MinHash/LSH workloads.

/// SplitMix64 finalizer (public-domain constants).
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Seeded hash of a byte slice.
#[inline]
#[must_use]
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    let mut h = FNV_OFFSET ^ splitmix64(seed);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// Seeded hash of a string.
#[inline]
#[must_use]
pub fn hash_str(s: &str, seed: u64) -> u64 {
    hash_bytes(s.as_bytes(), seed)
}

/// Seeded hash of a `u64` (one SplitMix64 round over the xor).
#[inline]
#[must_use]
pub fn hash_u64(x: u64, seed: u64) -> u64 {
    splitmix64(x ^ splitmix64(seed ^ 0xA076_1D64_78BD_642F))
}

/// A family of pairwise-independent-ish hash functions derived from one
/// base hash via multiply-shift re-randomization.
///
/// `f_i(x) = splitmix64(a_i * x + b_i)` where `(a_i, b_i)` are derived from
/// the family seed. Used by MinHash so that `k` permutations need only one
/// pass over the input tokens.
#[derive(Debug, Clone)]
pub struct HashFamily {
    params: Vec<(u64, u64)>,
}

impl HashFamily {
    /// Create a family of `k` functions.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        let params = (0..k as u64)
            .map(|i| {
                // Odd multiplier for multiply-shift.
                let a = splitmix64(seed.wrapping_add(i).wrapping_mul(2) + 1) | 1;
                let b = splitmix64(seed ^ (i.wrapping_mul(0x9E37_79B9)) ^ 0x5151);
                (a, b)
            })
            .collect();
        HashFamily { params }
    }

    /// Number of functions in the family.
    #[must_use]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if the family is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Apply function `i` to an already-hashed 64-bit token.
    #[inline]
    #[must_use]
    pub fn apply(&self, i: usize, token_hash: u64) -> u64 {
        let (a, b) = self.params[i];
        splitmix64(a.wrapping_mul(token_hash).wrapping_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(hash_str("boston", 1), hash_str("boston", 1));
        assert_ne!(hash_str("boston", 1), hash_str("boston", 2));
        assert_ne!(hash_str("boston", 1), hash_str("austin", 1));
    }

    #[test]
    fn hash_u64_avalanches() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        for bit in 0..64 {
            let a = hash_u64(0xDEAD_BEEF, 7);
            let b = hash_u64(0xDEAD_BEEF ^ (1 << bit), 7);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg}");
    }

    #[test]
    fn string_hash_has_few_collisions() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(hash_str(&format!("value-{i}"), 0));
        }
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn family_functions_are_distinct() {
        let f = HashFamily::new(16, 9);
        assert_eq!(f.len(), 16);
        let x = hash_str("token", 0);
        let outs: HashSet<u64> = (0..16).map(|i| f.apply(i, x)).collect();
        assert_eq!(outs.len(), 16);
    }

    #[test]
    fn family_is_deterministic_in_seed() {
        let a = HashFamily::new(4, 3);
        let b = HashFamily::new(4, 3);
        let c = HashFamily::new(4, 4);
        let x = 12345;
        for i in 0..4 {
            assert_eq!(a.apply(i, x), b.apply(i, x));
            assert_ne!(a.apply(i, x), c.apply(i, x));
        }
    }

    #[test]
    fn family_ranks_tokens_independently_per_function() {
        // The argmin token should differ across functions for a decent
        // fraction of functions — this is what makes MinHash work.
        let f = HashFamily::new(32, 11);
        let tokens: Vec<u64> = (0..50).map(|i| hash_str(&format!("t{i}"), 0)).collect();
        let mins: HashSet<usize> = (0..32)
            .map(|i| {
                (0..tokens.len())
                    .min_by_key(|&t| f.apply(i, tokens[t]))
                    .unwrap()
            })
            .collect();
        assert!(mins.len() > 10, "argmins not diverse: {}", mins.len());
    }
}
