//! HyperLogLog cardinality sketches.
//!
//! Column-profile ndv estimation at lake scale: one pass, fixed memory,
//! mergeable. Standard HLL with the Flajolet et al. bias constant and
//! linear-counting correction for the small range.

use crate::hash::hash_str;
use serde::{Deserialize, Serialize};

/// A HyperLogLog sketch with `2^precision` registers.
/// ```
/// use td_sketch::HyperLogLog;
///
/// let mut hll = HyperLogLog::new(12, 1);
/// for i in 0..10_000 {
///     hll.insert(&format!("user-{i}"));
/// }
/// assert!((hll.estimate() - 10_000.0).abs() / 10_000.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
    seed: u64,
}

impl HyperLogLog {
    /// Create a sketch. `precision` must be in `[4, 16]`; standard error is
    /// roughly `1.04 / sqrt(2^precision)` (~1.6% at precision 12).
    ///
    /// # Panics
    /// Panics if `precision` is out of range.
    #[must_use]
    pub fn new(precision: u8, seed: u64) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in [4,16]");
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
            seed,
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Insert a token.
    pub fn insert(&mut self, token: &str) {
        self.insert_hash(hash_str(token, self.seed));
    }

    /// Insert a pre-hashed token.
    pub fn insert_hash(&mut self, h: u64) {
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        let rest = h << p;
        // Rank = position of the leftmost 1 in the remaining bits, 1-based;
        // all-zero rest gets the maximum rank.
        let rank = (rest.leading_zeros() + 1).min(64 - p + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated distinct count.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Linear counting for the small range.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another sketch (same precision and seed) into this one.
    ///
    /// # Panics
    /// Panics on precision or seed mismatch.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(range: std::ops::Range<u64>, precision: u8) -> HyperLogLog {
        let mut h = HyperLogLog::new(precision, 5);
        for i in range {
            h.insert(&format!("item-{i}"));
        }
        h
    }

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(10, 1);
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn small_counts_are_nearly_exact() {
        let h = filled(0..100, 12);
        let e = h.estimate();
        assert!((e - 100.0).abs() < 5.0, "estimate {e}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(10, 1);
        for _ in 0..10_000 {
            h.insert("same-token");
        }
        assert!(h.estimate() < 2.0);
    }

    #[test]
    fn large_counts_within_error_bound() {
        let h = filled(0..100_000, 12);
        let e = h.estimate();
        let rel = (e - 100_000.0).abs() / 100_000.0;
        // sigma ≈ 1.6% at precision 12; allow 5 sigma.
        assert!(rel < 0.08, "relative error {rel}");
    }

    #[test]
    fn precision_trades_memory_for_accuracy() {
        let coarse = filled(0..50_000, 6);
        let fine = filled(0..50_000, 14);
        let rel = |e: f64| (e - 50_000.0).abs() / 50_000.0;
        assert!(rel(fine.estimate()) < rel(coarse.estimate()) + 0.02);
        assert_eq!(coarse.num_registers(), 64);
        assert_eq!(fine.num_registers(), 16_384);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = filled(0..30_000, 12);
        let b = filled(20_000..50_000, 12);
        a.merge(&b);
        let rel = (a.estimate() - 50_000.0).abs() / 50_000.0;
        assert!(rel < 0.08, "merged estimate error {rel}");
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLog::new(10, 1);
        let b = HyperLogLog::new(11, 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "precision must be in")]
    fn rejects_bad_precision() {
        let _ = HyperLogLog::new(2, 0);
    }
}
