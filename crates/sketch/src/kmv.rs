//! Bottom-k (KMV, "k minimum values") sketches.
//!
//! A KMV sketch keeps the `k` smallest hash values of a set. It yields
//! unbiased distinct-count estimates and — because the union of two KMV
//! sketches is computable — direct estimates of intersection size,
//! containment, and Jaccard. JOSIE-style cost models and containment
//! pre-filters use these.

use crate::hash::hash_str;
use serde::{Deserialize, Serialize};

/// A bottom-k sketch of a set of string tokens.
/// ```
/// use td_sketch::KmvSketch;
///
/// let tokens: Vec<String> = (0..500).map(|i| format!("t{i}")).collect();
/// let sketch = KmvSketch::from_tokens(128, 7, tokens.iter().map(String::as_str));
/// let est = sketch.estimate_distinct();
/// assert!((est - 500.0).abs() / 500.0 < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmvSketch {
    k: usize,
    /// Sorted ascending, length <= k, no duplicates.
    values: Vec<u64>,
    /// Exact count of distinct hashes observed (exact while <= k is not
    /// full; retained for small sets).
    exact_if_small: usize,
    seed: u64,
}

impl KmvSketch {
    /// An empty sketch of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "KMV needs k >= 1");
        KmvSketch {
            k,
            values: Vec::with_capacity(k),
            exact_if_small: 0,
            seed,
        }
    }

    /// Build a sketch from tokens.
    pub fn from_tokens<'a, I>(k: usize, seed: u64, tokens: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut s = KmvSketch::new(k, seed);
        for t in tokens {
            s.insert(t);
        }
        s
    }

    /// Insert a token.
    pub fn insert(&mut self, token: &str) {
        self.insert_hash(hash_str(token, self.seed));
    }

    /// Insert a pre-hashed token (must use the same seed).
    pub fn insert_hash(&mut self, h: u64) {
        match self.values.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if self.values.len() < self.k {
                    self.values.insert(pos, h);
                    self.exact_if_small += 1;
                } else if pos < self.k {
                    self.values.insert(pos, h);
                    self.values.pop();
                    self.exact_if_small += 1;
                }
                // h larger than the current k-th minimum: ignored (we still
                // saw a new distinct hash only if it wasn't recorded before,
                // which we can't know — exact_if_small is only trusted while
                // the sketch is not full).
            }
        }
    }

    /// Capacity `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stored minima.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no tokens were inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the sketch saturated (>= k distinct tokens seen).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.values.len() == self.k
    }

    /// Estimated number of distinct tokens.
    ///
    /// Exact while fewer than `k` distinct tokens were seen; otherwise the
    /// standard KMV estimator `(k - 1) / U(k)` where `U(k)` is the k-th
    /// minimum normalized to `(0, 1]`.
    #[must_use]
    pub fn estimate_distinct(&self) -> f64 {
        if !self.is_full() {
            return self.values.len() as f64;
        }
        // A full sketch holds k ≥ 1 values; fall back to the largest
        // possible k-th minimum (estimate k - 1) rather than panic.
        let kth = self.values.last().copied().unwrap_or(u64::MAX) as f64;
        let u = (kth + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / u
    }

    /// Merge (set union) two sketches built with the same `k` and seed.
    ///
    /// # Panics
    /// Panics on mismatched `k` or seed.
    #[must_use]
    pub fn union(&self, other: &KmvSketch) -> KmvSketch {
        assert_eq!(self.k, other.k, "k mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch");
        let mut merged = Vec::with_capacity(self.k);
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.k && (i < self.values.len() || j < other.values.len()) {
            let take_left = match (self.values.get(i), other.values.get(j)) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                let v = self.values[i];
                i += 1;
                if j < other.values.len() && other.values[j] == v {
                    j += 1;
                }
                merged.push(v);
            } else {
                merged.push(other.values[j]);
                j += 1;
            }
        }
        let exact = if merged.len() < self.k {
            merged.len()
        } else {
            0
        };
        KmvSketch {
            k: self.k,
            values: merged,
            exact_if_small: exact,
            seed: self.seed,
        }
    }

    /// Estimated intersection size via inclusion–exclusion on the union
    /// sketch: `|A ∩ B| = |A| + |B| - |A ∪ B|`, floored at 0.
    #[must_use]
    pub fn estimate_intersection(&self, other: &KmvSketch) -> f64 {
        let u = self.union(other).estimate_distinct();
        (self.estimate_distinct() + other.estimate_distinct() - u).max(0.0)
    }

    /// Estimated Jaccard similarity.
    #[must_use]
    pub fn estimate_jaccard(&self, other: &KmvSketch) -> f64 {
        let u = self.union(other).estimate_distinct();
        if u == 0.0 {
            return 0.0;
        }
        (self.estimate_intersection(other) / u).clamp(0.0, 1.0)
    }

    /// Estimated containment of `self` in `other` (`|A ∩ B| / |A|`).
    #[must_use]
    pub fn estimate_containment_in(&self, other: &KmvSketch) -> f64 {
        let a = self.estimate_distinct();
        if a == 0.0 {
            return 0.0;
        }
        (self.estimate_intersection(other) / a).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sk(range: std::ops::Range<u32>, k: usize) -> KmvSketch {
        let toks: Vec<String> = range.map(|i| format!("v{i}")).collect();
        KmvSketch::from_tokens(k, 7, toks.iter().map(String::as_str))
    }

    #[test]
    fn small_sets_are_exact() {
        let s = sk(0..50, 128);
        assert!(!s.is_full());
        assert_eq!(s.estimate_distinct(), 50.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = KmvSketch::new(64, 1);
        for _ in 0..10 {
            s.insert("same");
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.estimate_distinct(), 1.0);
    }

    #[test]
    fn distinct_estimate_within_relative_error() {
        let s = sk(0..20_000, 256);
        let est = s.estimate_distinct();
        let rel = (est - 20_000.0).abs() / 20_000.0;
        // RSE of KMV is ~ 1/sqrt(k-2) ≈ 6.3% for k=256; allow 4 sigma.
        assert!(rel < 0.25, "relative error {rel}");
    }

    #[test]
    fn union_estimate_is_sane() {
        let a = sk(0..5_000, 256);
        let b = sk(2_500..7_500, 256);
        let u = a.union(&b).estimate_distinct();
        let rel = (u - 7_500.0).abs() / 7_500.0;
        assert!(rel < 0.25, "union error {rel}");
    }

    #[test]
    fn union_with_disjoint_small_sets_is_exact() {
        let a = sk(0..10, 64);
        let b = sk(100..110, 64);
        assert_eq!(a.union(&b).estimate_distinct(), 20.0);
    }

    #[test]
    fn intersection_and_jaccard() {
        let a = sk(0..6_000, 512);
        let b = sk(3_000..9_000, 512);
        // truth: intersection 3000, union 9000, jaccard 1/3.
        let i = a.estimate_intersection(&b);
        assert!((i - 3_000.0).abs() / 3_000.0 < 0.4, "intersection {i}");
        let j = a.estimate_jaccard(&b);
        assert!((j - 1.0 / 3.0).abs() < 0.12, "jaccard {j}");
    }

    #[test]
    fn containment_asymmetry() {
        // A ⊂ B: containment(A in B) = 1, containment(B in A) = 0.1.
        let a = sk(0..500, 256);
        let b = sk(0..5_000, 256);
        let cab = a.estimate_containment_in(&b);
        let cba = b.estimate_containment_in(&a);
        assert!(cab > 0.7, "containment A in B: {cab}");
        assert!(cba < 0.35, "containment B in A: {cba}");
    }

    #[test]
    fn disjoint_sets_have_zero_ish_overlap() {
        let a = sk(0..2_000, 256);
        let b = sk(50_000..52_000, 256);
        assert!(a.estimate_jaccard(&b) < 0.08);
    }

    #[test]
    #[should_panic(expected = "k mismatch")]
    fn union_rejects_mismatched_k() {
        let a = sk(0..10, 32);
        let b = sk(0..10, 64);
        let _ = a.union(&b);
    }

    #[test]
    fn insert_hash_matches_insert() {
        let mut a = KmvSketch::new(32, 3);
        let mut b = KmvSketch::new(32, 3);
        for i in 0..100 {
            let t = format!("x{i}");
            a.insert(&t);
            b.insert_hash(hash_str(&t, 3));
        }
        assert_eq!(a, b);
    }
}
