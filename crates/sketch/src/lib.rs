//! # td-sketch — sketches for table discovery
//!
//! Fixed-memory summaries of column value sets, built once offline and
//! compared at query time without touching the raw data:
//!
//! * [`MinHasher`] / [`MinHashSignature`] — Jaccard/containment estimation;
//!   the substrate of MinHash-LSH and LSH Ensemble indices.
//! * [`KmvSketch`] — bottom-k sketches with unbiased distinct counts and
//!   direct intersection/containment estimates.
//! * [`HyperLogLog`] — mergeable cardinality estimation for lake profiling.
//! * [`QcrSketch`] — quadrant-count-ratio sketches that estimate the
//!   correlation of two *joined* numeric columns without joining them
//!   (Santos et al., ICDE 2022).
//!
//! All sketches use the crate's own seeded hashing ([`hash`]) so results
//! are reproducible across runs and platforms.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod hash;
pub mod hll;
pub mod kmv;
pub mod minhash;
pub mod qcr;

pub use hash::{hash_bytes, hash_str, hash_u64, HashFamily};
pub use hll::HyperLogLog;
pub use kmv::KmvSketch;
pub use minhash::{MinHashSignature, MinHasher};
pub use qcr::QcrSketch;
