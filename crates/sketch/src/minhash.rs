//! MinHash signatures for Jaccard estimation (the substrate of LSH and
//! LSH Ensemble).

use crate::hash::{hash_str, HashFamily};
use serde::{Deserialize, Serialize};

/// Builds MinHash signatures with a fixed number of hash functions.
///
/// All signatures produced by one `MinHasher` (same `k`, same seed) are
/// comparable; signatures from different hashers are not.
/// ```
/// use td_sketch::MinHasher;
///
/// let hasher = MinHasher::new(256, 42);
/// let a = hasher.sign(["red", "green", "blue"].into_iter());
/// let b = hasher.sign(["red", "green", "yellow"].into_iter());
/// let j = a.jaccard(&b); // true Jaccard = 2/4
/// assert!((j - 0.5).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct MinHasher {
    family: HashFamily,
    token_seed: u64,
}

/// A MinHash signature: `sig[i] = min over tokens of h_i(token)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSignature {
    /// Per-function minima.
    pub values: Vec<u64>,
    /// Exact distinct-token count observed while building (cheap to carry,
    /// needed by containment conversion and LSH Ensemble partitioning).
    pub set_size: usize,
}

impl MinHasher {
    /// A hasher with `k` hash functions.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        MinHasher {
            family: HashFamily::new(k, seed),
            token_seed: seed ^ 0x70C0,
        }
    }

    /// Number of hash functions.
    #[must_use]
    pub fn num_hashes(&self) -> usize {
        self.family.len()
    }

    /// Signature of a set of string tokens (duplicates are harmless but
    /// counted once in `set_size` only if the caller dedups; pass an
    /// iterator over *distinct* tokens for an exact `set_size`).
    pub fn sign<'a, I>(&self, tokens: I) -> MinHashSignature
    where
        I: IntoIterator<Item = &'a str>,
    {
        let k = self.family.len();
        let mut values = vec![u64::MAX; k];
        let mut n = 0usize;
        for t in tokens {
            n += 1;
            let th = hash_str(t, self.token_seed);
            for (i, v) in values.iter_mut().enumerate() {
                let h = self.family.apply(i, th);
                if h < *v {
                    *v = h;
                }
            }
        }
        MinHashSignature {
            values,
            set_size: n,
        }
    }

    /// Signature of pre-hashed tokens.
    pub fn sign_hashes<I>(&self, token_hashes: I) -> MinHashSignature
    where
        I: IntoIterator<Item = u64>,
    {
        let k = self.family.len();
        let mut values = vec![u64::MAX; k];
        let mut n = 0usize;
        for th in token_hashes {
            n += 1;
            for (i, v) in values.iter_mut().enumerate() {
                let h = self.family.apply(i, th);
                if h < *v {
                    *v = h;
                }
            }
        }
        MinHashSignature {
            values,
            set_size: n,
        }
    }

    /// Hash a raw token the way [`MinHasher::sign`] does — for callers that
    /// pre-hash and batch.
    #[must_use]
    pub fn token_hash(&self, token: &str) -> u64 {
        hash_str(token, self.token_seed)
    }
}

impl MinHashSignature {
    /// Estimated Jaccard similarity: fraction of agreeing components.
    ///
    /// # Panics
    /// Panics if the signatures have different lengths (different hashers).
    #[must_use]
    pub fn jaccard(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "incompatible signatures"
        );
        if self.values.is_empty() {
            return 0.0;
        }
        let agree = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.values.len() as f64
    }

    /// Estimated containment of `self` in `other`: `|A ∩ B| / |A|`,
    /// converted from the Jaccard estimate using the exact set sizes
    /// (`c = j (|A| + |B|) / (|A| (1 + j))`). This is the conversion LSH
    /// Ensemble performs after retrieval.
    #[must_use]
    pub fn containment_in(&self, other: &MinHashSignature) -> f64 {
        if self.set_size == 0 {
            return 0.0;
        }
        let j = self.jaccard(other);
        let est = j * (self.set_size + other.set_size) as f64 / (self.set_size as f64 * (1.0 + j));
        est.clamp(0.0, 1.0)
    }

    /// Merge (union) another signature into this one (component-wise min).
    ///
    /// `set_size` becomes an upper bound after merging (unions may overlap).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn merge(&mut self, other: &MinHashSignature) {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "incompatible signatures"
        );
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            if *b < *a {
                *a = *b;
            }
        }
        self.set_size += other.set_size;
    }

    /// Number of hash functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a zero-function signature.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn set(n: std::ops::Range<u32>) -> Vec<String> {
        n.map(|i| format!("v{i}")).collect()
    }

    fn sig(h: &MinHasher, items: &[String]) -> MinHashSignature {
        h.sign(items.iter().map(String::as_str))
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let h = MinHasher::new(64, 1);
        let a = sig(&h, &set(0..100));
        let b = sig(&h, &set(0..100));
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_have_jaccard_near_zero() {
        let h = MinHasher::new(128, 1);
        let a = sig(&h, &set(0..100));
        let b = sig(&h, &set(1000..1100));
        assert!(a.jaccard(&b) < 0.05);
    }

    #[test]
    fn jaccard_estimate_converges() {
        // True Jaccard of [0,150) vs [50,200) = 100/200 = 0.5.
        let h = MinHasher::new(512, 3);
        let a = sig(&h, &set(0..150));
        let b = sig(&h, &set(50..200));
        let est = a.jaccard(&b);
        assert!((est - 0.5).abs() < 0.08, "estimate {est}");
    }

    #[test]
    fn containment_estimate_uses_set_sizes() {
        // A = [0,100) fully contained in B = [0,1000): containment 1.0,
        // Jaccard only 0.1 — this asymmetry is the whole LSH Ensemble story.
        let h = MinHasher::new(512, 5);
        let a = sig(&h, &set(0..100));
        let b = sig(&h, &set(0..1000));
        assert!(a.jaccard(&b) < 0.2);
        let c = a.containment_in(&b);
        assert!(c > 0.8, "containment estimate {c}");
    }

    #[test]
    fn merge_equals_signature_of_union() {
        let h = MinHasher::new(64, 9);
        let mut a = sig(&h, &set(0..50));
        let b = sig(&h, &set(50..100));
        a.merge(&b);
        let u = sig(&h, &set(0..100));
        assert_eq!(a.values, u.values);
        assert_eq!(a.set_size, 100);
    }

    #[test]
    fn sign_hashes_matches_sign() {
        let h = MinHasher::new(32, 2);
        let items = set(0..40);
        let a = sig(&h, &items);
        let b = h.sign_hashes(items.iter().map(|s| h.token_hash(s)));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_set_signature() {
        let h = MinHasher::new(16, 0);
        let e = h.sign(std::iter::empty());
        assert_eq!(e.set_size, 0);
        assert!(e.values.iter().all(|&v| v == u64::MAX));
        assert_eq!(e.containment_in(&e), 0.0);
    }

    #[test]
    fn signatures_are_order_insensitive() {
        let h = MinHasher::new(32, 4);
        let fwd = set(0..30);
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(sig(&h, &fwd).values, sig(&h, &rev).values);
    }

    #[test]
    fn different_seeds_give_different_signatures() {
        let items = set(0..30);
        let a = sig(&MinHasher::new(32, 1), &items);
        let b = sig(&MinHasher::new(32, 2), &items);
        assert_ne!(a.values, b.values);
    }

    #[test]
    fn estimation_error_shrinks_with_k() {
        // Standard error ~ sqrt(j(1-j)/k): k=64 should usually beat k=16
        // on average over several trials.
        let truth = 0.5;
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for seed in 0..10 {
            let hs = MinHasher::new(16, seed);
            let hl = MinHasher::new(256, seed);
            let a16 = sig(&hs, &set(0..150));
            let b16 = sig(&hs, &set(50..200));
            let a256 = sig(&hl, &set(0..150));
            let b256 = sig(&hl, &set(50..200));
            err_small += (a16.jaccard(&b16) - truth).abs();
            err_large += (a256.jaccard(&b256) - truth).abs();
        }
        assert!(
            err_large < err_small,
            "k=256 error {err_large} not below k=16 error {err_small}"
        );
    }

    #[test]
    fn distinct_sets_get_distinct_signatures_mostly() {
        let h = MinHasher::new(64, 8);
        let mut sigs = HashSet::new();
        for start in 0..50u32 {
            let s = sig(&h, &set(start * 100..start * 100 + 50));
            sigs.insert(s.values);
        }
        assert_eq!(sigs.len(), 50);
    }
}
