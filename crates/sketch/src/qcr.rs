//! QCR (Quadrant Count Ratio) sketches for correlated dataset search.
//!
//! Reproduces the sketch of Santos et al., *"A Sketch-based Index for
//! Correlated Dataset Search"* (ICDE 2022): to find tables that are
//! joinable with a query **and** whose numeric column correlates with a
//! query numeric column, each (key column, numeric column) pair is reduced
//! to a set of `(key, above/below column mean)` terms. Sampling keys by
//! hash order (bottom-k) makes samples *coordinated* across tables, so two
//! sketches can be intersected to estimate the quadrant count ratio — and
//! through it the Pearson correlation — of the joined columns without ever
//! joining them.

use crate::hash::hash_str;
use serde::{Deserialize, Serialize};

/// A QCR sketch of one (join key, numeric value) column pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QcrSketch {
    /// Sample budget (number of key hashes kept).
    k: usize,
    /// `(key_hash, value >= column mean)`, sorted ascending by hash;
    /// bottom-k sample of the key universe.
    entries: Vec<(u64, bool)>,
    seed: u64,
}

impl QcrSketch {
    /// Build a sketch from `(key, value)` pairs with sample budget `k`.
    ///
    /// The column mean is computed over the supplied pairs; duplicate keys
    /// keep their first occurrence.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn build<S: AsRef<str>>(k: usize, seed: u64, pairs: &[(S, f64)]) -> Self {
        assert!(k > 0, "QCR needs k >= 1");
        if pairs.is_empty() {
            return QcrSketch {
                k,
                entries: Vec::new(),
                seed,
            };
        }
        let mean = pairs.iter().map(|(_, v)| v).sum::<f64>() / pairs.len() as f64;
        let mut entries: Vec<(u64, bool)> = Vec::with_capacity(pairs.len());
        for (key, v) in pairs {
            entries.push((hash_str(key.as_ref(), seed), *v >= mean));
        }
        entries.sort_unstable_by_key(|&(h, _)| h);
        entries.dedup_by_key(|&mut (h, _)| h);
        entries.truncate(k);
        QcrSketch { k, entries, seed }
    }

    /// Number of sampled keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the sketch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sample budget.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Decompose into `(k, entries, seed)` — the serialization hook for
    /// persistent stores. `entries` is the bottom-k sample, ascending by
    /// key hash.
    #[must_use]
    pub fn parts(&self) -> (usize, &[(u64, bool)], u64) {
        (self.k, &self.entries, self.seed)
    }

    /// Rebuild a sketch from the pieces [`Self::parts`] produced.
    /// `entries` must be ascending by hash with unique hashes and at most
    /// `k` elements — true of any value that came out of `parts`; feeding
    /// anything else voids the estimator's guarantees (but cannot panic).
    #[must_use]
    pub fn from_parts(k: usize, entries: Vec<(u64, bool)>, seed: u64) -> Self {
        QcrSketch { k, entries, seed }
    }

    /// `(concordant, discordant)` counts over the keys sampled by *both*
    /// sketches.
    ///
    /// # Panics
    /// Panics on seed mismatch (sketches would sample different keys).
    #[must_use]
    pub fn quadrant_counts(&self, other: &QcrSketch) -> (usize, usize) {
        assert_eq!(self.seed, other.seed, "seed mismatch");
        let (mut i, mut j) = (0usize, 0usize);
        let (mut conc, mut disc) = (0usize, 0usize);
        while i < self.entries.len() && j < other.entries.len() {
            let (ha, sa) = self.entries[i];
            let (hb, sb) = other.entries[j];
            match ha.cmp(&hb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if sa == sb {
                        conc += 1;
                    } else {
                        disc += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        (conc, disc)
    }

    /// The quadrant count ratio `(c - d) / (c + d)` in `[-1, 1]`;
    /// 0 when the samples share no keys.
    #[must_use]
    pub fn qcr(&self, other: &QcrSketch) -> f64 {
        let (c, d) = self.quadrant_counts(other);
        let n = c + d;
        if n == 0 {
            0.0
        } else {
            (c as f64 - d as f64) / n as f64
        }
    }

    /// Estimated Pearson correlation. For bivariate normal data the
    /// quadrant probability satisfies `P(conc) - P(disc) = (2/π) asin(ρ)`,
    /// so `ρ ≈ sin(π/2 · qcr)`.
    #[must_use]
    pub fn estimate_pearson(&self, other: &QcrSketch) -> f64 {
        (std::f64::consts::FRAC_PI_2 * self.qcr(other)).sin()
    }

    /// Number of shared sampled keys — the effective sample size behind a
    /// correlation estimate (callers should distrust tiny values).
    #[must_use]
    pub fn shared_keys(&self, other: &QcrSketch) -> usize {
        let (c, d) = self.quadrant_counts(other);
        c + d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paired columns over the same keys with controlled correlation:
    /// y = rho * x + sqrt(1-rho^2) * noise, deterministic noise.
    #[allow(clippy::type_complexity)]
    fn paired(n: usize, rho: f64) -> (Vec<(String, f64)>, Vec<(String, f64)>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            // Deterministic pseudo-gaussians from hashed uniforms.
            let u1 = (crate::hash::hash_u64(i as u64, 1) as f64 + 1.0) / (u64::MAX as f64 + 2.0);
            let u2 = (crate::hash::hash_u64(i as u64, 2) as f64 + 1.0) / (u64::MAX as f64 + 2.0);
            let g1 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let g2 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).sin();
            let x = g1;
            let y = rho * g1 + (1.0 - rho * rho).max(0.0).sqrt() * g2;
            let key = format!("k{i}");
            xs.push((key.clone(), x));
            ys.push((key, y));
        }
        (xs, ys)
    }

    #[test]
    fn perfect_positive_correlation() {
        let (xs, ys) = paired(2_000, 1.0);
        let a = QcrSketch::build(512, 9, &xs);
        let b = QcrSketch::build(512, 9, &ys);
        assert!(a.qcr(&b) > 0.95, "qcr {}", a.qcr(&b));
        assert!(a.estimate_pearson(&b) > 0.95);
    }

    #[test]
    fn perfect_negative_correlation() {
        let (xs, ys) = paired(2_000, -1.0);
        let a = QcrSketch::build(512, 9, &xs);
        let b = QcrSketch::build(512, 9, &ys);
        assert!(a.qcr(&b) < -0.95, "qcr {}", a.qcr(&b));
    }

    #[test]
    fn independent_columns_near_zero() {
        let (xs, ys) = paired(4_000, 0.0);
        let a = QcrSketch::build(1024, 9, &xs);
        let b = QcrSketch::build(1024, 9, &ys);
        assert!(a.qcr(&b).abs() < 0.12, "qcr {}", a.qcr(&b));
    }

    #[test]
    fn moderate_correlation_is_recovered() {
        for &rho in &[0.8, 0.5, -0.6] {
            let (xs, ys) = paired(4_000, rho);
            let a = QcrSketch::build(1024, 9, &xs);
            let b = QcrSketch::build(1024, 9, &ys);
            let est = a.estimate_pearson(&b);
            assert!((est - rho).abs() < 0.2, "rho {rho}, estimate {est}");
        }
    }

    #[test]
    fn sampling_is_coordinated() {
        // Two sketches of the same keys sample the same subset, so the
        // shared-key count should be ~k even though each table has n >> k.
        let (xs, ys) = paired(10_000, 0.3);
        let a = QcrSketch::build(256, 9, &xs);
        let b = QcrSketch::build(256, 9, &ys);
        assert!(a.shared_keys(&b) >= 200, "shared {}", a.shared_keys(&b));
    }

    #[test]
    fn disjoint_keys_share_nothing() {
        let xs: Vec<(String, f64)> = (0..500).map(|i| (format!("a{i}"), i as f64)).collect();
        let ys: Vec<(String, f64)> = (0..500).map(|i| (format!("b{i}"), i as f64)).collect();
        let a = QcrSketch::build(256, 9, &xs);
        let b = QcrSketch::build(256, 9, &ys);
        assert_eq!(a.shared_keys(&b), 0);
        assert_eq!(a.qcr(&b), 0.0);
    }

    #[test]
    fn bigger_k_reduces_estimate_variance() {
        let (xs, ys) = paired(20_000, 0.6);
        let small = QcrSketch::build(64, 9, &xs).estimate_pearson(&QcrSketch::build(64, 9, &ys));
        let large =
            QcrSketch::build(4096, 9, &xs).estimate_pearson(&QcrSketch::build(4096, 9, &ys));
        assert!(
            (large - 0.6).abs() <= (small - 0.6).abs() + 0.05,
            "k=4096 err {} vs k=64 err {}",
            (large - 0.6).abs(),
            (small - 0.6).abs()
        );
    }

    #[test]
    fn empty_input_is_harmless() {
        let e = QcrSketch::build::<&str>(64, 9, &[]);
        assert!(e.is_empty());
        let (xs, _) = paired(100, 0.5);
        let a = QcrSketch::build(64, 9, &xs);
        assert_eq!(e.qcr(&a), 0.0);
    }

    #[test]
    fn duplicate_keys_keep_first() {
        let pairs = vec![("k", 10.0), ("k", -10.0), ("j", 0.0)];
        let s = QcrSketch::build(64, 9, &pairs);
        assert_eq!(s.len(), 2);
    }
}
