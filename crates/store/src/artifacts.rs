//! Byte codecs for the ten per-table artifact types and the segment
//! sections built from them.
//!
//! Two things make these encodings safe to diff and replay:
//!
//! 1. **Determinism** — hash-ordered collections ([`ColumnEvidence`]
//!    token sets, [`TableSignature`] type/triple sets) are sorted before
//!    encoding, so the same logical artifact always produces the same
//!    bytes. Decoding rebuilds the sets; every consumer of those sets is
//!    order-independent, so rankings are unaffected.
//! 2. **Totality** — decoders never panic. Truncated buffers, implausible
//!    length prefixes, and bad tags all surface as
//!    [`crate::StoreError::Corrupt`].

use std::collections::HashSet;

use td_core::join::{
    ContainmentJoinSearch, CorrelatedSearch, ExactJoinSearch, FuzzyJoinSearch, MateSearch,
};
use td_core::segment::ArtifactOf;
use td_core::union::{ColumnEvidence, SantosSearch, StarmieSearch, TableSignature, TusSearch};
use td_core::{KeywordSearch, PipelineSegment, TableArtifacts};
use td_embed::model::{DomainEmbedder, NGramEmbedder};
use td_sketch::minhash::MinHashSignature;
use td_sketch::qcr::QcrSketch;
use td_table::gen::domains::DomainId;
use td_table::{ColumnProfile, LakeProfile, PrimitiveType, TableId};

use crate::codec::{Reader, Writer};
use crate::error::{Result, StoreError};

/// Stable numeric identity of each component's section in a snapshot's
/// table of contents. The discriminants are part of the on-disk format —
/// append new components, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u32)]
pub enum ComponentId {
    /// Per-column statistics ([`LakeProfile`]).
    Profile = 0,
    /// Metadata/schema document ([`KeywordSearch`]).
    Keyword = 1,
    /// Distinct tokens per column ([`ExactJoinSearch`]).
    ExactJoin = 2,
    /// MinHash signatures per column ([`ContainmentJoinSearch`]).
    ContainmentJoin = 3,
    /// Embedded value vectors per column ([`FuzzyJoinSearch`]).
    FuzzyJoin = 4,
    /// Row-hash postings ([`MateSearch`]).
    Mate = 5,
    /// QCR sketches per key/numeric pair ([`CorrelatedSearch`]).
    Correlated = 6,
    /// Per-column unionability evidence ([`TusSearch`]).
    Tus = 7,
    /// Annotated type/relationship signature ([`SantosSearch`]).
    Santos = 8,
    /// Contextual column embeddings ([`StarmieSearch`]).
    Starmie = 9,
}

impl ComponentId {
    /// Every component, in section order.
    pub const ALL: [ComponentId; 10] = [
        ComponentId::Profile,
        ComponentId::Keyword,
        ComponentId::ExactJoin,
        ComponentId::ContainmentJoin,
        ComponentId::FuzzyJoin,
        ComponentId::Mate,
        ComponentId::Correlated,
        ComponentId::Tus,
        ComponentId::Santos,
        ComponentId::Starmie,
    ];

    /// Decode a TOC component tag.
    pub fn from_u32(v: u32) -> Result<Self> {
        Self::ALL
            .into_iter()
            .find(|c| *c as u32 == v)
            .ok_or_else(|| StoreError::corrupt("toc", format!("unknown component id {v}")))
    }

    /// Section label used in corruption errors.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ComponentId::Profile => "section profile",
            ComponentId::Keyword => "section keyword",
            ComponentId::ExactJoin => "section exact_join",
            ComponentId::ContainmentJoin => "section containment_join",
            ComponentId::FuzzyJoin => "section fuzzy_join",
            ComponentId::Mate => "section mate",
            ComponentId::Correlated => "section correlated",
            ComponentId::Tus => "section tus",
            ComponentId::Santos => "section santos",
            ComponentId::Starmie => "section starmie",
        }
    }
}

fn put_primitive_type(w: &mut Writer, ty: PrimitiveType) {
    w.put_u8(match ty {
        PrimitiveType::Null => 0,
        PrimitiveType::Bool => 1,
        PrimitiveType::Int => 2,
        PrimitiveType::Float => 3,
        PrimitiveType::Text => 4,
    });
}

fn get_primitive_type(r: &mut Reader<'_>) -> Result<PrimitiveType> {
    Ok(match r.get_u8()? {
        0 => PrimitiveType::Null,
        1 => PrimitiveType::Bool,
        2 => PrimitiveType::Int,
        3 => PrimitiveType::Float,
        4 => PrimitiveType::Text,
        b => {
            return Err(StoreError::corrupt(
                "column profile",
                format!("bad type tag {b}"),
            ))
        }
    })
}

fn put_profile(w: &mut Writer, cols: &ArtifactOf<LakeProfile>) {
    w.put_len(cols.len());
    for c in cols {
        w.put_str(&c.name);
        put_primitive_type(w, c.ty);
        w.put_usize(c.rows);
        w.put_usize(c.nulls);
        w.put_usize(c.distinct);
        w.put_f64(c.mean);
        w.put_f64(c.std_dev);
        w.put_opt_f64(c.min);
        w.put_opt_f64(c.max);
        w.put_f64(c.mean_text_len);
    }
}

fn get_profile(r: &mut Reader<'_>) -> Result<ArtifactOf<LakeProfile>> {
    let n = r.get_len(47)?; // name(4) + ty(1) + 3*usize + 3*f64 + 2 presence bytes
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        cols.push(ColumnProfile {
            name: r.get_str()?,
            ty: get_primitive_type(r)?,
            rows: r.get_usize()?,
            nulls: r.get_usize()?,
            distinct: r.get_usize()?,
            mean: r.get_f64()?,
            std_dev: r.get_f64()?,
            min: r.get_opt_f64()?,
            max: r.get_opt_f64()?,
            mean_text_len: r.get_f64()?,
        });
    }
    Ok(cols)
}

fn put_keyword(w: &mut Writer, doc: &ArtifactOf<KeywordSearch>) {
    w.put_str(doc);
}

fn get_keyword(r: &mut Reader<'_>) -> Result<ArtifactOf<KeywordSearch>> {
    r.get_str()
}

fn put_exact_join(w: &mut Writer, cols: &ArtifactOf<ExactJoinSearch>) {
    w.put_len(cols.len());
    for (ci, tokens) in cols {
        w.put_u32(*ci);
        w.put_len(tokens.len());
        for t in tokens {
            w.put_str(t);
        }
    }
}

fn get_exact_join(r: &mut Reader<'_>) -> Result<ArtifactOf<ExactJoinSearch>> {
    let n = r.get_len(8)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let ci = r.get_u32()?;
        let m = r.get_len(4)?;
        let mut tokens = Vec::with_capacity(m);
        for _ in 0..m {
            tokens.push(r.get_str()?);
        }
        cols.push((ci, tokens));
    }
    Ok(cols)
}

fn put_containment(w: &mut Writer, cols: &ArtifactOf<ContainmentJoinSearch>) {
    w.put_len(cols.len());
    for (ci, sig) in cols {
        w.put_u32(*ci);
        w.put_len(sig.values.len());
        for v in &sig.values {
            w.put_u64(*v);
        }
        w.put_usize(sig.set_size);
    }
}

fn get_containment(r: &mut Reader<'_>) -> Result<ArtifactOf<ContainmentJoinSearch>> {
    let n = r.get_len(16)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let ci = r.get_u32()?;
        let m = r.get_len(8)?;
        let values = r.get_u64s(m)?;
        let set_size = r.get_usize()?;
        cols.push((ci, MinHashSignature { values, set_size }));
    }
    Ok(cols)
}

fn put_fuzzy(w: &mut Writer, cols: &ArtifactOf<FuzzyJoinSearch<NGramEmbedder>>) {
    w.put_len(cols.len());
    for (ci, vecs) in cols {
        w.put_u32(*ci);
        w.put_len(vecs.len());
        for v in vecs {
            w.put_len(v.len());
            for x in v {
                w.put_f32(*x);
            }
        }
    }
}

fn get_fuzzy(r: &mut Reader<'_>) -> Result<ArtifactOf<FuzzyJoinSearch<NGramEmbedder>>> {
    let n = r.get_len(8)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let ci = r.get_u32()?;
        let m = r.get_len(4)?;
        let mut vecs = Vec::with_capacity(m);
        for _ in 0..m {
            let d = r.get_len(4)?;
            vecs.push(r.get_f32s(d)?);
        }
        cols.push((ci, vecs));
    }
    Ok(cols)
}

fn put_mate(w: &mut Writer, rows: &ArtifactOf<MateSearch>) {
    w.put_len(rows.len());
    for (hashes, row_hash) in rows {
        w.put_len(hashes.len());
        for h in hashes {
            w.put_u64(*h);
        }
        w.put_u64(*row_hash);
    }
}

fn get_mate(r: &mut Reader<'_>) -> Result<ArtifactOf<MateSearch>> {
    let n = r.get_len(12)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.get_len(8)?;
        let hashes = r.get_u64s(m)?;
        let row_hash = r.get_u64()?;
        rows.push((hashes, row_hash));
    }
    Ok(rows)
}

fn put_correlated(w: &mut Writer, pairs: &ArtifactOf<CorrelatedSearch>) {
    w.put_len(pairs.len());
    for (ki, ni, sketch) in pairs {
        w.put_u32(*ki);
        w.put_u32(*ni);
        let (k, entries, seed) = sketch.parts();
        w.put_usize(k);
        w.put_u64(seed);
        w.put_len(entries.len());
        for (h, above) in entries {
            w.put_u64(*h);
            w.put_bool(*above);
        }
    }
}

fn get_correlated(r: &mut Reader<'_>) -> Result<ArtifactOf<CorrelatedSearch>> {
    let n = r.get_len(28)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let ki = r.get_u32()?;
        let ni = r.get_u32()?;
        let k = r.get_usize()?;
        let seed = r.get_u64()?;
        let m = r.get_len(9)?;
        let mut entries = Vec::with_capacity(m);
        for _ in 0..m {
            let h = r.get_u64()?;
            let above = r.get_bool()?;
            entries.push((h, above));
        }
        pairs.push((ki, ni, QcrSketch::from_parts(k, entries, seed)));
    }
    Ok(pairs)
}

fn put_tus(w: &mut Writer, cols: &ArtifactOf<TusSearch>) {
    w.put_len(cols.len());
    for ev in cols {
        let mut tokens: Vec<&String> = ev.tokens.iter().collect();
        tokens.sort_unstable();
        w.put_len(tokens.len());
        for t in tokens {
            w.put_str(t);
        }
        w.put_len(ev.semantic.len());
        for x in &ev.semantic {
            w.put_f32(*x);
        }
        w.put_len(ev.nl.len());
        for x in &ev.nl {
            w.put_f32(*x);
        }
    }
}

fn get_tus(r: &mut Reader<'_>) -> Result<ArtifactOf<TusSearch>> {
    let n = r.get_len(12)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.get_len(4)?;
        let mut tokens = HashSet::with_capacity(m);
        for _ in 0..m {
            tokens.insert(r.get_str()?);
        }
        let d = r.get_len(4)?;
        let semantic = r.get_f32s(d)?;
        let d = r.get_len(4)?;
        let nl = r.get_f32s(d)?;
        cols.push(ColumnEvidence {
            tokens,
            semantic,
            nl,
        });
    }
    Ok(cols)
}

fn put_santos(w: &mut Writer, sig: &ArtifactOf<SantosSearch>) {
    let mut types: Vec<u16> = sig.types.iter().map(|d| d.0).collect();
    types.sort_unstable();
    w.put_len(types.len());
    for t in types {
        w.put_u16(t);
    }
    let mut triples: Vec<(u16, u32, u16)> =
        sig.triples.iter().map(|(s, r, o)| (s.0, *r, o.0)).collect();
    triples.sort_unstable();
    w.put_len(triples.len());
    for (s, rel, o) in triples {
        w.put_u16(s);
        w.put_u32(rel);
        w.put_u16(o);
    }
}

fn get_santos(r: &mut Reader<'_>) -> Result<ArtifactOf<SantosSearch>> {
    let n = r.get_len(2)?;
    let mut types = HashSet::with_capacity(n);
    for _ in 0..n {
        types.insert(DomainId(r.get_u16()?));
    }
    let m = r.get_len(8)?;
    let mut triples = HashSet::with_capacity(m);
    for _ in 0..m {
        let s = DomainId(r.get_u16()?);
        let rel = r.get_u32()?;
        let o = DomainId(r.get_u16()?);
        triples.insert((s, rel, o));
    }
    Ok(TableSignature { types, triples })
}

fn put_starmie(w: &mut Writer, cols: &ArtifactOf<StarmieSearch<DomainEmbedder>>) {
    w.put_len(cols.len());
    for v in cols {
        w.put_len(v.len());
        for x in v {
            w.put_f32(*x);
        }
    }
}

fn get_starmie(r: &mut Reader<'_>) -> Result<ArtifactOf<StarmieSearch<DomainEmbedder>>> {
    let n = r.get_len(4)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let d = r.get_len(4)?;
        cols.push(r.get_f32s(d)?);
    }
    Ok(cols)
}

/// Encode one table's full artifact bundle (the WAL ingest payload).
pub fn put_table_artifacts(w: &mut Writer, a: &TableArtifacts) {
    put_profile(w, &a.profile);
    put_keyword(w, &a.keyword);
    put_exact_join(w, &a.exact_join);
    put_containment(w, &a.containment_join);
    put_fuzzy(w, &a.fuzzy_join);
    put_mate(w, &a.mate);
    put_correlated(w, &a.correlated);
    put_tus(w, &a.tus);
    put_santos(w, &a.santos);
    put_starmie(w, &a.starmie);
}

/// Decode one table's full artifact bundle written by
/// [`put_table_artifacts`].
pub fn get_table_artifacts(r: &mut Reader<'_>) -> Result<TableArtifacts> {
    Ok(TableArtifacts {
        profile: get_profile(r)?,
        keyword: get_keyword(r)?,
        exact_join: get_exact_join(r)?,
        containment_join: get_containment(r)?,
        fuzzy_join: get_fuzzy(r)?,
        mate: get_mate(r)?,
        correlated: get_correlated(r)?,
        tus: get_tus(r)?,
        santos: get_santos(r)?,
        starmie: get_starmie(r)?,
    })
}

fn encode_entries<A>(entries: &[(TableId, A)], put: impl Fn(&mut Writer, &A)) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_len(entries.len());
    for (id, a) in entries {
        w.put_u32(id.0);
        put(&mut w, a);
    }
    w.into_bytes()
}

fn decode_entries<A>(
    bytes: &[u8],
    what: &str,
    mut get: impl FnMut(&mut Reader<'_>) -> Result<A>,
) -> Result<Vec<(TableId, A)>> {
    let mut r = Reader::new(bytes, what);
    let n = r.get_len(4)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let id = TableId(r.get_u32()?);
        entries.push((id, get(&mut r)?));
    }
    r.expect_end()?;
    Ok(entries)
}

/// Encode one component's section of a segment: `u32` table count, then
/// ascending `(table id, artifact)` pairs.
#[must_use]
pub fn encode_component(seg: &PipelineSegment, comp: ComponentId) -> Vec<u8> {
    match comp {
        ComponentId::Profile => encode_entries(seg.profile().entries(), put_profile),
        ComponentId::Keyword => encode_entries(seg.keyword().entries(), put_keyword),
        ComponentId::ExactJoin => encode_entries(seg.exact_join().entries(), put_exact_join),
        ComponentId::ContainmentJoin => {
            encode_entries(seg.containment_join().entries(), put_containment)
        }
        ComponentId::FuzzyJoin => encode_entries(seg.fuzzy_join().entries(), put_fuzzy),
        ComponentId::Mate => encode_entries(seg.mate().entries(), put_mate),
        ComponentId::Correlated => encode_entries(seg.correlated().entries(), put_correlated),
        ComponentId::Tus => encode_entries(seg.tus().entries(), put_tus),
        ComponentId::Santos => encode_entries(seg.santos().entries(), put_santos),
        ComponentId::Starmie => encode_entries(seg.starmie().entries(), put_starmie),
    }
}

/// Reassemble a [`PipelineSegment`] from its ten encoded sections;
/// `read` supplies the verified bytes of each component's section.
pub fn decode_segment(
    mut read: impl FnMut(ComponentId) -> Result<Vec<u8>>,
) -> Result<PipelineSegment> {
    use td_core::ComponentSegment as Cs;
    let profile = read(ComponentId::Profile)?;
    let keyword = read(ComponentId::Keyword)?;
    let exact = read(ComponentId::ExactJoin)?;
    let containment = read(ComponentId::ContainmentJoin)?;
    let fuzzy = read(ComponentId::FuzzyJoin)?;
    let mate = read(ComponentId::Mate)?;
    let correlated = read(ComponentId::Correlated)?;
    let tus = read(ComponentId::Tus)?;
    let santos = read(ComponentId::Santos)?;
    let starmie = read(ComponentId::Starmie)?;
    Ok(PipelineSegment::from_components(
        Cs::from_entries(decode_entries(
            &profile,
            ComponentId::Profile.name(),
            get_profile,
        )?),
        Cs::from_entries(decode_entries(
            &keyword,
            ComponentId::Keyword.name(),
            get_keyword,
        )?),
        Cs::from_entries(decode_entries(
            &exact,
            ComponentId::ExactJoin.name(),
            get_exact_join,
        )?),
        Cs::from_entries(decode_entries(
            &containment,
            ComponentId::ContainmentJoin.name(),
            get_containment,
        )?),
        Cs::from_entries(decode_entries(
            &fuzzy,
            ComponentId::FuzzyJoin.name(),
            get_fuzzy,
        )?),
        Cs::from_entries(decode_entries(&mate, ComponentId::Mate.name(), get_mate)?),
        Cs::from_entries(decode_entries(
            &correlated,
            ComponentId::Correlated.name(),
            get_correlated,
        )?),
        Cs::from_entries(decode_entries(&tus, ComponentId::Tus.name(), get_tus)?),
        Cs::from_entries(decode_entries(
            &santos,
            ComponentId::Santos.name(),
            get_santos,
        )?),
        Cs::from_entries(decode_entries(
            &starmie,
            ComponentId::Starmie.name(),
            get_starmie,
        )?),
    ))
}
