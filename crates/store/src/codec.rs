//! Endianness-stable primitive codec and the CRC-64 the formats checksum
//! with.
//!
//! Every multi-byte integer is **little-endian fixed width**; floats are
//! written as their raw IEEE-754 bit patterns (`to_bits`), so a snapshot
//! round-trips NaN payloads and signed zeros bit-exactly and the same
//! logical state always encodes to the same bytes on every platform.
//! Collections are length-prefixed (`u32`), and anything hash-ordered is
//! sorted by the callers in [`crate::artifacts`] before it reaches the
//! encoder — decode order is therefore deterministic too.

use crate::error::{Result, StoreError};

/// CRC-64/XZ (ECMA-182 polynomial, reflected), slice-by-8.
///
/// Chosen over a simple sum because it catches the burst errors a torn
/// write produces, and over CRC-32 because section payloads run to
/// megabytes. Slice-by-8 processes a whole aligned word per step with
/// eight independent table lookups — WAL replay checksums every record
/// payload, so this sits on the restore hot path.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    const TABLES: [[u64; 256]; 8] = crc64_tables();
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        crc ^= u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(crc & 0xff) as usize]
            ^ TABLES[6][((crc >> 8) & 0xff) as usize]
            ^ TABLES[5][((crc >> 16) & 0xff) as usize]
            ^ TABLES[4][((crc >> 24) & 0xff) as usize]
            ^ TABLES[3][((crc >> 32) & 0xff) as usize]
            ^ TABLES[2][((crc >> 40) & 0xff) as usize]
            ^ TABLES[1][((crc >> 48) & 0xff) as usize]
            ^ TABLES[0][((crc >> 56) & 0xff) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ u64::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

const fn crc64_tables() -> [[u64; 256]; 8] {
    // Reflected form of the ECMA-182 polynomial 0x42F0_E1EB_A9EA_3693.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[t][v] advances the byte-at-a-time recurrence t extra bytes,
    // letting eight lookups consume one 64-bit word.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Append-only byte sink for the fixed-width little-endian encoding.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// Writer with a pre-sized buffer.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (stable across 32/64-bit hosts).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append an `f32` as its raw bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an optional `f64`: presence byte, then the bits if present.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append raw bytes with no length prefix (for fixed-layout framing
    /// where the caller owns the structure).
    pub fn put_bytes_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Append a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Append a `u32` collection-length prefix.
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

/// Cursor over an encoded byte slice; every accessor bounds-checks and
/// returns [`StoreError::Corrupt`] instead of panicking on truncated or
/// malformed input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Label woven into corruption errors ("wal record", "section tus"…).
    what: &'a str,
}

impl<'a> Reader<'a> {
    /// Cursor over `buf`; `what` labels corruption errors.
    #[must_use]
    pub fn new(buf: &'a [u8], what: &'a str) -> Self {
        Reader { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::corrupt(
                self.what,
                format!("needed {n} bytes, {} remain", self.remaining()),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `usize` written by [`Writer::put_usize`], rejecting values
    /// that overflow the host's pointer width.
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::corrupt(self.what, format!("usize out of range: {v}")))
    }

    /// Read a bool byte, rejecting anything but 0/1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::corrupt(self.what, format!("bad bool byte {b}"))),
        }
    }

    /// Read an `f32` from its raw bit pattern.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an optional `f64` written by [`Writer::put_opt_f64`].
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>> {
        if self.get_bool()? {
            Ok(Some(self.get_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Read `n` consecutive little-endian `u64`s in one bounds check.
    ///
    /// Equivalent to `n` calls of [`Self::get_u64`]; the bulk form is for
    /// the decode hot paths (signature and hash arrays dominate an
    /// artifact bundle's bytes, and WAL replay decodes thousands of
    /// bundles).
    pub fn get_u64s(&mut self, n: usize) -> Result<Vec<u64>> {
        let b = self.take(n.checked_mul(8).ok_or_else(|| {
            StoreError::corrupt(self.what, format!("u64 run of {n} overflows"))
        })?)?;
        Ok(b.chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Read `n` consecutive raw-bit `f32`s in one bounds check (bulk form
    /// of [`Self::get_f32`], same rationale as [`Self::get_u64s`]).
    pub fn get_f32s(&mut self, n: usize) -> Result<Vec<f32>> {
        let b = self.take(n.checked_mul(4).ok_or_else(|| {
            StoreError::corrupt(self.what, format!("f32 run of {n} overflows"))
        })?)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    /// Read a `u32`-length-prefixed byte run.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|e| StoreError::corrupt(self.what, format!("invalid utf-8: {e}")))
    }

    /// Read a collection-length prefix, capped against the bytes actually
    /// remaining (each element needs >= `min_elem_bytes`) so corrupt
    /// lengths can't trigger absurd preallocations.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.get_u32()? as usize;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if n > cap {
            return Err(StoreError::corrupt(
                self.what,
                format!("length {n} exceeds plausible {cap}"),
            ));
        }
        Ok(n)
    }

    /// Assert the cursor consumed the whole buffer.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::corrupt(
                self.what,
                format!("{} trailing bytes", self.remaining()),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(65_000);
        w.put_u32(123_456_789);
        w.put_u64(u64::MAX - 3);
        w.put_usize(42);
        w.put_bool(true);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_opt_f64(Some(1.5));
        w.put_opt_f64(None);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65_000);
        assert_eq!(r.get_u32().unwrap(), 123_456_789);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_opt_f64().unwrap(), Some(1.5));
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = Writer::new();
        w.put_u32(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..2], "test");
        assert!(r.get_u32().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_corruption() {
        let mut r = Reader::new(&[9], "test");
        assert!(r.get_bool().is_err());
        // length 2, bytes = invalid utf-8
        let raw = [2, 0, 0, 0, 0xff, 0xfe];
        let mut r = Reader::new(&raw, "test");
        assert!(r.get_str().is_err());
    }

    #[test]
    fn implausible_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX); // claims 4 billion elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert!(r.get_len(1).is_err());
    }
}
