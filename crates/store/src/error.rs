//! Error type shared by every td-store surface.

use std::fmt;

/// Everything that can go wrong opening, writing, or restoring a store.
///
/// Corruption is a *value*, not a panic: torn WAL tails and flipped
/// snapshot bytes are expected states after a crash, and recovery code
/// branches on them (truncate the tail, fall back to an older snapshot)
/// instead of unwinding.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// Bytes decoded to something impossible (bad magic, checksum
    /// mismatch, truncated section, out-of-range tag…).
    Corrupt {
        /// Which file/section the corruption was detected in.
        what: String,
        /// What specifically failed to decode.
        detail: String,
    },
    /// The file's format version is newer than this build understands.
    Version {
        /// Version found in the header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The snapshot was produced under a different pipeline configuration
    /// than the caller restored with; merging would silently mix worlds.
    ContextMismatch {
        /// Fingerprint recorded in the snapshot header.
        found: u64,
        /// Fingerprint of the caller's context.
        expected: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
            StoreError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads <= {supported})"
                )
            }
            StoreError::ContextMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot context fingerprint {found:#018x} does not match \
                     the restoring pipeline's {expected:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Shorthand for a corruption error.
    pub(crate) fn corrupt(what: impl Into<String>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            what: what.into(),
            detail: detail.into(),
        }
    }

    /// True if this error means "the bytes are bad" (as opposed to an
    /// environment failure) — the class restore falls back on.
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::Corrupt { .. } | StoreError::Version { .. }
        )
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
