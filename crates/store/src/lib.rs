//! # td-store — restart a discovery pipeline without rebuilding it
//!
//! Building a [`td_core::DiscoveryPipeline`] pays per-table extraction
//! (profiling, embedding, sketching, annotation) for every table in the
//! lake; at thousands of tables that is seconds to minutes a process
//! must spend before it can serve its first query. This crate removes
//! the rebuild from the restart path with the classic pairing:
//!
//! * **snapshots** ([`snapshot`]) — a versioned, checksummed,
//!   offset-indexed serialization of the segmented pipeline's sealed
//!   state, written atomically at a checkpoint;
//! * **a write-ahead log** ([`wal`]) — every `ingest`/`drop`/`seal`/
//!   `compact` since the last checkpoint, framed with per-record
//!   checksums; ingest records carry the *extracted artifact bundle*
//!   ([`td_core::TableArtifacts`]), so replay never re-extracts.
//!
//! [`Store::restore`] loads the newest valid snapshot, truncates any
//! torn WAL tail, replays the surviving records, and hands back a
//! [`td_core::SegmentedPipeline`] whose merged rankings are
//! **byte-identical** to one that lived through the same history in a
//! single process — the segment/merge architecture makes that exact, not
//! approximate, because restore and live ingest funnel through the same
//! `from_segments` construction path.
//!
//! Everything here is dependency-free serialization: little-endian
//! fixed-width integers, floats as raw bits, CRC-64 checksums, sorted
//! encodings for hash-ordered sets ([`codec`], [`artifacts`]).
//! Corruption is handled as data, not as panics: flipped bytes and torn
//! writes surface as [`StoreError::Corrupt`] and recovery falls back
//! (older snapshot, truncated tail) instead of unwinding.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod artifacts;
pub mod codec;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::{Result, StoreError};
pub use snapshot::{SnapshotHeader, SnapshotReader, FORMAT_VERSION};
pub use store::{context_fingerprint, CheckpointStats, DurablePipeline, RestoreStats, Store};
pub use wal::{Wal, WalRecord, WalReplay, WalScan};
