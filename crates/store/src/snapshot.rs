//! Versioned, offset-based snapshot files.
//!
//! ## Layout
//!
//! ```text
//! file    := header toc toc_crc section*
//! header  := magic "TDSNAP01" | version u32 | ctx_fingerprint u64
//!          | wal_generation u64 | sealed_count u32 | toc_entries u32
//!          | reserved u32 | crc64(header[0..40])
//! toc     := entry{toc_entries}         (32 bytes each)
//! entry   := segment u32 | component u32 | offset u64 | len u64 | crc64
//! section := the component's encoded bytes (see crate::artifacts)
//! ```
//!
//! The table of contents records **absolute byte offsets**, so a reader
//! validates the ~48-byte header plus the TOC and then seeks straight to
//! the sections it wants — nothing is deserialized until asked for, and
//! a future partial restore (one component, one segment) needs no format
//! change. Every section carries its own CRC-64; a flipped byte anywhere
//! surfaces as [`StoreError::Corrupt`] on that read, never as a panic or
//! a silently wrong index.
//!
//! Two pseudo-segment indices extend the TOC beyond the sealed stack:
//! [`DELTA_SEGMENT`] for the mutable delta's ten sections and
//! [`META_SEGMENT`] for the tombstone list.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

use td_core::PipelineSegment;
use td_table::TableId;

use crate::artifacts::{decode_segment, encode_component, ComponentId};
use crate::codec::{crc64, Reader, Writer};
use crate::error::{Result, StoreError};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TDSNAP01";
/// Highest snapshot format version this build reads and the one it
/// writes.
pub const FORMAT_VERSION: u32 = 1;
/// Pseudo-segment index carrying the delta segment's sections.
pub const DELTA_SEGMENT: u32 = u32::MAX - 1;
/// Pseudo-segment index carrying store metadata (tombstones).
pub const META_SEGMENT: u32 = u32::MAX;

const HEADER_LEN: usize = 48;
const TOC_ENTRY_LEN: usize = 32;

/// Parsed, checksum-verified snapshot header.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Fingerprint of the pipeline configuration that produced the
    /// artifacts (see [`crate::store::context_fingerprint`]).
    pub ctx_fingerprint: u64,
    /// WAL generation whose records apply on top of this snapshot.
    pub wal_generation: u64,
    /// Number of sealed segments.
    pub sealed_count: u32,
}

#[derive(Debug, Clone, Copy)]
struct TocEntry {
    segment: u32,
    component: u32,
    offset: u64,
    len: u64,
    crc: u64,
}

/// Everything a snapshot persists, borrowed from the live pipeline.
pub struct SnapshotState<'a> {
    /// Sealed segments, oldest first.
    pub sealed: &'a [PipelineSegment],
    /// The mutable delta segment (possibly empty).
    pub delta: &'a PipelineSegment,
    /// Outstanding tombstones.
    pub tombstones: &'a BTreeSet<TableId>,
}

fn encode_tombstones(tombstones: &BTreeSet<TableId>) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_len(tombstones.len());
    for id in tombstones {
        w.put_u32(id.0);
    }
    w.into_bytes()
}

fn decode_tombstones(bytes: &[u8]) -> Result<BTreeSet<TableId>> {
    let mut r = Reader::new(bytes, "section tombstones");
    let n = r.get_len(4)?;
    let mut set = BTreeSet::new();
    for _ in 0..n {
        set.insert(TableId(r.get_u32()?));
    }
    r.expect_end()?;
    Ok(set)
}

/// Serialize `state` to `path` (created/truncated), fsynced before
/// returning. Returns the file's total size in bytes.
///
/// Callers wanting crash-atomic publication write to a temp path and
/// rename — [`crate::store::Store::checkpoint`] does exactly that.
pub fn write_snapshot(
    path: &Path,
    ctx_fingerprint: u64,
    wal_generation: u64,
    state: &SnapshotState<'_>,
) -> Result<u64> {
    let _s = td_obs::span!("store.snapshot.write");

    // Encode every section first so offsets are known before the header
    // is laid down.
    let mut sections: Vec<(u32, u32, Vec<u8>)> = Vec::new();
    for (idx, seg) in state.sealed.iter().enumerate() {
        for comp in ComponentId::ALL {
            sections.push((idx as u32, comp as u32, encode_component(seg, comp)));
        }
    }
    for comp in ComponentId::ALL {
        sections.push((
            DELTA_SEGMENT,
            comp as u32,
            encode_component(state.delta, comp),
        ));
    }
    sections.push((META_SEGMENT, 0, encode_tombstones(state.tombstones)));

    let toc_len = sections.len() * TOC_ENTRY_LEN;
    let mut offset = (HEADER_LEN + toc_len + 8) as u64; // +8: toc crc

    let mut header = Writer::with_capacity(HEADER_LEN);
    header.put_bytes_raw(SNAPSHOT_MAGIC);
    header.put_u32(FORMAT_VERSION);
    header.put_u64(ctx_fingerprint);
    header.put_u64(wal_generation);
    header.put_u32(state.sealed.len() as u32);
    header.put_u32(sections.len() as u32);
    header.put_u32(0); // reserved
    let hcrc = crc64(header.bytes());
    header.put_u64(hcrc);

    let mut toc = Writer::with_capacity(toc_len);
    for (segment, component, bytes) in &sections {
        toc.put_u32(*segment);
        toc.put_u32(*component);
        toc.put_u64(offset);
        toc.put_u64(bytes.len() as u64);
        toc.put_u64(crc64(bytes));
        offset += bytes.len() as u64;
    }
    let tcrc = crc64(toc.bytes());

    let mut f = File::create(path)?;
    f.write_all(header.bytes())?;
    f.write_all(toc.bytes())?;
    f.write_all(&tcrc.to_le_bytes())?;
    for (_, _, bytes) in &sections {
        f.write_all(bytes)?;
    }
    f.sync_all()?;
    let total = offset;
    td_obs::global().counter("store.snapshot.bytes").add(total);
    Ok(total)
}

/// Open snapshot with verified header + TOC; sections stay on disk until
/// read.
pub struct SnapshotReader {
    file: File,
    header: SnapshotHeader,
    toc: Vec<TocEntry>,
}

impl SnapshotReader {
    /// Open `path`, validating magic, version, and the header/TOC
    /// checksums. Section payloads are *not* read or verified here.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = File::open(path)?;
        let mut head = [0u8; HEADER_LEN];
        file.read_exact(&mut head)
            .map_err(|_| StoreError::corrupt("snapshot header", "file shorter than header"))?;
        if &head[..8] != SNAPSHOT_MAGIC {
            return Err(StoreError::corrupt("snapshot header", "bad magic"));
        }
        let stored_crc = u64::from_le_bytes([
            head[40], head[41], head[42], head[43], head[44], head[45], head[46], head[47],
        ]);
        if crc64(&head[..40]) != stored_crc {
            return Err(StoreError::corrupt("snapshot header", "checksum mismatch"));
        }
        let mut r = Reader::new(&head[8..40], "snapshot header");
        let version = r.get_u32()?;
        if version > FORMAT_VERSION {
            return Err(StoreError::Version {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let ctx_fingerprint = r.get_u64()?;
        let wal_generation = r.get_u64()?;
        let sealed_count = r.get_u32()?;
        let toc_entries = r.get_u32()? as usize;

        let file_len = file.metadata()?.len();
        let toc_bytes_len = toc_entries
            .checked_mul(TOC_ENTRY_LEN)
            .filter(|n| (HEADER_LEN + n + 8) as u64 <= file_len)
            .ok_or_else(|| StoreError::corrupt("snapshot toc", "implausible entry count"))?;
        let mut toc_bytes = vec![0u8; toc_bytes_len + 8];
        file.read_exact(&mut toc_bytes)
            .map_err(|_| StoreError::corrupt("snapshot toc", "file shorter than toc"))?;
        let stored_tcrc = u64::from_le_bytes([
            toc_bytes[toc_bytes_len],
            toc_bytes[toc_bytes_len + 1],
            toc_bytes[toc_bytes_len + 2],
            toc_bytes[toc_bytes_len + 3],
            toc_bytes[toc_bytes_len + 4],
            toc_bytes[toc_bytes_len + 5],
            toc_bytes[toc_bytes_len + 6],
            toc_bytes[toc_bytes_len + 7],
        ]);
        if crc64(&toc_bytes[..toc_bytes_len]) != stored_tcrc {
            return Err(StoreError::corrupt("snapshot toc", "checksum mismatch"));
        }
        let mut r = Reader::new(&toc_bytes[..toc_bytes_len], "snapshot toc");
        let mut toc = Vec::with_capacity(toc_entries);
        for _ in 0..toc_entries {
            let e = TocEntry {
                segment: r.get_u32()?,
                component: r.get_u32()?,
                offset: r.get_u64()?,
                len: r.get_u64()?,
                crc: r.get_u64()?,
            };
            if e.offset.checked_add(e.len).is_none_or(|end| end > file_len) {
                return Err(StoreError::corrupt(
                    "snapshot toc",
                    format!("section [{}, {}] out of bounds", e.segment, e.component),
                ));
            }
            toc.push(e);
        }

        Ok(SnapshotReader {
            file,
            header: SnapshotHeader {
                version,
                ctx_fingerprint,
                wal_generation,
                sealed_count,
            },
            toc,
        })
    }

    /// The verified header.
    #[must_use]
    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// Seek to and read one section, verifying its checksum.
    fn read_section(&mut self, segment: u32, component: u32) -> Result<Vec<u8>> {
        let entry = self
            .toc
            .iter()
            .find(|e| e.segment == segment && e.component == component)
            .copied()
            .ok_or_else(|| {
                StoreError::corrupt(
                    "snapshot toc",
                    format!("missing section [{segment}, {component}]"),
                )
            })?;
        self.file.seek(SeekFrom::Start(entry.offset))?;
        let len = usize::try_from(entry.len)
            .map_err(|_| StoreError::corrupt("snapshot section", "length overflows usize"))?;
        let mut bytes = vec![0u8; len];
        self.file
            .read_exact(&mut bytes)
            .map_err(|_| StoreError::corrupt("snapshot section", "short read"))?;
        if crc64(&bytes) != entry.crc {
            return Err(StoreError::corrupt(
                "snapshot section",
                format!("checksum mismatch in [{segment}, {component}]"),
            ));
        }
        Ok(bytes)
    }

    fn read_segment(&mut self, segment: u32) -> Result<PipelineSegment> {
        decode_segment(|comp| self.read_section(segment, comp as u32))
    }

    /// Decode the full persisted state: sealed segments (oldest first),
    /// the delta segment, and the tombstone set.
    #[allow(clippy::type_complexity)]
    pub fn read_state(
        &mut self,
    ) -> Result<(Vec<PipelineSegment>, PipelineSegment, BTreeSet<TableId>)> {
        let mut sealed = Vec::with_capacity(self.header.sealed_count as usize);
        for idx in 0..self.header.sealed_count {
            sealed.push(self.read_segment(idx)?);
        }
        let delta = self.read_segment(DELTA_SEGMENT)?;
        let tombstones = decode_tombstones(&self.read_section(META_SEGMENT, 0)?)?;
        Ok((sealed, delta, tombstones))
    }
}
