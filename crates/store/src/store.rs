//! The durable store: snapshot files + WAL under one directory, and the
//! [`DurablePipeline`] wrapper that logs every mutation before applying
//! it.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/snapshot-00000001.tds   checkpoint files, newest wins
//! <dir>/snapshot-00000002.tds
//! <dir>/pipeline.wal            mutations since the newest checkpoint
//! ```
//!
//! ## Crash safety
//!
//! A checkpoint publishes in two steps, each individually atomic:
//!
//! 1. the snapshot is written to a temp file, fsynced, and **renamed**
//!    into place — it records the *next* WAL generation;
//! 2. the WAL is replaced by an empty file of that next generation
//!    (also temp + rename).
//!
//! A crash before (1) leaves the old snapshot + old WAL: nothing lost.
//! A crash between (1) and (2) leaves the new snapshot + a WAL of the
//! *previous* generation: restore sees `wal.generation <
//! snapshot.wal_generation` and skips the log — those records are
//! already baked into the snapshot, so nothing double-applies. After
//! (2) the generations match and the (empty, then growing) log replays
//! on top. Torn WAL tails are truncated by [`Wal::open`]; corrupt
//! snapshots are skipped in favor of the next-oldest valid one.

use std::fs;
use std::path::{Path, PathBuf};

use td_core::segment::PipelineContext;
use td_core::{SegmentedPipeline, TableArtifacts};
use td_table::{Table, TableId};

use crate::codec::crc64;
use crate::error::{Result, StoreError};
use crate::snapshot::{write_snapshot, SnapshotReader, SnapshotState};
use crate::wal::{Wal, WalRecord};

/// Fingerprint of the configuration a pipeline context was built from.
///
/// Artifacts are deterministic functions of `(table, config, seed)`, so
/// two contexts with the same fingerprint produce interchangeable
/// artifacts; a snapshot restored under a different fingerprint would
/// silently mix incompatible embedding spaces, which is why
/// [`Store::restore`] rejects it with [`StoreError::ContextMismatch`].
#[must_use]
pub fn context_fingerprint(ctx: &PipelineContext) -> u64 {
    // The Debug rendering of the config covers every construction
    // parameter (dimensions, budgets, seeds) and is stable for equal
    // values — a cheap structural hash without a serialization format.
    crc64(format!("{:?}", ctx.cfg).as_bytes())
}

/// What one checkpoint did.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointStats {
    /// Sequence number of the snapshot file written.
    pub snapshot_seq: u64,
    /// Total snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// WAL records folded into the snapshot and dropped from the log.
    pub wal_records_folded: u64,
}

/// What a restore found and did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RestoreStats {
    /// Sequence of the snapshot restored from (`None`: no usable
    /// snapshot, state came from the WAL alone).
    pub snapshot_seq: Option<u64>,
    /// Corrupt/unreadable snapshots skipped before one validated.
    pub corrupt_snapshots_skipped: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes cut from a torn WAL tail.
    pub wal_bytes_truncated: u64,
    /// Wall-clock milliseconds the whole restore took.
    pub restore_ms: f64,
}

/// Handle to a store directory.
pub struct Store {
    dir: PathBuf,
    keep_snapshots: usize,
}

impl Store {
    /// Open (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            keep_snapshots: 2,
        })
    }

    /// How many newest snapshots to keep after a checkpoint (minimum 1;
    /// default 2, so one corrupt newest file still leaves a fallback).
    #[must_use]
    pub fn with_retention(mut self, keep: usize) -> Self {
        self.keep_snapshots = keep.max(1);
        self
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("pipeline.wal")
    }

    fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{seq:08}.tds"))
    }

    /// `(seq, path)` of every snapshot file present, ascending by seq.
    fn snapshots(&self) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(seq) = name
                .strip_prefix("snapshot-")
                .and_then(|s| s.strip_suffix(".tds"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((seq, path));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Write a checkpoint of `pipeline` and reset `wal` to an empty
    /// next-generation log. See the module docs for the crash-safety
    /// argument.
    pub fn checkpoint(
        &self,
        pipeline: &SegmentedPipeline,
        wal: &mut Wal,
    ) -> Result<CheckpointStats> {
        let _s = td_obs::span!("store.checkpoint");
        let seq = self.snapshots()?.last().map_or(1, |(s, _)| s + 1);
        let next_gen = wal.generation() + 1;
        let folded = wal.record_count();

        let final_path = self.snapshot_path(seq);
        let tmp = self.dir.join(format!("snapshot-{seq:08}.tds.tmp"));
        let state = SnapshotState {
            sealed: pipeline.sealed_segments(),
            delta: pipeline.delta_segment(),
            tombstones: pipeline.tombstones(),
        };
        let bytes = write_snapshot(
            &tmp,
            context_fingerprint(pipeline.context()),
            next_gen,
            &state,
        )?;
        fs::rename(&tmp, &final_path)?;

        // The snapshot is durable; folded records are now redundant.
        *wal = Wal::create(&self.wal_path(), next_gen)?;

        // Prune old snapshots, newest-first retention.
        let snaps = self.snapshots()?;
        if snaps.len() > self.keep_snapshots {
            for (_, path) in &snaps[..snaps.len() - self.keep_snapshots] {
                fs::remove_file(path)?;
            }
        }
        td_obs::global().counter("store.checkpoints").inc();
        Ok(CheckpointStats {
            snapshot_seq: seq,
            snapshot_bytes: bytes,
            wal_records_folded: folded,
        })
    }

    /// Rebuild pipeline state from disk: newest valid snapshot plus the
    /// WAL records that postdate it, with corrupt snapshots skipped and
    /// torn WAL tails truncated. Returns the pipeline, the WAL handle to
    /// continue appending to, and what happened.
    ///
    /// The restored pipeline's merged rankings are byte-identical to a
    /// pipeline that lived through the same history in one process —
    /// enforced by `crates/store/tests/restore_equivalence.rs`.
    pub fn restore(&self, ctx: PipelineContext) -> Result<(SegmentedPipeline, Wal, RestoreStats)> {
        let _s = td_obs::span!("store.restore");
        let timer = td_obs::Timer::start();
        let mut stats = RestoreStats::default();
        let expected_fp = context_fingerprint(&ctx);

        // Newest valid snapshot wins; corruption falls back, a context
        // mismatch is a hard error (older snapshots share the context).
        let mut base: Option<(u64, u64, SegmentedPipeline)> = None; // (seq, wal_gen, state)
        let mut snaps = self.snapshots()?;
        snaps.reverse();
        for (seq, path) in snaps {
            match Self::try_read_snapshot(&path, expected_fp, &ctx) {
                Ok((wal_gen, sp)) => {
                    base = Some((seq, wal_gen, sp));
                    break;
                }
                Err(e @ StoreError::ContextMismatch { .. }) => return Err(e),
                Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                Err(_) => {
                    stats.corrupt_snapshots_skipped += 1;
                    td_obs::global().counter("store.snapshot.corrupt").inc();
                }
            }
        }
        if base.is_none() && stats.corrupt_snapshots_skipped > 0 {
            td_obs::global()
                .counter("store.restore.from_wal_only")
                .inc();
        }

        let (snapshot_wal_gen, mut pipeline) = match base {
            Some((seq, wal_gen, sp)) => {
                stats.snapshot_seq = Some(seq);
                (wal_gen, sp)
            }
            None => (0, SegmentedPipeline::with_context(ctx)),
        };

        let wal = match Wal::peek_generation(&self.wal_path())? {
            Some(gen) if gen >= snapshot_wal_gen => {
                // Log postdates the snapshot: stream-replay it — each
                // record decodes and applies in place, so replay memory
                // peaks at one bundle rather than the whole log.
                match Wal::open_with(&self.wal_path(), |rec| apply_record(&mut pipeline, rec))? {
                    Some((wal, replay)) => {
                        stats.wal_bytes_truncated = replay.torn_bytes;
                        stats.wal_records_replayed = replay.records;
                        wal
                    }
                    None => Wal::create(&self.wal_path(), snapshot_wal_gen.max(1))?,
                }
            }
            Some(_) => {
                // Stale log from before the snapshot: every record is
                // already baked in. Start a fresh current-generation log.
                Wal::create(&self.wal_path(), snapshot_wal_gen)?
            }
            None => Wal::create(&self.wal_path(), snapshot_wal_gen.max(1))?,
        };

        td_obs::global()
            .counter("store.wal.replayed")
            .add(stats.wal_records_replayed);
        let elapsed = timer.elapsed();
        td_obs::global()
            .histogram("store.restore.ns")
            .record_duration(elapsed);
        stats.restore_ms = elapsed.as_secs_f64() * 1_000.0;
        Ok((pipeline, wal, stats))
    }

    fn try_read_snapshot(
        path: &Path,
        expected_fp: u64,
        ctx: &PipelineContext,
    ) -> Result<(u64, SegmentedPipeline)> {
        let mut reader = SnapshotReader::open(path)?;
        let header = *reader.header();
        if header.ctx_fingerprint != expected_fp {
            return Err(StoreError::ContextMismatch {
                found: header.ctx_fingerprint,
                expected: expected_fp,
            });
        }
        let (sealed, delta, tombstones) = reader.read_state()?;
        Ok((
            header.wal_generation,
            SegmentedPipeline::from_state(ctx.clone(), sealed, delta, tombstones),
        ))
    }
}

fn apply_record(pipeline: &mut SegmentedPipeline, rec: WalRecord) {
    match rec {
        WalRecord::Ingest { id, artifacts } => pipeline.ingest_artifacts(id, *artifacts),
        WalRecord::Drop { id } => {
            pipeline.drop_table(id);
        }
        WalRecord::Seal => pipeline.seal(),
        WalRecord::Compact => pipeline.compact(),
    }
}

/// A [`SegmentedPipeline`] whose every mutation is logged before it is
/// applied — kill the process at any point and [`DurablePipeline::open`]
/// resumes from the same logical state.
pub struct DurablePipeline {
    pipeline: SegmentedPipeline,
    store: Store,
    wal: Wal,
}

impl DurablePipeline {
    /// Open the store and restore (or start empty if the directory holds
    /// nothing).
    pub fn open(store: Store, ctx: PipelineContext) -> Result<(Self, RestoreStats)> {
        let (pipeline, wal, stats) = store.restore(ctx)?;
        Ok((
            DurablePipeline {
                pipeline,
                store,
                wal,
            },
            stats,
        ))
    }

    /// Extract, log, and apply one table ingest. Extraction runs once;
    /// the logged record carries the finished artifact bundle, so a
    /// replay skips straight to the upsert.
    pub fn ingest_table(&mut self, id: TableId, table: &Table) -> Result<()> {
        let artifacts = TableArtifacts::extract(table, self.pipeline.context());
        self.ingest_artifacts(id, artifacts)
    }

    /// Log and apply an already-extracted bundle (the path `ingest_table`
    /// and WAL replay share).
    pub fn ingest_artifacts(&mut self, id: TableId, artifacts: TableArtifacts) -> Result<()> {
        let rec = WalRecord::Ingest {
            id,
            artifacts: Box::new(artifacts),
        };
        self.wal.append(&rec)?;
        if let WalRecord::Ingest { id, artifacts } = rec {
            self.pipeline.ingest_artifacts(id, *artifacts);
        }
        Ok(())
    }

    /// Log and apply a table drop; true if the table was live.
    pub fn drop_table(&mut self, id: TableId) -> Result<bool> {
        self.wal.append(&WalRecord::Drop { id })?;
        Ok(self.pipeline.drop_table(id))
    }

    /// Log and apply a seal of the delta segment.
    pub fn seal(&mut self) -> Result<()> {
        self.wal.append(&WalRecord::Seal)?;
        self.pipeline.seal();
        Ok(())
    }

    /// Log and apply a compaction of the segment stack.
    pub fn compact(&mut self) -> Result<()> {
        self.wal.append(&WalRecord::Compact)?;
        self.pipeline.compact();
        Ok(())
    }

    /// Checkpoint: fold the log into a fresh snapshot (see
    /// [`Store::checkpoint`]).
    pub fn checkpoint(&mut self) -> Result<CheckpointStats> {
        self.store.checkpoint(&self.pipeline, &mut self.wal)
    }

    /// Force logged records to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.wal.sync()
    }

    /// The live pipeline (reads and searches go through here).
    #[must_use]
    pub fn pipeline(&self) -> &SegmentedPipeline {
        &self.pipeline
    }

    /// The underlying store directory handle.
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Records sitting in the WAL since the last checkpoint.
    #[must_use]
    pub fn wal_records(&self) -> u64 {
        self.wal.record_count()
    }
}
