//! Append-only write-ahead log of pipeline mutations.
//!
//! ## Framing
//!
//! ```text
//! file   := header record*
//! header := magic "TDWAL001" | generation u64 | crc64(magic+generation)
//! record := payload_len u32 | crc64(payload) | payload
//! payload:= kind u8 | body
//! ```
//!
//! A crash can only tear the *tail*: records are appended with a single
//! write and never rewritten. Recovery scans forward validating each
//! frame (length plausible, checksum matches, payload decodes) and
//! truncates the file at the first invalid frame — every prior record is
//! intact by checksum, everything after is unreachable garbage.
//!
//! ## Generations
//!
//! The header's `generation` ties the log to the snapshot cadence: a
//! snapshot records the generation whose records apply *on top of it*,
//! and a checkpoint atomically replaces the log with an empty
//! next-generation file. Restore replays the log only when its
//! generation is current for the chosen snapshot, so a crash anywhere in
//! the checkpoint sequence double-applies nothing (see
//! [`crate::store::Store::checkpoint`]).
//!
//! Ingest records carry the table's **extracted artifact bundle**, not
//! the raw table, so replay is pure deserialization + upsert — no
//! re-profiling, re-embedding, or re-annotation. That is what makes
//! replaying thousands of records take milliseconds instead of re-paying
//! the extraction cost of every ingest since the last checkpoint.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use td_core::TableArtifacts;
use td_table::TableId;

use crate::artifacts::{get_table_artifacts, put_table_artifacts};
use crate::codec::{crc64, Reader, Writer};
use crate::error::{Result, StoreError};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"TDWAL001";
/// Fixed header size: magic + generation + header checksum.
pub const WAL_HEADER_LEN: u64 = 24;
/// Fixed record frame overhead: length prefix + payload checksum.
pub const RECORD_FRAME_LEN: usize = 12;

const KIND_INGEST: u8 = 1;
const KIND_DROP: u8 = 2;
const KIND_SEAL: u8 = 3;
const KIND_COMPACT: u8 = 4;

/// One logged pipeline mutation.
pub enum WalRecord {
    /// A table was ingested (or replaced); carries the extracted bundle.
    /// Boxed so the enum stays small next to the payload-free variants.
    Ingest {
        /// Caller-assigned table id.
        id: TableId,
        /// The artifacts the ingest extracted.
        artifacts: Box<TableArtifacts>,
    },
    /// A table was dropped.
    Drop {
        /// The dropped table's id.
        id: TableId,
    },
    /// The delta segment was sealed.
    Seal,
    /// The segment stack was compacted.
    Compact,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WalRecord::Ingest { id, artifacts } => {
                w.put_u8(KIND_INGEST);
                w.put_u32(id.0);
                put_table_artifacts(&mut w, artifacts);
            }
            WalRecord::Drop { id } => {
                w.put_u8(KIND_DROP);
                w.put_u32(id.0);
            }
            WalRecord::Seal => w.put_u8(KIND_SEAL),
            WalRecord::Compact => w.put_u8(KIND_COMPACT),
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Self> {
        let mut r = Reader::new(payload, "wal record");
        let rec = match r.get_u8()? {
            KIND_INGEST => WalRecord::Ingest {
                id: TableId(r.get_u32()?),
                artifacts: Box::new(get_table_artifacts(&mut r)?),
            },
            KIND_DROP => WalRecord::Drop {
                id: TableId(r.get_u32()?),
            },
            KIND_SEAL => WalRecord::Seal,
            KIND_COMPACT => WalRecord::Compact,
            k => return Err(StoreError::corrupt("wal record", format!("bad kind {k}"))),
        };
        r.expect_end()?;
        Ok(rec)
    }
}

/// What a recovery scan found in a WAL file.
pub struct WalScan {
    /// Generation from the header (0 when the header itself was invalid).
    pub generation: u64,
    /// Every record whose frame validated, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + valid records).
    pub valid_len: u64,
    /// Bytes discarded from the torn tail (0 for a clean log).
    pub torn_bytes: u64,
    /// False when the header was missing/corrupt (nothing replayable).
    pub header_valid: bool,
}

/// Counts from a streaming scan ([`Wal::open_with`]) — same validation
/// as [`WalScan`], but the decoded records went to the sink instead of a
/// vector.
pub struct WalReplay {
    /// Generation from the header.
    pub generation: u64,
    /// Records fed to the sink, in append order.
    pub records: u64,
    /// Byte length of the valid prefix (header + valid records).
    pub valid_len: u64,
    /// Bytes discarded from the torn tail (0 for a clean log).
    pub torn_bytes: u64,
}

struct ScanSummary {
    generation: u64,
    records: u64,
    valid_len: u64,
    torn_bytes: u64,
    header_valid: bool,
}

fn parse_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < WAL_HEADER_LEN as usize
        || &bytes[..8] != WAL_MAGIC
        || crc64(&bytes[..16])
            != u64::from_le_bytes([
                bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22],
                bytes[23],
            ])
    {
        return None;
    }
    Some(u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]))
}

/// Validate frames forward, feeding each decoded record to `sink` as the
/// scan reaches it. Streaming matters for replay: a big log decodes one
/// record at a time into the sink instead of materializing every bundle
/// at once (a 5k-ingest log holds the better part of a gigabyte decoded).
fn scan_bytes_with(bytes: &[u8], sink: &mut dyn FnMut(WalRecord)) -> ScanSummary {
    let Some(generation) = parse_header(bytes) else {
        return ScanSummary {
            generation: 0,
            records: 0,
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
            header_valid: false,
        };
    };
    let mut pos = WAL_HEADER_LEN as usize;
    let mut records = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break; // clean end
        }
        if rest.len() < RECORD_FRAME_LEN {
            break; // torn frame header
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        if rest.len() < RECORD_FRAME_LEN + len {
            break; // torn payload
        }
        let payload = &rest[RECORD_FRAME_LEN..RECORD_FRAME_LEN + len];
        if crc64(payload) != crc {
            break; // bit rot or torn rewrite
        }
        let Ok(rec) = WalRecord::decode(payload) else {
            break; // checksum ok but undecodable: stop before it
        };
        sink(rec);
        records += 1;
        pos += RECORD_FRAME_LEN + len;
    }
    ScanSummary {
        generation,
        records,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
        header_valid: true,
    }
}

/// An open, append-positioned WAL.
pub struct Wal {
    path: PathBuf,
    file: File,
    generation: u64,
    records: u64,
}

impl Wal {
    /// Atomically (re)create the log as an empty file of `generation`:
    /// header goes to a temp file, fsync, rename over `path`.
    pub fn create(path: &Path, generation: u64) -> Result<Self> {
        let tmp = tmp_path(path);
        let mut w = Writer::with_capacity(WAL_HEADER_LEN as usize);
        w.put_bytes_raw(WAL_MAGIC);
        w.put_u64(generation);
        let crc = crc64(w.bytes());
        w.put_u64(crc);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(w.bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            generation,
            records: 0,
        })
    }

    /// Open an existing log for appending: scan it, truncate any torn
    /// tail, and position at the end. Returns the scan alongside the
    /// handle so the caller can replay the surviving records. `None` if
    /// no file exists or its header is unusable (nothing replayable —
    /// callers [`Wal::create`] a fresh one).
    pub fn open(path: &Path) -> Result<Option<(Self, WalScan)>> {
        let mut records = Vec::new();
        let opened = Self::open_with(path, |rec| records.push(rec))?;
        Ok(opened.map(|(wal, replay)| {
            let scan = WalScan {
                generation: replay.generation,
                records,
                valid_len: replay.valid_len,
                torn_bytes: replay.torn_bytes,
                header_valid: true,
            };
            (wal, scan)
        }))
    }

    /// Streaming [`Self::open`]: each valid record goes straight to
    /// `sink` instead of a collected vector, so replaying a large log
    /// peaks at one decoded record rather than all of them. Same
    /// validation, truncation, and positioning as `open`.
    pub fn open_with(
        path: &Path,
        mut sink: impl FnMut(WalRecord),
    ) -> Result<Option<(Self, WalReplay)>> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_bytes_with(&bytes, &mut sink);
        if !scan.header_valid {
            return Ok(None);
        }
        if scan.torn_bytes > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(scan.valid_len)?;
            f.sync_all()?;
            td_obs::global()
                .counter("store.wal.truncated_bytes")
                .add(scan.torn_bytes);
        }
        let file = OpenOptions::new().append(true).open(path)?;
        let wal = Wal {
            path: path.to_path_buf(),
            file,
            generation: scan.generation,
            records: scan.records,
        };
        Ok(Some((
            wal,
            WalReplay {
                generation: scan.generation,
                records: scan.records,
                valid_len: scan.valid_len,
                torn_bytes: scan.torn_bytes,
            },
        )))
    }

    /// Read just the header and return the log's generation — `None` if
    /// the file is missing or its header invalid. Lets a restore decide
    /// whether the log postdates its snapshot *before* paying for a full
    /// scan-and-decode of the records.
    pub fn peek_generation(path: &Path) -> Result<Option<u64>> {
        use std::io::Read as _;
        let mut f = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        let mut got = 0;
        while got < header.len() {
            let n = f.read(&mut header[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        Ok(parse_header(&header[..got]))
    }

    /// Append one record (single frame write; no per-record fsync — call
    /// [`Self::sync`] for a durability barrier).
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let payload = rec.encode();
        let mut frame = Writer::with_capacity(RECORD_FRAME_LEN + payload.len());
        frame.put_u32(payload.len() as u32);
        frame.put_u64(crc64(&payload));
        frame.put_bytes_raw(&payload);
        self.file.write_all(frame.bytes())?;
        self.records += 1;
        td_obs::global().counter("store.wal.appends").inc();
        td_obs::global()
            .counter("store.wal.bytes")
            .add(frame.len() as u64);
        Ok(())
    }

    /// Flush appended records to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    /// The log's generation (see module docs).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records currently in the log (surviving scan + appended since).
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("td-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_append_scan_round_trip() {
        let path = dir().join("round_trip.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::create(&path, 3).unwrap();
        wal.append(&WalRecord::Drop { id: TableId(7) }).unwrap();
        wal.append(&WalRecord::Seal).unwrap();
        wal.append(&WalRecord::Compact).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.record_count(), 3);
        drop(wal);

        let (wal, scan) = Wal::open(&path).unwrap().unwrap();
        assert_eq!(wal.generation(), 3);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.torn_bytes, 0);
        assert!(matches!(scan.records[0], WalRecord::Drop { id } if id == TableId(7)));
        assert!(matches!(scan.records[1], WalRecord::Seal));
        assert!(matches!(scan.records[2], WalRecord::Compact));
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let path = dir().join("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(&WalRecord::Drop { id: TableId(1) }).unwrap();
        wal.append(&WalRecord::Drop { id: TableId(2) }).unwrap();
        drop(wal);

        // Tear the last record mid-payload.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (wal, scan) = Wal::open(&path).unwrap().unwrap();
        assert_eq!(scan.records.len(), 1, "only the intact record survives");
        assert!(scan.torn_bytes > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            scan.valid_len,
            "file truncated to the valid prefix"
        );
        drop(wal);

        // Reopening after truncation is clean.
        let (_, scan2) = Wal::open(&path).unwrap().unwrap();
        assert_eq!(scan2.records.len(), 1);
        assert_eq!(scan2.torn_bytes, 0);
    }

    #[test]
    fn corrupt_record_checksum_stops_the_scan() {
        let path = dir().join("bitrot.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(&WalRecord::Seal).unwrap();
        wal.append(&WalRecord::Compact).unwrap();
        drop(wal);

        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, scan) = Wal::open(&path).unwrap().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.records[0], WalRecord::Seal));
    }

    #[test]
    fn corrupt_header_means_nothing_replayable() {
        let path = dir().join("badheader.wal");
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        assert!(Wal::open(&path).unwrap().is_none());
        let missing = dir().join("does-not-exist.wal");
        assert!(Wal::open(&missing).unwrap().is_none());
    }

    #[test]
    fn append_continues_after_reopen() {
        let path = dir().join("reopen.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::create(&path, 5).unwrap();
        wal.append(&WalRecord::Seal).unwrap();
        drop(wal);
        let (mut wal, scan) = Wal::open(&path).unwrap().unwrap();
        assert_eq!(scan.records.len(), 1);
        wal.append(&WalRecord::Compact).unwrap();
        assert_eq!(wal.record_count(), 2);
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap().unwrap();
        assert_eq!(scan.records.len(), 2);
    }
}
