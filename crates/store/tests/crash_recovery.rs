//! Crash drills: every corruption a torn write or bit rot can leave
//! behind is recovered from without a panic — torn WAL tails are
//! truncated to the last valid record, corrupt snapshots are rejected in
//! favor of an older valid one (or the WAL alone), and a context
//! mismatch is a clean error.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use td_core::segment::PipelineContext;
use td_core::{PipelineConfig, SegmentedPipeline};
use td_store::{DurablePipeline, Store, StoreError};
use td_table::gen::lakegen::{GeneratedLake, LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

type LakeFixture = (GeneratedLake, PipelineContext, Vec<(TableId, Table)>);

fn lake() -> &'static LakeFixture {
    static FIX: OnceLock<LakeFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 8,
            rows: (12, 24),
            cols: (2, 3),
            seed: 20260808,
            ..LakeGenConfig::default()
        });
        let ctx = PipelineContext::new(&gl.registry, &[], &PipelineConfig::default());
        let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        (gl, ctx, tables)
    })
}

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "td-store-crash-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path, ctx: &PipelineContext) -> (DurablePipeline, td_store::RestoreStats) {
    DurablePipeline::open(Store::open(dir.to_path_buf()).expect("open"), ctx.clone())
        .expect("restore must not fail on recoverable corruption")
}

fn flip_byte(path: &Path, offset_from_end: u64) {
    use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let len = f.metadata().unwrap().len();
    let pos = len.saturating_sub(offset_from_end);
    f.seek(SeekFrom::Start(pos)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(pos)).unwrap();
    f.write_all(&[b[0] ^ 0xff]).unwrap();
}

/// Tear the WAL mid-record: recovery truncates to the last valid record
/// and the restored state equals a fresh pipeline over the surviving
/// prefix, byte-for-byte.
#[test]
fn torn_wal_tail_recovers_prefix() {
    let (_, ctx, tables) = lake();
    let dir = scratch();

    let (mut dp, _) = open(&dir, ctx);
    for (id, t) in &tables[..5] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.sync().expect("sync");
    let wal_path = dir.join("pipeline.wal");
    let full_len = std::fs::metadata(&wal_path).unwrap().len();
    drop(dp);

    // Cut 7 bytes off the tail — the 5th record is torn mid-payload.
    let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
    f.set_len(full_len - 7).unwrap();
    drop(f);

    let (dp, stats) = open(&dir, ctx);
    assert!(stats.wal_bytes_truncated > 0, "tail must be reported");
    assert_eq!(stats.wal_records_replayed, 4, "only intact records replay");
    assert_eq!(dp.pipeline().len(), 4);

    // Byte-identical to a pipeline that only ever saw the prefix.
    let mut fresh = SegmentedPipeline::with_context(ctx.clone());
    for (id, t) in &tables[..4] {
        fresh.ingest_table(*id, t);
    }
    assert_eq!(
        format!("{:?}", dp.pipeline().search_keyword("dataset", 8)),
        format!("{:?}", fresh.search_keyword("dataset", 8)),
    );

    // The truncated log keeps accepting appends and survives another trip.
    let mut dp = dp;
    dp.ingest_table(tables[4].0, &tables[4].1).expect("ingest");
    drop(dp);
    let (dp, stats) = open(&dir, ctx);
    assert_eq!(stats.wal_bytes_truncated, 0, "second recovery is clean");
    assert_eq!(dp.pipeline().len(), 5);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Flip a byte in the newest snapshot's payload: restore rejects it on
/// checksum and falls back to the older snapshot without panicking.
#[test]
fn corrupt_snapshot_falls_back_to_older_one() {
    let (_, ctx, tables) = lake();
    let dir = scratch();

    let (mut dp, _) = open(&dir, ctx);
    for (id, t) in &tables[..4] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.checkpoint().expect("checkpoint 1");
    let at_cp1 = format!("{:?}", dp.pipeline().search_keyword("dataset", 8));
    for (id, t) in &tables[4..6] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.checkpoint().expect("checkpoint 2");
    drop(dp);

    // Corrupt the newest snapshot deep in its payload.
    flip_byte(&dir.join("snapshot-00000002.tds"), 64);

    let (dp, stats) = open(&dir, ctx);
    assert_eq!(stats.corrupt_snapshots_skipped, 1);
    assert_eq!(stats.snapshot_seq, Some(1), "older snapshot won");
    assert_eq!(dp.pipeline().len(), 4);
    assert_eq!(
        format!("{:?}", dp.pipeline().search_keyword("dataset", 8)),
        at_cp1,
        "fallback state is exactly checkpoint 1"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt the snapshot *header*: same clean fallback path as a payload
/// flip (the file never gets as far as section reads).
#[test]
fn corrupt_snapshot_header_falls_back() {
    let (_, ctx, tables) = lake();
    let dir = scratch();

    let (mut dp, _) = open(&dir, ctx);
    for (id, t) in &tables[..3] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.checkpoint().expect("checkpoint 1");
    for (id, t) in &tables[3..5] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.checkpoint().expect("checkpoint 2");
    drop(dp);

    let snap2 = dir.join("snapshot-00000002.tds");
    let len = std::fs::metadata(&snap2).unwrap().len();
    flip_byte(&snap2, len - 10); // byte 10: inside the header's fingerprint

    let (dp, stats) = open(&dir, ctx);
    assert_eq!(stats.corrupt_snapshots_skipped, 1);
    assert_eq!(stats.snapshot_seq, Some(1));
    assert_eq!(dp.pipeline().len(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every snapshot corrupt: restore still comes up (degraded) from
/// whatever the current WAL generation holds — never a panic.
#[test]
fn all_snapshots_corrupt_still_restores_from_wal() {
    let (_, ctx, tables) = lake();
    let dir = scratch();

    let (mut dp, _) = open(&dir, ctx);
    for (id, t) in &tables[..3] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.checkpoint().expect("checkpoint");
    // Two more tables logged after the checkpoint.
    for (id, t) in &tables[3..5] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    drop(dp);

    flip_byte(&dir.join("snapshot-00000001.tds"), 64);

    let (dp, stats) = open(&dir, ctx);
    assert_eq!(stats.corrupt_snapshots_skipped, 1);
    assert_eq!(stats.snapshot_seq, None);
    assert_eq!(stats.wal_records_replayed, 2, "current-generation records");
    assert_eq!(dp.pipeline().len(), 2, "degraded but alive");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Restoring under a different pipeline configuration is refused loudly
/// instead of mixing incompatible embedding spaces.
#[test]
fn context_mismatch_is_a_clean_error() {
    let (gl, ctx, tables) = lake();
    let dir = scratch();

    let (mut dp, _) = open(&dir, ctx);
    for (id, t) in &tables[..3] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.checkpoint().expect("checkpoint");
    drop(dp);

    let other_cfg = PipelineConfig {
        minhash_k: 64,
        ..PipelineConfig::default()
    };
    let other_ctx = PipelineContext::new(&gl.registry, &[], &other_cfg);
    let err = DurablePipeline::open(Store::open(dir.clone()).expect("open"), other_ctx)
        .err()
        .expect("mismatched context must not restore");
    assert!(matches!(err, StoreError::ContextMismatch { .. }), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty or truncated snapshot file (crash during the very first
/// write before rename — or a partial copy) is skipped like any other
/// corruption.
#[test]
fn truncated_snapshot_file_is_skipped() {
    let (_, ctx, tables) = lake();
    let dir = scratch();

    let (mut dp, _) = open(&dir, ctx);
    for (id, t) in &tables[..3] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.checkpoint().expect("checkpoint");
    drop(dp);

    // A second "snapshot" that is 20 bytes of garbage.
    std::fs::write(dir.join("snapshot-00000002.tds"), b"TDSNAP01 not really!").unwrap();

    let (dp, stats) = open(&dir, ctx);
    assert_eq!(stats.corrupt_snapshots_skipped, 1);
    assert_eq!(stats.snapshot_seq, Some(1));
    assert_eq!(dp.pipeline().len(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}
