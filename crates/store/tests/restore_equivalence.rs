//! The store's core invariant, extending the segmented pipeline's
//! "incremental == batch" proptest across process boundaries: any
//! mutation history — interleaved with checkpoints and simulated
//! restarts (drop every handle, restore from disk) at arbitrary points —
//! yields rankings **byte-identical** to a one-shot batch build over the
//! same live tables, for all eight search families.
//!
//! As in `crates/core/tests/segmented.rs`, every family's full response
//! (ids and scores) is rendered via `Debug` into one string; `f64`'s
//! `Debug` prints the shortest round-trip representation, so string
//! equality is bit equality of every score.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use td_core::segment::PipelineContext;
use td_core::{DiscoveryPipeline, PipelineConfig};
use td_store::{DurablePipeline, RestoreStats, Store};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

const K: usize = 8;

fn render(p: &DiscoveryPipeline, queries: &[(TableId, Table)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "keyword {:?}", p.search_keyword("dataset", K));
    for (qid, qt) in queries {
        let _ = writeln!(out, "== query {qid:?}");
        for (ci, c) in qt.columns.iter().enumerate() {
            let _ = writeln!(out, "joinable[{ci}] {:?}", p.search_joinable(c, K));
            let _ = writeln!(out, "fuzzy[{ci}] {:?}", p.search_fuzzy_joinable(c, 0.8, K));
        }
        let _ = writeln!(out, "tus {:?}", p.search_unionable(qt, K));
        let _ = writeln!(out, "starmie {:?}", p.search_unionable_semantic(qt, K));
        let _ = writeln!(out, "santos {:?}", p.search_unionable_relationship(qt, K));
        let _ = writeln!(out, "mate {:?}", p.search_multi_joinable(qt, &[0, 1], K));
        let key = qt.columns.iter().find(|c| !c.is_numeric());
        let num = qt.columns.iter().find(|c| c.is_numeric());
        if let (Some(key), Some(num)) = (key, num) {
            let _ = writeln!(out, "correlated {:?}", p.search_correlated(key, num, K));
        }
    }
    out
}

struct Fixture {
    tables: Vec<(TableId, Table)>,
    queries: Vec<(TableId, Table)>,
    ctx: PipelineContext,
    expected: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (12, 30),
            cols: (2, 4),
            seed: 20260806,
            ..LakeGenConfig::default()
        });
        let cfg = PipelineConfig::default();
        let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        let queries: Vec<(TableId, Table)> = tables[..3].to_vec();
        let batch = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg);
        let expected = render(&batch, &queries);
        let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
        Fixture {
            tables,
            queries,
            ctx,
            expected,
        }
    })
}

/// Fresh scratch directory per test case.
fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "td-store-equiv-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn reopen(dir: &Path, ctx: &PipelineContext) -> (DurablePipeline, RestoreStats) {
    DurablePipeline::open(Store::open(dir).expect("open store"), ctx.clone()).expect("restore")
}

/// Fixed-seed regression: checkpoint mid-history, restart, keep writing
/// (so the WAL replays on top of the snapshot), restart again, compare.
#[test]
fn checkpoint_restart_continue_matches_batch_build() {
    let f = fixture();
    let dir = scratch();

    let (mut dp, stats) = reopen(&dir, &f.ctx);
    assert!(stats.snapshot_seq.is_none(), "fresh dir has no snapshot");
    let half = f.tables.len() / 2;
    for (id, t) in &f.tables[..half] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    dp.seal().expect("seal");
    let cp = dp.checkpoint().expect("checkpoint");
    assert!(cp.snapshot_bytes > 0);
    assert_eq!(cp.wal_records_folded, half as u64 + 1);
    // Post-checkpoint writes land in the WAL only.
    dp.ingest_table(f.tables[half].0, &f.tables[half].1)
        .expect("ingest");
    drop(dp);

    // Restart #1: snapshot + one WAL record.
    let (mut dp, stats) = reopen(&dir, &f.ctx);
    assert_eq!(stats.snapshot_seq, Some(1));
    assert_eq!(stats.wal_records_replayed, 1);
    assert_eq!(stats.corrupt_snapshots_skipped, 0);
    for (id, t) in &f.tables[half + 1..] {
        dp.ingest_table(*id, t).expect("ingest");
    }
    // Exercise drop + re-ingest and compaction across the boundary too.
    dp.drop_table(f.tables[0].0).expect("drop");
    dp.ingest_table(f.tables[0].0, &f.tables[0].1)
        .expect("re-ingest");
    dp.compact().expect("compact");
    drop(dp);

    // Restart #2: everything after the checkpoint came from the WAL.
    let (dp, stats) = reopen(&dir, &f.ctx);
    assert!(stats.wal_records_replayed >= (f.tables.len() - half) as u64);
    let got = render(&dp.pipeline().snapshot(), &f.queries);
    assert_eq!(got, f.expected, "restored history diverged from batch");

    let _ = std::fs::remove_dir_all(&dir);
}

/// No checkpoint at all: the whole lake restores from the WAL alone.
#[test]
fn wal_only_restore_matches_batch_build() {
    let f = fixture();
    let dir = scratch();

    let (mut dp, _) = reopen(&dir, &f.ctx);
    for (id, t) in &f.tables {
        dp.ingest_table(*id, t).expect("ingest");
    }
    drop(dp);

    let (dp, stats) = reopen(&dir, &f.ctx);
    assert!(stats.snapshot_seq.is_none());
    assert_eq!(stats.wal_records_replayed, f.tables.len() as u64);
    let got = render(&dp.pipeline().snapshot(), &f.queries);
    assert_eq!(got, f.expected);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A pipeline with sealed segments, a dirty delta, and outstanding
/// tombstones checkpoints and restores to identical rankings — i.e. the
/// snapshot faithfully captures all four state pieces, not just a
/// compacted view.
#[test]
fn snapshot_preserves_segment_structure_and_tombstones() {
    let f = fixture();
    let dir = scratch();

    let (mut dp, _) = reopen(&dir, &f.ctx);
    for (step, (id, t)) in f.tables.iter().enumerate() {
        dp.ingest_table(*id, t).expect("ingest");
        if step % 4 == 3 {
            dp.seal().expect("seal");
        }
    }
    // Tombstone a sealed table, leave the delta dirty.
    let victim = f.tables[f.tables.len() - 1].0;
    dp.drop_table(victim).expect("drop");
    assert!(dp.pipeline().num_tombstones() > 0);
    let live_before = dp.pipeline().table_ids();
    let before = render(&dp.pipeline().snapshot(), &f.queries);
    dp.checkpoint().expect("checkpoint");
    let segs_before = dp.pipeline().num_segments();
    drop(dp);

    let (dp, stats) = reopen(&dir, &f.ctx);
    assert_eq!(stats.wal_records_replayed, 0, "checkpoint emptied the log");
    assert_eq!(dp.pipeline().num_segments(), segs_before);
    assert_eq!(dp.pipeline().table_ids(), live_before);
    assert!(dp.pipeline().num_tombstones() > 0, "tombstones persisted");
    let after = render(&dp.pipeline().snapshot(), &f.queries);
    assert_eq!(after, before);

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random ingest order and segment boundaries, with checkpoints and
    /// full restarts sprinkled at random steps (plus an optional
    /// drop/re-ingest and compaction): the survivor of any such history
    /// renders byte-identically to the batch build.
    #[test]
    fn random_history_with_restarts_matches_batch_build(
        seed in any::<u64>(),
        seal_mask in any::<u16>(),
        checkpoint_mask in any::<u16>(),
        restart_mask in any::<u16>(),
        // Packed (compact step, drop step); 12 acts as "never" for both.
        event_sel in 0usize..(13 * 12),
    ) {
        let compact_sel = event_sel % 13;
        let drop_sel = 1 + event_sel / 13;
        let compact_at = (compact_sel < 12).then_some(compact_sel);
        let drop_at = (drop_sel < 12).then_some(drop_sel);
        let f = fixture();
        let dir = scratch();

        let mut order: Vec<usize> = (0..f.tables.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);

        let (mut dp, _) = reopen(&dir, &f.ctx);
        for (step, &i) in order.iter().enumerate() {
            dp.ingest_table(f.tables[i].0, &f.tables[i].1).expect("ingest");
            if seal_mask >> (step % 16) & 1 == 1 {
                dp.seal().expect("seal");
            }
            if drop_at == Some(step) {
                let victim = order[step - 1];
                dp.drop_table(f.tables[victim].0).expect("drop");
                dp.ingest_table(f.tables[victim].0, &f.tables[victim].1).expect("re-ingest");
            }
            if compact_at == Some(step) {
                dp.compact().expect("compact");
            }
            if checkpoint_mask >> (step % 16) & 1 == 1 {
                dp.checkpoint().expect("checkpoint");
            }
            if restart_mask >> (step % 16) & 1 == 1 {
                drop(dp);
                dp = reopen(&dir, &f.ctx).0;
            }
        }

        // Always end across a process boundary.
        drop(dp);
        let (dp, _) = reopen(&dir, &f.ctx);
        let got = render(&dp.pipeline().snapshot(), &f.queries);
        prop_assert_eq!(&got, &f.expected);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
