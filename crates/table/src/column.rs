//! Typed, named columns.

use crate::value::{PrimitiveType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A named column of values.
///
/// Columns are the unit of table discovery: joinability and unionability are
/// defined column-to-column and only then aggregated to tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Header name. Data-lake headers are unreliable; may be empty.
    pub name: String,
    /// Cell values, one per row.
    pub values: Vec<Value>,
}

impl Column {
    /// Create a column from a name and values.
    #[must_use]
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        Column {
            name: name.into(),
            values,
        }
    }

    /// Create a column by parsing raw string cells.
    #[must_use]
    pub fn from_strings<S: AsRef<str>>(name: impl Into<String>, cells: &[S]) -> Self {
        Column {
            name: name.into(),
            values: cells.iter().map(|c| Value::parse(c.as_ref())).collect(),
        }
    }

    /// Number of rows (including nulls).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The unified primitive type of the column's non-null values.
    #[must_use]
    pub fn primitive_type(&self) -> PrimitiveType {
        self.values
            .iter()
            .map(Value::primitive_type)
            .fold(PrimitiveType::Null, PrimitiveType::unify)
    }

    /// Count of null cells.
    #[must_use]
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_null()).count()
    }

    /// The set of distinct non-null values.
    #[must_use]
    pub fn distinct_values(&self) -> HashSet<&Value> {
        self.values.iter().filter(|v| !v.is_null()).collect()
    }

    /// Number of distinct non-null values.
    #[must_use]
    pub fn num_distinct(&self) -> usize {
        self.distinct_values().len()
    }

    /// Canonical join tokens (lower-cased text renderings) of the distinct
    /// non-null values. This is the set that joinable-table search operates
    /// on.
    #[must_use]
    pub fn token_set(&self) -> HashSet<String> {
        self.values.iter().filter_map(Value::join_token).collect()
    }

    /// Non-null numeric values, in row order, paired with their row index.
    #[must_use]
    pub fn numeric_values(&self) -> Vec<(usize, f64)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_f64().map(|f| (i, f)))
            .collect()
    }

    /// True if the column is predominantly numeric (>= 80% of non-null
    /// values are `Int`/`Float`).
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        let non_null = self.len() - self.null_count();
        if non_null == 0 {
            return false;
        }
        let numeric = self
            .values
            .iter()
            .filter(|v| v.primitive_type().is_numeric())
            .count();
        numeric * 5 >= non_null * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Column {
        Column::from_strings("c", vals)
    }

    #[test]
    fn from_strings_parses_cells() {
        let c = col(&["1", "2.5", "x", ""]);
        assert_eq!(c.values[0], Value::Int(1));
        assert_eq!(c.values[1], Value::Float(2.5));
        assert_eq!(c.values[2], Value::Text("x".into()));
        assert!(c.values[3].is_null());
    }

    #[test]
    fn primitive_type_unifies_over_cells() {
        assert_eq!(col(&["1", "2"]).primitive_type(), PrimitiveType::Int);
        assert_eq!(col(&["1", "2.5"]).primitive_type(), PrimitiveType::Float);
        assert_eq!(col(&["1", "x"]).primitive_type(), PrimitiveType::Text);
        assert_eq!(col(&["", ""]).primitive_type(), PrimitiveType::Null);
    }

    #[test]
    fn distinct_ignores_nulls_and_duplicates() {
        let c = col(&["a", "a", "b", ""]);
        assert_eq!(c.num_distinct(), 2);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn token_set_lowercases() {
        let c = Column::new(
            "c",
            vec![
                Value::Text("Boston".into()),
                Value::Text("BOSTON".into()),
                Value::Int(3),
            ],
        );
        let t = c.token_set();
        assert_eq!(t.len(), 2);
        assert!(t.contains("boston"));
        assert!(t.contains("3"));
    }

    #[test]
    fn numeric_detection_uses_majority() {
        assert!(col(&["1", "2", "3", "4", "x"]).is_numeric());
        assert!(!col(&["1", "x", "y", "z"]).is_numeric());
        assert!(!col(&["", ""]).is_numeric());
    }

    #[test]
    fn numeric_values_keep_row_indices() {
        let c = col(&["10", "x", "3.5"]);
        assert_eq!(c.numeric_values(), vec![(0, 10.0), (2, 3.5)]);
    }
}
