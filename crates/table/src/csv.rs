//! A small, dependency-free CSV reader/writer (RFC 4180 subset).
//!
//! Data lakes overwhelmingly share tables as CSV, so ingestion needs a
//! parser; we implement the subset that matters — quoted fields, embedded
//! separators/newlines, doubled-quote escapes, CRLF — rather than pulling in
//! a crate outside the approved dependency set.

use crate::column::Column;
use crate::table::{Table, TableError};
use std::fmt;

/// CSV parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// A record had a different field count than the header.
    RaggedRecord {
        /// 1-based record number (header = 1).
        record: usize,
        /// Expected field count.
        expected: usize,
        /// Observed field count.
        actual: usize,
    },
    /// The input contained no header record.
    Empty,
    /// Column lengths disagreed when building the table (internal).
    Table(TableError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::RaggedRecord {
                record,
                expected,
                actual,
            } => write!(
                f,
                "record {record} has {actual} fields, expected {expected}"
            ),
            CsvError::Empty => f.write_str("empty CSV input"),
            CsvError::Table(e) => write!(f, "table construction failed: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Split CSV text into records of raw string fields.
///
/// Handles `"`-quoted fields with `""` escapes, embedded commas and
/// newlines, and both `\n` and `\r\n` terminators. A trailing newline does
/// not produce an empty record.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_start_line = 1usize;
    // Track whether we've consumed anything on the current record so a
    // trailing newline doesn't emit a phantom empty record.
    let mut record_dirty = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                quote_start_line = line;
                record_dirty = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                record_dirty = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    // handled by the \n branch
                } else {
                    field.push('\r');
                    record_dirty = true;
                }
            }
            '\n' => {
                line += 1;
                if record_dirty || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    record_dirty = false;
                }
            }
            other => {
                field.push(other);
                record_dirty = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_start_line,
        });
    }
    if record_dirty || !field.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Parse CSV text (first record = header) into a [`Table`].
///
/// Cell values are type-inferred via [`crate::Value::parse`]. Records with a
/// field count different from the header are rejected.
pub fn read_table(name: impl Into<String>, input: &str) -> Result<Table, CsvError> {
    let records = parse_records(input)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or(CsvError::Empty)?;
    let ncols = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); ncols];
    for (i, rec) in it.enumerate() {
        if rec.len() != ncols {
            return Err(CsvError::RaggedRecord {
                record: i + 2,
                expected: ncols,
                actual: rec.len(),
            });
        }
        for (c, cell) in rec.into_iter().enumerate() {
            cells[c].push(cell);
        }
    }
    let columns: Vec<Column> = header
        .into_iter()
        .zip(cells)
        .map(|(name, col_cells)| Column::from_strings(name, &col_cells))
        .collect();
    Table::new(name, columns).map_err(CsvError::Table)
}

/// Quote a field if it contains a separator, quote, or newline.
fn write_field(out: &mut String, field: &str) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialize a [`Table`] to CSV text (header + rows, `\n` line endings).
#[must_use]
pub fn write_table(table: &Table) -> String {
    let mut out = String::new();
    // A single-column record whose field renders empty (empty header name,
    // null value) would be an empty line, which readers (including ours)
    // treat as no record at all; quote it.
    let single = table.num_cols() == 1;
    if single && table.columns[0].name.is_empty() {
        out.push_str("\"\"\n");
    } else {
        for (i, c) in table.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, &c.name);
        }
        out.push('\n');
    }
    for r in 0..table.num_rows() {
        if single {
            let text = table.columns[0].values[r].to_string();
            if text.is_empty() {
                out.push_str("\"\"\n");
                continue;
            }
        }
        for (i, c) in table.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, &c.values[r].to_string());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn parses_simple_records() {
        let r = parse_records("a,b\n1,2\n").unwrap();
        assert_eq!(r, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn handles_crlf() {
        let r = parse_records("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec!["1", "2"]);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let r = parse_records("a,b\n\"x,y\",\"line1\nline2\"\n").unwrap();
        assert_eq!(r[1][0], "x,y");
        assert_eq!(r[1][1], "line1\nline2");
    }

    #[test]
    fn doubled_quotes_escape() {
        let r = parse_records("a\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(r[1][0], "say \"hi\"");
    }

    #[test]
    fn unterminated_quote_is_error() {
        let e = parse_records("a\n\"oops\n").unwrap_err();
        assert!(matches!(e, CsvError::UnterminatedQuote { line: 2 }));
    }

    #[test]
    fn trailing_newline_no_phantom_record() {
        assert_eq!(parse_records("a,b\n1,2").unwrap().len(), 2);
        assert_eq!(parse_records("a,b\n1,2\n").unwrap().len(), 2);
    }

    #[test]
    fn empty_trailing_field_is_kept() {
        let r = parse_records("a,b\n1,\n").unwrap();
        assert_eq!(r[1], vec!["1", ""]);
    }

    #[test]
    fn read_table_infers_types() {
        let t = read_table("t", "id,city\n1,boston\n2,seattle\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column("id").unwrap().values[0], Value::Int(1));
        assert_eq!(
            t.column("city").unwrap().values[1],
            Value::Text("seattle".into())
        );
    }

    #[test]
    fn read_table_rejects_ragged() {
        let e = read_table("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(
            e,
            CsvError::RaggedRecord {
                record: 2,
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn read_table_rejects_empty() {
        assert_eq!(read_table("t", "").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn single_column_null_rows_survive_roundtrip() {
        let t = Table::new("t", vec![Column::from_strings("only", &["a", "", "b"])]).unwrap();
        let t2 = read_table("t", &write_table(&t)).unwrap();
        assert_eq!(t2.num_rows(), 3);
        assert!(t2.columns[0].values[1].is_null());
    }

    #[test]
    fn single_column_empty_header_survives_roundtrip() {
        let t = Table::new(
            "t",
            vec![Column::from_strings("", &["QHF-87JV", "OKH-11J"])],
        )
        .unwrap();
        let t2 = read_table("t", &write_table(&t)).unwrap();
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.columns[0].name, "");
        assert_eq!(t2.columns[0].values, t.columns[0].values);
    }

    #[test]
    fn roundtrip_write_read() {
        let t = read_table("t", "name,qty\n\"a,b\",3\n\"with \"\"q\"\"\",4\n").unwrap();
        let csv = write_table(&t);
        let t2 = read_table("t", &csv).unwrap();
        assert_eq!(t.columns, t2.columns);
    }
}
