//! Join-search benchmark generators (experiments E02, E03, E07, E08, E09).
//!
//! Each builder plants a query table and a corpus with *known* overlap
//! statistics, then records exact ground truth (containment, Jaccard,
//! n-ary containment, correlation) so search results can be scored.

use super::domains::{DomainId, DomainRegistry};

use crate::column::Column;
use crate::lake::{DataLake, TableId};
use crate::table::Table;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Ground truth for one corpus table of a join benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinTruth {
    /// Corpus table.
    pub table: TableId,
    /// Index of the joinable column in that table.
    pub column: usize,
    /// Exact set containment `|Q ∩ X| / |Q|` of the query key in the column.
    pub containment: f64,
    /// Exact Jaccard `|Q ∩ X| / |Q ∪ X|`.
    pub jaccard: f64,
    /// Exact overlap `|Q ∩ X|`.
    pub overlap: usize,
}

/// Configuration for [`JoinBenchmark::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinBenchConfig {
    /// Distinct values in the query key column.
    pub query_size: usize,
    /// Number of corpus tables that share values with the query.
    pub num_relevant: usize,
    /// Number of corpus tables from unrelated domains (pure noise).
    pub num_noise: usize,
    /// Corpus column cardinalities are log-uniform in this range — the
    /// skew that makes Jaccard biased and motivates containment search.
    pub card_range: (usize, usize),
    /// Containment of relevant tables is uniform in this range.
    pub containment_range: (f64, f64),
    /// Extra non-key attribute columns per corpus table.
    pub extra_cols: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JoinBenchConfig {
    fn default() -> Self {
        JoinBenchConfig {
            query_size: 500,
            num_relevant: 60,
            num_noise: 40,
            card_range: (50, 20_000),
            containment_range: (0.05, 1.0),
            extra_cols: 2,
            seed: 11,
        }
    }
}

/// A joinable-table-search benchmark: query table, corpus lake, exact truth.
#[derive(Debug, Clone)]
pub struct JoinBenchmark {
    /// The corpus.
    pub lake: DataLake,
    /// Registry used to render values.
    pub registry: DomainRegistry,
    /// The query table (not part of the lake).
    pub query: Table,
    /// Index of the key column in `query`.
    pub query_key: usize,
    /// Ground truth for every relevant corpus table.
    pub truth: Vec<JoinTruth>,
}

impl JoinBenchmark {
    /// Generate a benchmark per `cfg` over the standard registry's `city`
    /// domain (keys) with `person`/`company` noise.
    #[must_use]
    pub fn generate(cfg: &JoinBenchConfig) -> Self {
        let registry = DomainRegistry::standard();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let key_dom = registry.must_id("city");
        let noise_doms = [
            registry.must_id("person"),
            registry.must_id("company"),
            registry.must_id("product"),
        ];
        let q = cfg.query_size as u64;

        // Query key = domain indices [0, q); non-query pool starts at q.
        let query_key_col = Column::new("city", registry.vocab(key_dom, q));
        let pop_dom = registry.must_id("population");
        let query_pop = Column::new(
            "population",
            (0..q).map(|i| registry.value(pop_dom, i)).collect(),
        );
        let query = super::must_table("query", vec![query_key_col, query_pop]);

        let mut lake = DataLake::new();
        let mut truth = Vec::with_capacity(cfg.num_relevant);
        let mut fresh = q; // next never-used vocabulary index

        for t in 0..cfg.num_relevant {
            let c: f64 = rng.gen_range(cfg.containment_range.0..=cfg.containment_range.1);
            let lo = cfg.card_range.0.max(1) as f64;
            let hi = cfg.card_range.1.max(cfg.card_range.0 + 1) as f64;
            let card = (lo * (hi / lo).powf(rng.gen::<f64>())).round() as usize;
            let overlap = ((c * cfg.query_size as f64).round() as usize)
                .min(cfg.query_size)
                .min(card);
            // `overlap` query values + (card - overlap) fresh values.
            let mut idx: Vec<u64> = {
                let mut from_q: Vec<u64> = (0..q).collect();
                from_q.shuffle(&mut rng);
                from_q.truncate(overlap);
                from_q
            };
            for _ in overlap..card {
                idx.push(fresh);
                fresh += 1;
            }
            idx.shuffle(&mut rng);
            let values: Vec<Value> = idx.iter().map(|&i| registry.value(key_dom, i)).collect();
            let n = values.len();
            let mut cols = vec![Column::new("city", values)];
            for e in 0..cfg.extra_cols {
                let d = noise_doms[(t + e) % noise_doms.len()];
                cols.push(Column::new(
                    registry.domain(d).name.clone(),
                    (0..n)
                        .map(|i| registry.value(d, (t * 1000 + i) as u64))
                        .collect(),
                ));
            }
            let table = super::must_table(format!("relevant_{t:04}.csv"), cols);
            let id = lake.add(table);
            let union = cfg.query_size + card - overlap;
            truth.push(JoinTruth {
                table: id,
                column: 0,
                containment: overlap as f64 / cfg.query_size as f64,
                jaccard: overlap as f64 / union as f64,
                overlap,
            });
        }

        for t in 0..cfg.num_noise {
            let d = noise_doms[t % noise_doms.len()];
            let n = rng.gen_range(cfg.card_range.0..=cfg.card_range.0 * 4 + 1);
            let col = Column::new(
                registry.domain(d).name.clone(),
                (0..n as u64)
                    .map(|i| registry.value(d, (t as u64) * 10_000 + i))
                    .collect(),
            );
            let table = super::must_table(format!("noise_{t:04}.csv"), vec![col]);
            lake.add(table);
        }

        JoinBenchmark {
            lake,
            registry,
            query,
            query_key: 0,
            truth,
        }
    }

    /// Truth sorted by descending containment.
    #[must_use]
    pub fn by_containment(&self) -> Vec<JoinTruth> {
        let mut v = self.truth.clone();
        v.sort_by(|a, b| b.containment.total_cmp(&a.containment));
        v
    }

    /// Truth sorted by descending overlap.
    #[must_use]
    pub fn by_overlap(&self) -> Vec<JoinTruth> {
        let mut v = self.truth.clone();
        v.sort_by_key(|t| std::cmp::Reverse(t.overlap));
        v
    }
}

/// Ground truth for a multi-attribute (composite-key) join benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiJoinTruth {
    /// Corpus table.
    pub table: TableId,
    /// Fraction of query *rows* whose full composite key appears in the
    /// corpus table.
    pub row_containment: f64,
    /// True if the table only matches on individual attributes, never on
    /// the full composite key (the false positives MATE's super-key kills).
    pub single_attr_only: bool,
}

/// Configuration for [`MultiJoinBenchmark::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiJoinConfig {
    /// Rows in the query table.
    pub query_rows: usize,
    /// Number of key attributes (n-ary key), >= 2.
    pub key_arity: usize,
    /// Corpus tables sharing full composite keys.
    pub num_relevant: usize,
    /// Corpus tables sharing attribute values but never full key tuples.
    pub num_single_attr: usize,
    /// Row containment range for relevant tables.
    pub containment_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiJoinConfig {
    fn default() -> Self {
        MultiJoinConfig {
            query_rows: 300,
            key_arity: 2,
            num_relevant: 20,
            num_single_attr: 20,
            containment_range: (0.2, 0.9),
            seed: 13,
        }
    }
}

/// Multi-attribute join benchmark (MATE, experiment E08).
#[derive(Debug, Clone)]
pub struct MultiJoinBenchmark {
    /// The corpus.
    pub lake: DataLake,
    /// Value registry.
    pub registry: DomainRegistry,
    /// Query table; key columns are `0..key_arity`.
    pub query: Table,
    /// Number of leading key columns.
    pub key_arity: usize,
    /// Ground truth per corpus table.
    pub truth: Vec<MultiJoinTruth>,
}

impl MultiJoinBenchmark {
    /// Generate per `cfg`. Query rows pair person `i` with city `i` (and
    /// further attributes `i`); single-attribute decoys pair person `i`
    /// with city `perm(i)`, so every attribute value matches but no tuple
    /// does.
    #[must_use]
    pub fn generate(cfg: &MultiJoinConfig) -> Self {
        assert!(cfg.key_arity >= 2, "composite key needs arity >= 2");
        let registry = DomainRegistry::standard();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let key_doms: Vec<DomainId> = ["person", "city", "company", "product"]
            .iter()
            .take(cfg.key_arity)
            .map(|n| registry.must_id(n))
            .collect();
        let n = cfg.query_rows as u64;

        let mk_cols = |indices: &dyn Fn(usize, u64) -> u64, rows: u64| -> Vec<Column> {
            key_doms
                .iter()
                .enumerate()
                .map(|(k, &d)| {
                    Column::new(
                        registry.domain(d).name.clone(),
                        (0..rows)
                            .map(|i| registry.value(d, indices(k, i)))
                            .collect(),
                    )
                })
                .collect()
        };

        // Query: aligned tuples (person i, city i, ...).
        let mut qcols = mk_cols(&|_, i| i, n);
        let sal = registry.must_id("salary");
        qcols.push(Column::new(
            "salary",
            (0..n).map(|i| registry.value(sal, i)).collect(),
        ));
        let query = super::must_table("query", qcols);

        let mut lake = DataLake::new();
        let mut truth = Vec::new();

        for t in 0..cfg.num_relevant {
            let c: f64 = rng.gen_range(cfg.containment_range.0..=cfg.containment_range.1);
            let hit = ((c * n as f64).round() as u64).min(n);
            // Rows [0, hit) aligned with query tuples; remainder uses fresh
            // row ids far outside the query range (still aligned tuples).
            let base = 1_000_000 + (t as u64) * 100_000;
            let rows = n; // same size for simplicity
            let cols = mk_cols(&move |_, i| if i < hit { i } else { base + i }, rows);
            let id = lake.add(super::must_table(format!("multikey_{t:04}.csv"), cols));
            truth.push(MultiJoinTruth {
                table: id,
                row_containment: hit as f64 / n as f64,
                single_attr_only: false,
            });
        }

        for t in 0..cfg.num_single_attr {
            // Derangement-style shift per attribute: attribute k pairs
            // value i with value (i + (k+1) * shift) mod n — individual
            // values all come from the query's value sets, but no composite
            // tuple matches.
            let shift = 1 + (t as u64 % (n - 1).max(1));
            let cols = mk_cols(&move |k, i| (i + (k as u64) * shift) % n, n);
            let id = lake.add(super::must_table(format!("singleattr_{t:04}.csv"), cols));
            truth.push(MultiJoinTruth {
                table: id,
                row_containment: 0.0,
                single_attr_only: true,
            });
        }

        MultiJoinBenchmark {
            lake,
            registry,
            query,
            key_arity: cfg.key_arity,
            truth,
        }
    }
}

/// Ground truth for the correlated-search benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationTruth {
    /// Corpus table.
    pub table: TableId,
    /// Index of the numeric column.
    pub numeric_column: usize,
    /// Planted Pearson correlation (on joined rows) with the query numeric
    /// column. Approximate: noise makes the realized value differ slightly.
    pub rho: f64,
    /// Exact realized Pearson correlation on the joined rows.
    pub realized_rho: f64,
    /// Fraction of query keys present in the table (join coverage).
    pub key_containment: f64,
}

/// Configuration for [`CorrelationBenchmark::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationConfig {
    /// Rows in the query table.
    pub query_rows: usize,
    /// Planted correlations for the corpus tables.
    pub rhos: Vec<f64>,
    /// Key containment of every corpus table.
    pub key_containment: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            query_rows: 400,
            rhos: vec![0.95, 0.8, 0.6, 0.4, 0.2, 0.0, -0.2, -0.5, -0.8, -0.95],
            key_containment: 0.9,
            seed: 17,
        }
    }
}

/// Correlated-dataset-search benchmark (QCR sketches, experiment E09).
///
/// The query has a key column and a numeric column `x`; each corpus table
/// has the same key (at configured containment) and a numeric column `y`
/// with a planted correlation to `x` over the join.
#[derive(Debug, Clone)]
pub struct CorrelationBenchmark {
    /// The corpus.
    pub lake: DataLake,
    /// Value registry.
    pub registry: DomainRegistry,
    /// Query table: key column 0, numeric column 1.
    pub query: Table,
    /// Ground truth per corpus table.
    pub truth: Vec<CorrelationTruth>,
}

/// Exact Pearson correlation of two equal-length slices.
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

impl CorrelationBenchmark {
    /// Generate per `cfg`.
    #[must_use]
    pub fn generate(cfg: &CorrelationConfig) -> Self {
        let registry = DomainRegistry::standard();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let key_dom = registry.must_id("city");
        let n = cfg.query_rows;

        // Query x values: standard normal-ish via sum of uniforms.
        let x: Vec<f64> = (0..n)
            .map(|_| {
                let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
                s - 6.0
            })
            .collect();
        let query = super::must_table(
            "query",
            vec![
                Column::new("city", registry.vocab(key_dom, n as u64)),
                Column::new("x", x.iter().map(|&v| Value::Float(v)).collect()),
            ],
        );

        let mut lake = DataLake::new();
        let mut truth = Vec::with_capacity(cfg.rhos.len());
        let keep = ((cfg.key_containment * n as f64).round() as usize).min(n);

        for (t, &rho) in cfg.rhos.iter().enumerate() {
            // y = rho * x + sqrt(1 - rho^2) * noise, on the joined keys.
            let mut keys = Vec::with_capacity(keep);
            let mut xs = Vec::with_capacity(keep);
            let mut ys = Vec::with_capacity(keep);
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            for &i in order.iter().take(keep) {
                let noise: f64 = {
                    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
                    s - 6.0
                };
                let y = rho * x[i] + (1.0 - rho * rho).max(0.0).sqrt() * noise;
                keys.push(registry.value(key_dom, i as u64));
                xs.push(x[i]);
                ys.push(y);
            }
            let realized = pearson(&xs, &ys);
            let id = lake.add(super::must_table(
                format!("corr_{t:02}.csv"),
                vec![
                    Column::new("city", keys),
                    Column::new("y", ys.iter().map(|&v| Value::Float(v)).collect()),
                ],
            ));
            truth.push(CorrelationTruth {
                table: id,
                numeric_column: 1,
                rho,
                realized_rho: realized,
                key_containment: keep as f64 / n as f64,
            });
        }

        CorrelationBenchmark {
            lake,
            registry,
            query,
            truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn token_set(c: &Column) -> HashSet<String> {
        c.token_set()
    }

    #[test]
    fn join_truth_matches_measured_overlap() {
        let b = JoinBenchmark::generate(&JoinBenchConfig {
            query_size: 200,
            num_relevant: 15,
            num_noise: 5,
            ..JoinBenchConfig::default()
        });
        let qset = token_set(&b.query.columns[b.query_key]);
        assert_eq!(qset.len(), 200);
        for t in &b.truth {
            let col = &b.lake.table(t.table).columns[t.column];
            let cset = token_set(col);
            let overlap = qset.intersection(&cset).count();
            assert_eq!(overlap, t.overlap, "table {}", t.table);
            let cont = overlap as f64 / qset.len() as f64;
            assert!((cont - t.containment).abs() < 1e-9);
            let jac = overlap as f64 / qset.union(&cset).count() as f64;
            assert!((jac - t.jaccard).abs() < 1e-9);
        }
    }

    #[test]
    fn join_noise_tables_have_zero_overlap() {
        let b = JoinBenchmark::generate(&JoinBenchConfig {
            query_size: 100,
            num_relevant: 5,
            num_noise: 10,
            ..JoinBenchConfig::default()
        });
        let qset = token_set(&b.query.columns[0]);
        let relevant: HashSet<TableId> = b.truth.iter().map(|t| t.table).collect();
        for (id, table) in b.lake.iter() {
            if relevant.contains(&id) {
                continue;
            }
            for c in &table.columns {
                assert_eq!(qset.intersection(&token_set(c)).count(), 0);
            }
        }
    }

    #[test]
    fn join_cardinalities_are_skewed() {
        let b = JoinBenchmark::generate(&JoinBenchConfig::default());
        let cards: Vec<usize> = b
            .truth
            .iter()
            .map(|t| b.lake.table(t.table).columns[t.column].num_distinct())
            .collect();
        let min = *cards.iter().min().unwrap();
        let max = *cards.iter().max().unwrap();
        assert!(max > min * 20, "not skewed: {min}..{max}");
    }

    #[test]
    fn multi_join_single_attr_decoys_never_match_tuples() {
        let b = MultiJoinBenchmark::generate(&MultiJoinConfig {
            query_rows: 50,
            ..MultiJoinConfig::default()
        });
        // Build the query's composite-key set.
        let qkeys: HashSet<Vec<String>> = (0..b.query.num_rows())
            .map(|r| {
                (0..b.key_arity)
                    .map(|k| b.query.columns[k].values[r].to_string())
                    .collect()
            })
            .collect();
        for t in &b.truth {
            let table = b.lake.table(t.table);
            let hits = (0..table.num_rows())
                .filter(|&r| {
                    let key: Vec<String> = (0..b.key_arity)
                        .map(|k| table.columns[k].values[r].to_string())
                        .collect();
                    qkeys.contains(&key)
                })
                .count();
            let measured = hits as f64 / b.query.num_rows() as f64;
            if t.single_attr_only {
                assert_eq!(hits, 0, "decoy {} matched tuples", t.table);
            } else {
                assert!((measured - t.row_containment).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_join_decoys_share_single_attribute_values() {
        let b = MultiJoinBenchmark::generate(&MultiJoinConfig {
            query_rows: 50,
            ..MultiJoinConfig::default()
        });
        let q0 = token_set(&b.query.columns[0]);
        let decoy = b.truth.iter().find(|t| t.single_attr_only).unwrap();
        let d0 = token_set(&b.lake.table(decoy.table).columns[0]);
        assert_eq!(q0.intersection(&d0).count(), q0.len());
    }

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &x) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn correlation_truth_realized_close_to_planted() {
        let b = CorrelationBenchmark::generate(&CorrelationConfig::default());
        for t in &b.truth {
            assert!(
                (t.rho - t.realized_rho).abs() < 0.15,
                "rho {} realized {}",
                t.rho,
                t.realized_rho
            );
        }
    }

    #[test]
    fn correlation_tables_join_on_key() {
        let b = CorrelationBenchmark::generate(&CorrelationConfig {
            query_rows: 100,
            key_containment: 0.5,
            ..CorrelationConfig::default()
        });
        let qset = token_set(&b.query.columns[0]);
        for t in &b.truth {
            let kset = token_set(&b.lake.table(t.table).columns[0]);
            let cont = qset.intersection(&kset).count() as f64 / qset.len() as f64;
            assert!((cont - t.key_containment).abs() < 0.02);
        }
    }
}
