//! Union-search benchmark generator (experiments E04, E05, E06, E18).
//!
//! Tables are instantiated from *patterns*: a key domain plus attribute
//! domains, each attribute tied to the key through an explicit *relation
//! map* (`attr_index = f(rel_id, key_index)`). This makes "same columns,
//! same relationships" (truly unionable), "same columns, different
//! relationships" (the false positives SANTOS targets), and "same
//! spellings, different semantics" (the homograph decoys Starmie's
//! contextual encoders target) all constructible with exact ground truth.

use super::domains::{DomainId, DomainRegistry};
use super::words::mix2;
use crate::column::Column;
use crate::lake::{DataLake, TableId};
use crate::table::{Table, TableMeta};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Vocabulary cap used by relation maps for attribute domains.
pub const ATTR_CAP: u64 = 2_000;

/// A binary relation between a key domain and an attribute domain.
///
/// The relation is the *function* `key index -> attribute index`; two
/// tables expressing the same `rel_id` pair the same values together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationSpec {
    /// Key (subject) domain.
    pub key_dom: DomainId,
    /// Attribute (object) domain.
    pub attr_dom: DomainId,
    /// Which mapping function relates them.
    pub rel_id: u32,
}

impl RelationSpec {
    /// The attribute index paired with `key_index` under this relation.
    #[must_use]
    pub fn attr_index(&self, key_index: u64) -> u64 {
        mix2(
            0x5EA1_0000_0000_0000
                ^ ((self.rel_id as u64) << 32)
                ^ ((self.key_dom.0 as u64) << 16)
                ^ self.attr_dom.0 as u64,
            key_index,
        ) % ATTR_CAP
    }
}

/// Why a candidate table was generated; drives per-method analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CandidateKind {
    /// Same domains, same relations: fully unionable.
    Positive,
    /// Shares only a subset of the query's attribute domains.
    Partial,
    /// Same domains but at least one attribute under a different relation.
    RelationDecoy,
    /// Key values spelled identically (homographs) but from a different
    /// domain, with context columns from that other domain's world.
    HomographDecoy,
    /// Unrelated table.
    Noise,
}

/// Ground-truth relevance of one candidate for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnionTruth {
    /// Index into [`UnionBenchmark::queries`].
    pub query: usize,
    /// Candidate table.
    pub table: TableId,
    /// Relevance grade: 2 fully unionable, 1 partially, 0 not.
    pub grade: u8,
    /// Generation provenance.
    pub kind: CandidateKind,
}

/// Configuration for [`UnionBenchmark::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnionBenchConfig {
    /// Number of query tables (each gets its own candidate cluster).
    pub num_queries: usize,
    /// Attribute columns per table (plus one key column).
    pub attrs_per_table: usize,
    /// Fully unionable candidates per query.
    pub positives: usize,
    /// Partially unionable candidates per query.
    pub partials: usize,
    /// Relation decoys per query.
    pub relation_decoys: usize,
    /// Homograph decoys per query.
    pub homograph_decoys: usize,
    /// Unrelated noise tables in the lake.
    pub noise: usize,
    /// Rows per table.
    pub rows: usize,
    /// Size of the key-index slice each table draws from.
    pub key_slice: u64,
    /// Fraction of the query's key slice each positive overlaps.
    pub key_overlap: f64,
    /// Probability a candidate header is renamed away from the domain name.
    pub header_noise: f64,
    /// Number of leading key indices planted as homographs.
    pub homograph_range: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UnionBenchConfig {
    fn default() -> Self {
        UnionBenchConfig {
            num_queries: 5,
            attrs_per_table: 3,
            positives: 8,
            partials: 4,
            relation_decoys: 4,
            homograph_decoys: 4,
            noise: 30,
            rows: 120,
            key_slice: 400,
            key_overlap: 0.3,
            header_noise: 0.5,
            homograph_range: 600,
            seed: 23,
        }
    }
}

/// One query's pattern: key domain + related attributes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TablePattern {
    /// Key domain.
    pub key_dom: DomainId,
    /// Attribute relations (domain + relation id each).
    pub attrs: Vec<RelationSpec>,
}

/// Union-table-search benchmark with relationship and homograph ground truth.
#[derive(Debug, Clone)]
pub struct UnionBenchmark {
    /// The corpus.
    pub lake: DataLake,
    /// Registry (contains the homograph plants).
    pub registry: DomainRegistry,
    /// Query tables (not in the lake).
    pub queries: Vec<Table>,
    /// Per-query column domains (ground truth; index 0 = key column).
    pub query_domains: Vec<Vec<DomainId>>,
    /// The pattern each query instantiates.
    pub query_patterns: Vec<TablePattern>,
    /// All relation specs used anywhere (input for KB construction).
    pub relations: Vec<RelationSpec>,
    /// Relevance ground truth (noise tables are absent = grade 0).
    pub truth: Vec<UnionTruth>,
}

impl UnionBenchmark {
    /// Generate per `cfg` over the standard registry.
    ///
    /// Query `q` uses key domain cycling through
    /// `[city, person, company, movie, gene]` with a homograph partner
    /// (`animal`, `product`, `river`, `book`, `drug` respectively).
    #[must_use]
    pub fn generate(cfg: &UnionBenchConfig) -> Self {
        let mut registry = DomainRegistry::standard();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let key_names = ["city", "person", "company", "movie", "gene"];
        let partner_names = ["animal", "product", "river", "book", "drug"];
        let attr_pool = [
            "country",
            "occupation",
            "language",
            "sport",
            "color",
            "food",
            "disease",
            "element",
            "currency_code",
        ];

        // Plant homographs for every key/partner pair we will use.
        for (k, p) in key_names.iter().zip(partner_names) {
            let a = registry.must_id(k);
            let b = registry.must_id(p);
            registry.add_homograph_pair(a, b, cfg.homograph_range);
        }

        let mut lake = DataLake::new();
        let mut queries = Vec::with_capacity(cfg.num_queries);
        let mut query_domains = Vec::with_capacity(cfg.num_queries);
        let mut query_patterns = Vec::with_capacity(cfg.num_queries);
        let mut relations = Vec::new();
        let mut truth = Vec::new();
        let mut next_rel_id = 0u32;

        for q in 0..cfg.num_queries {
            let key_dom = registry.must_id(key_names[q % key_names.len()]);
            let partner_dom = registry.must_id(partner_names[q % partner_names.len()]);
            // Pick attribute domains for this query's pattern.
            let mut pool: Vec<&str> = attr_pool.to_vec();
            pool.shuffle(&mut rng);
            let attrs: Vec<RelationSpec> = pool
                .iter()
                .take(cfg.attrs_per_table)
                .map(|n| {
                    let spec = RelationSpec {
                        key_dom,
                        attr_dom: registry.must_id(n),
                        rel_id: next_rel_id,
                    };
                    next_rel_id += 1;
                    spec
                })
                .collect();
            relations.extend(attrs.iter().copied());
            let pattern = TablePattern {
                key_dom,
                attrs: attrs.clone(),
            };

            // Query instance: key indices [0, key_slice) — inside the
            // homograph range so homograph decoys bite.
            let q_keys: Vec<u64> = (0..cfg.key_slice).collect();
            let (qt, qd) = instantiate(
                &registry,
                &pattern,
                &q_keys,
                cfg.rows,
                0.0, // query headers are clean
                false,
                format!("query_{q:02}"),
                &mut rng,
            );
            queries.push(qt);
            query_domains.push(qd);
            query_patterns.push(pattern.clone());

            // Positives: same pattern, key slice overlapping by key_overlap.
            for p in 0..cfg.positives {
                let start =
                    ((1.0 - cfg.key_overlap) * cfg.key_slice as f64) as u64 + (p as u64) * 7;
                let keys: Vec<u64> = (start..start + cfg.key_slice).collect();
                let (t, _) = instantiate(
                    &registry,
                    &pattern,
                    &keys,
                    cfg.rows,
                    cfg.header_noise,
                    true,
                    format!("q{q}_pos_{p:02}.csv"),
                    &mut rng,
                );
                let id = lake.add(t);
                truth.push(UnionTruth {
                    query: q,
                    table: id,
                    grade: 2,
                    kind: CandidateKind::Positive,
                });
            }

            // Partials: keep the key + a strict subset of attrs, replace the
            // rest with fresh domains under fresh relations.
            for p in 0..cfg.partials {
                let keep = 1 + (p % cfg.attrs_per_table.saturating_sub(1).max(1));
                let mut attrs2: Vec<RelationSpec> =
                    pattern.attrs.iter().take(keep).copied().collect();
                for extra in pool.iter().rev().take(cfg.attrs_per_table - keep) {
                    let spec = RelationSpec {
                        key_dom,
                        attr_dom: registry.must_id(extra),
                        rel_id: next_rel_id,
                    };
                    next_rel_id += 1;
                    relations.push(spec);
                    attrs2.push(spec);
                }
                let pat2 = TablePattern {
                    key_dom,
                    attrs: attrs2,
                };
                let start = (p as u64) * 13;
                let keys: Vec<u64> = (start..start + cfg.key_slice).collect();
                let (t, _) = instantiate(
                    &registry,
                    &pat2,
                    &keys,
                    cfg.rows,
                    cfg.header_noise,
                    true,
                    format!("q{q}_part_{p:02}.csv"),
                    &mut rng,
                );
                let id = lake.add(t);
                truth.push(UnionTruth {
                    query: q,
                    table: id,
                    grade: 1,
                    kind: CandidateKind::Partial,
                });
            }

            // Relation decoys: identical domains, every attribute re-related.
            for p in 0..cfg.relation_decoys {
                let attrs2: Vec<RelationSpec> = pattern
                    .attrs
                    .iter()
                    .map(|a| {
                        let spec = RelationSpec {
                            key_dom: a.key_dom,
                            attr_dom: a.attr_dom,
                            rel_id: next_rel_id,
                        };
                        next_rel_id += 1;
                        spec
                    })
                    .collect();
                relations.extend(attrs2.iter().copied());
                let pat2 = TablePattern {
                    key_dom,
                    attrs: attrs2,
                };
                let start = (p as u64) * 11;
                let keys: Vec<u64> = (start..start + cfg.key_slice).collect();
                let (t, _) = instantiate(
                    &registry,
                    &pat2,
                    &keys,
                    cfg.rows,
                    cfg.header_noise,
                    true,
                    format!("q{q}_reldecoy_{p:02}.csv"),
                    &mut rng,
                );
                let id = lake.add(t);
                truth.push(UnionTruth {
                    query: q,
                    table: id,
                    grade: 0,
                    kind: CandidateKind::RelationDecoy,
                });
            }

            // Homograph decoys: key column from the partner domain using the
            // shared (homograph) index range — identical spellings — with
            // attribute columns from the partner's own world.
            for p in 0..cfg.homograph_decoys {
                let partner_attrs: Vec<RelationSpec> = ["animal", "food", "color"]
                    .iter()
                    .take(cfg.attrs_per_table)
                    .map(|n| {
                        let spec = RelationSpec {
                            key_dom: partner_dom,
                            attr_dom: registry.must_id(n),
                            rel_id: next_rel_id,
                        };
                        next_rel_id += 1;
                        spec
                    })
                    .collect();
                relations.extend(partner_attrs.iter().copied());
                let pat2 = TablePattern {
                    key_dom: partner_dom,
                    attrs: partner_attrs,
                };
                let start = (p as u64) * 5;
                let span = cfg.key_slice.min(cfg.homograph_range.saturating_sub(start));
                let keys: Vec<u64> = (start..start + span.max(1)).collect();
                let (t, _) = instantiate(
                    &registry,
                    &pat2,
                    &keys,
                    cfg.rows,
                    cfg.header_noise,
                    true,
                    format!("q{q}_homodecoy_{p:02}.csv"),
                    &mut rng,
                );
                let id = lake.add(t);
                truth.push(UnionTruth {
                    query: q,
                    table: id,
                    grade: 0,
                    kind: CandidateKind::HomographDecoy,
                });
            }
        }

        // Global noise tables.
        let noise_doms = ["airport_code", "stock_ticker", "email", "phone"];
        for t in 0..cfg.noise {
            let d = registry.must_id(noise_doms[t % noise_doms.len()]);
            let rows = cfg.rows;
            let col = Column::new(
                registry.domain(d).name.clone(),
                (0..rows as u64)
                    .map(|i| registry.value(d, 50_000 + (t as u64) * 10_000 + i))
                    .collect(),
            );
            lake.add(super::must_table(format!("noise_{t:03}.csv"), vec![col]));
        }

        UnionBenchmark {
            lake,
            registry,
            queries,
            query_domains,
            query_patterns,
            relations,
            truth,
        }
    }

    /// Ground truth for one query, keyed by table.
    #[must_use]
    pub fn truth_for(&self, query: usize) -> Vec<UnionTruth> {
        self.truth
            .iter()
            .filter(|t| t.query == query)
            .copied()
            .collect()
    }

    /// Tables with the given grade for a query.
    #[must_use]
    pub fn tables_with_grade(&self, query: usize, grade: u8) -> Vec<TableId> {
        self.truth_for(query)
            .into_iter()
            .filter(|t| t.grade == grade)
            .map(|t| t.table)
            .collect()
    }
}

/// Instantiate a pattern over the given key indices.
///
/// Rows cycle through `key_indices` (so `rows` may exceed the slice), each
/// row pairing `key[i]` with its relation-mapped attribute values. Returns
/// the table plus per-column ground-truth domains.
#[allow(clippy::too_many_arguments)]
fn instantiate(
    registry: &DomainRegistry,
    pattern: &TablePattern,
    key_indices: &[u64],
    rows: usize,
    header_noise: f64,
    shuffle_cols: bool,
    name: String,
    rng: &mut StdRng,
) -> (Table, Vec<DomainId>) {
    let mut key_vals = Vec::with_capacity(rows);
    let mut attr_vals: Vec<Vec<crate::value::Value>> =
        vec![Vec::with_capacity(rows); pattern.attrs.len()];
    for r in 0..rows {
        // Cycle when rows exceed the slice; spread evenly when they don't,
        // so the whole slice is represented either way.
        let len = key_indices.len();
        let pos = if rows >= len { r % len } else { r * len / rows };
        let k = key_indices[pos];
        key_vals.push(registry.value(pattern.key_dom, k));
        for (a, spec) in pattern.attrs.iter().enumerate() {
            attr_vals[a].push(registry.value(spec.attr_dom, spec.attr_index(k)));
        }
    }
    let header = |dom: DomainId, rng: &mut StdRng| -> String {
        let base = registry.domain(dom).name.clone();
        if rng.gen::<f64>() < header_noise {
            match rng.gen_range(0..3) {
                0 => format!("{base}_{}", rng.gen_range(1..9)),
                1 => base.to_uppercase(),
                _ => String::new(),
            }
        } else {
            base
        }
    };
    let mut cols = Vec::with_capacity(1 + pattern.attrs.len());
    let mut doms = Vec::with_capacity(1 + pattern.attrs.len());
    cols.push(Column::new(header(pattern.key_dom, rng), key_vals));
    doms.push(pattern.key_dom);
    for (a, spec) in pattern.attrs.iter().enumerate() {
        cols.push(Column::new(
            header(spec.attr_dom, rng),
            std::mem::take(&mut attr_vals[a]),
        ));
        doms.push(spec.attr_dom);
    }
    if shuffle_cols {
        let mut order: Vec<usize> = (0..cols.len()).collect();
        order.shuffle(rng);
        let cols2: Vec<Column> = order.iter().map(|&i| cols[i].clone()).collect();
        let doms2: Vec<DomainId> = order.iter().map(|&i| doms[i]).collect();
        cols = cols2;
        doms = doms2;
    }
    let meta = TableMeta {
        title: name.clone(),
        description: String::new(),
        tags: vec![registry.domain(pattern.key_dom).category.clone()],
        source: "synthetic".into(),
    };
    (super::must_table_with_meta(name, cols, meta), doms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> UnionBenchmark {
        UnionBenchmark::generate(&UnionBenchConfig {
            num_queries: 2,
            positives: 3,
            partials: 2,
            relation_decoys: 2,
            homograph_decoys: 2,
            noise: 5,
            rows: 60,
            key_slice: 100,
            homograph_range: 200,
            ..UnionBenchConfig::default()
        })
    }

    #[test]
    fn relation_map_is_deterministic_and_distinct() {
        let r = DomainRegistry::standard();
        let a = RelationSpec {
            key_dom: r.id("city").unwrap(),
            attr_dom: r.id("country").unwrap(),
            rel_id: 1,
        };
        let b = RelationSpec { rel_id: 2, ..a };
        assert_eq!(a.attr_index(5), a.attr_index(5));
        let diff = (0..100)
            .filter(|&i| a.attr_index(i) != b.attr_index(i))
            .count();
        assert!(diff > 90, "relations too similar: {diff}");
    }

    #[test]
    fn cluster_sizes_match_config() {
        let b = small();
        for q in 0..2 {
            let t = b.truth_for(q);
            assert_eq!(
                t.iter()
                    .filter(|x| x.kind == CandidateKind::Positive)
                    .count(),
                3
            );
            assert_eq!(
                t.iter()
                    .filter(|x| x.kind == CandidateKind::Partial)
                    .count(),
                2
            );
            assert_eq!(
                t.iter()
                    .filter(|x| x.kind == CandidateKind::RelationDecoy)
                    .count(),
                2
            );
            assert_eq!(
                t.iter()
                    .filter(|x| x.kind == CandidateKind::HomographDecoy)
                    .count(),
                2
            );
        }
    }

    #[test]
    fn positives_share_value_pairs_with_query() {
        let b = small();
        // The query and a positive instantiate the same relations over
        // overlapping keys, so some (key, attr) value pairs must co-occur.
        let q = &b.queries[0];
        let qpairs: HashSet<(String, String)> = (0..q.num_rows())
            .map(|r| {
                (
                    q.columns[0].values[r].to_string(),
                    q.columns[1].values[r].to_string(),
                )
            })
            .collect();
        let pos = b
            .truth_for(0)
            .into_iter()
            .find(|t| t.kind == CandidateKind::Positive)
            .unwrap();
        let pt = b.lake.table(pos.table);
        // Columns are shuffled in candidates; check all column pairs.
        let mut found = 0;
        for a in 0..pt.num_cols() {
            for c in 0..pt.num_cols() {
                if a == c {
                    continue;
                }
                for r in 0..pt.num_rows() {
                    let pair = (
                        pt.columns[a].values[r].to_string(),
                        pt.columns[c].values[r].to_string(),
                    );
                    if qpairs.contains(&pair) {
                        found += 1;
                    }
                }
            }
        }
        assert!(
            found > 0,
            "no co-occurring value pairs between query and positive"
        );
    }

    #[test]
    fn relation_decoys_share_domains_but_not_pairs() {
        let b = small();
        let q = &b.queries[0];
        // Query pairs (key value -> first attr value).
        let qpairs: HashSet<(String, String)> = (0..q.num_rows())
            .map(|r| {
                (
                    q.columns[0].values[r].to_string(),
                    q.columns[1].values[r].to_string(),
                )
            })
            .collect();
        let decoy = b
            .truth_for(0)
            .into_iter()
            .find(|t| t.kind == CandidateKind::RelationDecoy)
            .unwrap();
        let dt = b.lake.table(decoy.table);
        let mut found = 0;
        for a in 0..dt.num_cols() {
            for c in 0..dt.num_cols() {
                if a == c {
                    continue;
                }
                for r in 0..dt.num_rows() {
                    let pair = (
                        dt.columns[a].values[r].to_string(),
                        dt.columns[c].values[r].to_string(),
                    );
                    if qpairs.contains(&pair) {
                        found += 1;
                    }
                }
            }
        }
        // A different relation map makes pair collisions essentially
        // impossible (ATTR_CAP is large).
        assert!(found <= 2, "relation decoy shares {found} pairs");
    }

    #[test]
    fn homograph_decoys_share_key_spellings() {
        let b = small();
        let q = &b.queries[0];
        let qkeys: HashSet<String> = q.columns[0].values.iter().map(|v| v.to_string()).collect();
        let decoy = b
            .truth_for(0)
            .into_iter()
            .find(|t| t.kind == CandidateKind::HomographDecoy)
            .unwrap();
        let dt = b.lake.table(decoy.table);
        let best_overlap = dt
            .columns
            .iter()
            .map(|c| {
                c.values
                    .iter()
                    .filter(|v| qkeys.contains(&v.to_string()))
                    .count()
            })
            .max()
            .unwrap();
        assert!(
            best_overlap * 2 >= dt.num_rows(),
            "homograph decoy shares too few spellings: {best_overlap}/{}",
            dt.num_rows()
        );
    }

    #[test]
    fn queries_are_not_in_lake() {
        let b = small();
        let names: HashSet<&str> = b.lake.iter().map(|(_, t)| t.name.as_str()).collect();
        for q in &b.queries {
            assert!(!names.contains(q.name.as_str()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = UnionBenchConfig {
            num_queries: 1,
            ..UnionBenchConfig::default()
        };
        let a = UnionBenchmark::generate(&cfg);
        let b = UnionBenchmark::generate(&cfg);
        assert_eq!(a.lake.len(), b.lake.len());
        for (id, t) in a.lake.iter() {
            assert_eq!(t.columns, b.lake.table(id).columns);
        }
    }
}
