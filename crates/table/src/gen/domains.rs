//! Semantic domains: the ground-truth vocabularies behind the synthetic lake.
//!
//! A *domain* is a set of values that denote instances of one semantic
//! concept ("city", "gene", "currency code"). The generator draws column
//! values from domains, so every generated column carries a ground-truth
//! semantic type — the label real corpora (Open Data, WebDataCommons) lack.
//!
//! Each domain renders values in a characteristic *format* (proper nouns,
//! alphanumeric codes, emails, phone numbers, ...), which is what gives
//! feature-based semantic type detection (Sherlock-style, experiment E10)
//! genuine signal, and each domain belongs to a *category* used for topical
//! metadata and navigation benchmarks.
//!
//! Homographs (the DomainNet experiment, E14) are planted explicitly: a
//! homograph pair `(a, b, n)` makes the first `n` values of domains `a` and
//! `b` share the same spelling.

use super::words::{capitalize, mix2, seeded_range, vocab_word};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Identifier of a domain within a [`DomainRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u16);

/// How a domain renders its values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueFormat {
    /// Capitalized pseudo-word, e.g. `Brimola` (entities: cities, people).
    Proper {
        /// Syllable count of the stem.
        syllables: usize,
    },
    /// Lower-case pseudo-word, e.g. `veristan` (common nouns).
    Lower {
        /// Syllable count of the stem.
        syllables: usize,
    },
    /// Two capitalized words, e.g. `Kira Solvend` (person names).
    FullName,
    /// Uppercase code with digits, e.g. `KRT-2931` (tickers, gene symbols).
    Code {
        /// Number of leading letters.
        letters: usize,
        /// Number of trailing digits.
        digits: usize,
    },
    /// `stem.stem@host.dom` email addresses.
    Email,
    /// `+1-NNN-NNNN` phone numbers.
    Phone,
    /// ISO-style date `YYYY-MM-DD`.
    Date,
    /// Integer drawn deterministically from `[lo, hi)`.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// Float drawn deterministically from `[lo, hi)`, 2 decimals.
    FloatRange {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

impl ValueFormat {
    /// True if the format produces numeric values.
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            ValueFormat::IntRange { .. } | ValueFormat::FloatRange { .. }
        )
    }
}

/// One semantic domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Domain name, e.g. `"city"`. Used as the default column header.
    pub name: String,
    /// Rendering format.
    pub format: ValueFormat,
    /// Topical category, e.g. `"geography"`. Drives metadata and navigation.
    pub category: String,
    salt: u64,
}

/// A homograph plant: values `0..count` of `a` and `b` share spellings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomographPair {
    /// First domain.
    pub a: DomainId,
    /// Second domain.
    pub b: DomainId,
    /// How many leading indices are shared.
    pub count: u64,
}

/// The registry of all domains known to a generated lake.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainRegistry {
    domains: Vec<Domain>,
    homographs: Vec<HomographPair>,
}

/// Salt namespace for the shared homograph vocabulary.
const HOMOGRAPH_SALT: u64 = 0x4845_5845_5845;

impl DomainRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard registry: 24 categorical + 8 numeric domains across six
    /// categories, enough to drive every experiment in DESIGN.md.
    #[must_use]
    pub fn standard() -> Self {
        let mut r = DomainRegistry::new();
        let specs: &[(&str, &str, ValueFormat)] = &[
            // geography
            ("city", "geography", ValueFormat::Proper { syllables: 2 }),
            ("country", "geography", ValueFormat::Proper { syllables: 3 }),
            ("river", "geography", ValueFormat::Proper { syllables: 2 }),
            (
                "airport_code",
                "geography",
                ValueFormat::Code {
                    letters: 3,
                    digits: 0,
                },
            ),
            // people
            ("person", "people", ValueFormat::FullName),
            ("occupation", "people", ValueFormat::Lower { syllables: 3 }),
            ("email", "people", ValueFormat::Email),
            ("phone", "people", ValueFormat::Phone),
            // business
            ("company", "business", ValueFormat::Proper { syllables: 3 }),
            ("product", "business", ValueFormat::Lower { syllables: 2 }),
            (
                "stock_ticker",
                "business",
                ValueFormat::Code {
                    letters: 4,
                    digits: 0,
                },
            ),
            (
                "currency_code",
                "business",
                ValueFormat::Code {
                    letters: 3,
                    digits: 0,
                },
            ),
            // science
            (
                "gene",
                "science",
                ValueFormat::Code {
                    letters: 3,
                    digits: 2,
                },
            ),
            ("disease", "science", ValueFormat::Lower { syllables: 4 }),
            ("drug", "science", ValueFormat::Lower { syllables: 3 }),
            ("element", "science", ValueFormat::Proper { syllables: 2 }),
            // culture
            ("movie", "culture", ValueFormat::Proper { syllables: 3 }),
            ("book", "culture", ValueFormat::Proper { syllables: 3 }),
            ("sport", "culture", ValueFormat::Lower { syllables: 2 }),
            ("language", "culture", ValueFormat::Proper { syllables: 2 }),
            // misc categorical
            ("animal", "nature", ValueFormat::Lower { syllables: 2 }),
            ("color", "nature", ValueFormat::Lower { syllables: 2 }),
            ("food", "nature", ValueFormat::Lower { syllables: 2 }),
            ("event_date", "time", ValueFormat::Date),
            // numeric
            (
                "population",
                "numeric",
                ValueFormat::IntRange {
                    lo: 1_000,
                    hi: 10_000_000,
                },
            ),
            (
                "price",
                "numeric",
                ValueFormat::FloatRange {
                    lo: 0.5,
                    hi: 5_000.0,
                },
            ),
            (
                "rating",
                "numeric",
                ValueFormat::FloatRange { lo: 0.0, hi: 10.0 },
            ),
            (
                "year",
                "numeric",
                ValueFormat::IntRange { lo: 1900, hi: 2024 },
            ),
            (
                "salary",
                "numeric",
                ValueFormat::IntRange {
                    lo: 20_000,
                    hi: 400_000,
                },
            ),
            (
                "temperature",
                "numeric",
                ValueFormat::FloatRange {
                    lo: -40.0,
                    hi: 45.0,
                },
            ),
            (
                "quantity",
                "numeric",
                ValueFormat::IntRange { lo: 0, hi: 100_000 },
            ),
            (
                "percentage",
                "numeric",
                ValueFormat::FloatRange { lo: 0.0, hi: 100.0 },
            ),
        ];
        for (name, cat, fmt) in specs {
            r.add(name, cat, *fmt);
        }
        r
    }

    /// Add a domain; the salt is derived from its registry position and
    /// name so vocabularies are stable.
    pub fn add(&mut self, name: &str, category: &str, format: ValueFormat) -> DomainId {
        let id = DomainId(self.domains.len() as u16);
        let salt = name
            .bytes()
            .fold(0xD0_u64.wrapping_add(id.0 as u64), |acc, b| {
                mix2(acc, b as u64)
            });
        self.domains.push(Domain {
            name: name.to_string(),
            format,
            category: category.to_string(),
            salt,
        });
        id
    }

    /// Plant a homograph pair.
    pub fn add_homograph_pair(&mut self, a: DomainId, b: DomainId, count: u64) {
        assert_ne!(a, b, "homograph pair must span two domains");
        self.homographs.push(HomographPair { a, b, count });
    }

    /// All planted homograph pairs.
    #[must_use]
    pub fn homograph_pairs(&self) -> &[HomographPair] {
        &self.homographs
    }

    /// Number of domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if no domains are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Domain metadata.
    ///
    /// # Panics
    /// Panics on a foreign id.
    #[must_use]
    pub fn domain(&self, id: DomainId) -> &Domain {
        &self.domains[id.0 as usize]
    }

    /// Look up a domain id by name.
    #[must_use]
    pub fn id(&self, name: &str) -> Option<DomainId> {
        self.domains
            .iter()
            .position(|d| d.name == name)
            .map(|i| DomainId(i as u16))
    }

    /// Look up a built-in domain by name, for generator code that names
    /// domains with compile-time string constants.
    ///
    /// # Panics
    /// Panics if `name` is not registered.
    #[must_use]
    pub fn must_id(&self, name: &str) -> DomainId {
        // td-lint: allow(TD001) generator domain names are compile-time constants
        self.id(name).expect("domain registered in this registry")
    }

    /// Iterate `(id, domain)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &Domain)> {
        self.domains
            .iter()
            .enumerate()
            .map(|(i, d)| (DomainId(i as u16), d))
    }

    /// Ids of all non-numeric (categorical) domains.
    #[must_use]
    pub fn categorical_ids(&self) -> Vec<DomainId> {
        self.iter()
            .filter(|(_, d)| !d.format.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all numeric domains.
    #[must_use]
    pub fn numeric_ids(&self) -> Vec<DomainId> {
        self.iter()
            .filter(|(_, d)| d.format.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// If `(d, i)` falls in a homograph plant, the shared salt+index to
    /// render from instead.
    fn homograph_redirect(&self, d: DomainId, i: u64) -> Option<u64> {
        self.homographs.iter().find_map(|h| {
            if (h.a == d || h.b == d) && i < h.count {
                // Shared spelling is a function of the *pair* and index, so
                // both sides render identically.
                Some(mix2(
                    HOMOGRAPH_SALT ^ ((h.a.0 as u64) << 32 | h.b.0 as u64),
                    i,
                ))
            } else {
                None
            }
        })
    }

    /// The `i`-th value of domain `d`.
    ///
    /// Deterministic in `(registry, d, i)`; distinct `i` yield distinct
    /// values within a categorical domain (numeric ranges may repeat).
    #[must_use]
    pub fn value(&self, d: DomainId, i: u64) -> Value {
        let dom = self.domain(d);
        if let Some(shared_seed) = self.homograph_redirect(d, i) {
            // Homographs are always rendered as proper words regardless of
            // either domain's own format: the point is identical spelling.
            return Value::Text(capitalize(&vocab_word(shared_seed, i, 2)));
        }
        let salt = dom.salt;
        match dom.format {
            ValueFormat::Proper { syllables } => {
                Value::Text(capitalize(&vocab_word(salt, i, syllables)))
            }
            ValueFormat::Lower { syllables } => Value::Text(vocab_word(salt, i, syllables)),
            ValueFormat::FullName => {
                let first = capitalize(&vocab_word(salt, i, 2));
                let last = capitalize(&vocab_word(salt ^ 0xF00D, i, 2));
                Value::Text(format!("{first} {last}"))
            }
            ValueFormat::Code { letters, digits } => {
                let mut s = String::with_capacity(letters + digits + 1);
                for k in 0..letters {
                    let c = b'A' + (seeded_range(mix2(salt, i * 31 + k as u64), 0, 26)) as u8;
                    s.push(c as char);
                }
                if digits > 0 {
                    s.push('-');
                    for k in 0..digits {
                        let c = b'0'
                            + (seeded_range(mix2(salt ^ 0xD1, i * 37 + k as u64), 0, 10)) as u8;
                        s.push(c as char);
                    }
                }
                // Guarantee uniqueness: short codes collide, so suffix with
                // the base-26 index rendering uppercased.
                s.push_str(&super::words::alpha_suffix(i).to_uppercase());
                Value::Text(s)
            }
            ValueFormat::Email => {
                let user = vocab_word(salt, i, 2);
                let host = vocab_word(salt ^ 0xBEEF, i / 7, 2);
                Value::Text(format!(
                    "{user}.{}@{host}.com",
                    super::words::alpha_suffix(i)
                ))
            }
            ValueFormat::Phone => {
                let area = seeded_range(mix2(salt, i), 200, 999);
                Value::Text(format!("+1-{area}-{:07}", i % 10_000_000))
            }
            ValueFormat::Date => {
                let year = 1990 + (seeded_range(mix2(salt, i), 0, 35)) as i64;
                let month = 1 + (seeded_range(mix2(salt ^ 0x11, i), 0, 12)) as i64;
                let day = 1 + (seeded_range(mix2(salt ^ 0x22, i), 0, 28)) as i64;
                Value::Text(format!("{year:04}-{month:02}-{day:02}"))
            }
            ValueFormat::IntRange { lo, hi } => {
                Value::Int(lo + (seeded_range(mix2(salt, i), 0, (hi - lo) as u64)) as i64)
            }
            ValueFormat::FloatRange { lo, hi } => {
                let u = seeded_range(mix2(salt, i), 0, 1_000_000) as f64 / 1_000_000.0;
                let v = lo + u * (hi - lo);
                Value::Float((v * 100.0).round() / 100.0)
            }
        }
    }

    /// Materialize the first `n` values of a domain.
    #[must_use]
    pub fn vocab(&self, d: DomainId, n: u64) -> Vec<Value> {
        (0..n).map(|i| self.value(d, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_registry_has_both_kinds() {
        let r = DomainRegistry::standard();
        assert!(r.len() >= 30);
        assert!(r.categorical_ids().len() >= 20);
        assert!(r.numeric_ids().len() >= 6);
    }

    #[test]
    fn values_are_deterministic() {
        let r = DomainRegistry::standard();
        let d = r.id("city").unwrap();
        assert_eq!(r.value(d, 5), r.value(d, 5));
        assert_ne!(r.value(d, 5), r.value(d, 6));
    }

    #[test]
    fn categorical_vocab_is_distinct() {
        let r = DomainRegistry::standard();
        for name in ["city", "person", "gene", "email", "stock_ticker"] {
            let d = r.id(name).unwrap();
            let v: HashSet<String> = r
                .vocab(d, 2000)
                .into_iter()
                .map(|v| v.to_string())
                .collect();
            assert_eq!(v.len(), 2000, "collisions in {name}");
        }
    }

    #[test]
    fn domains_rarely_collide_with_each_other() {
        let r = DomainRegistry::standard();
        let city: HashSet<String> = r
            .vocab(r.id("city").unwrap(), 1000)
            .iter()
            .map(|v| v.to_string())
            .collect();
        let animal: HashSet<String> = r
            .vocab(r.id("animal").unwrap(), 1000)
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(city.intersection(&animal).count() < 5);
    }

    #[test]
    fn formats_look_right() {
        let r = DomainRegistry::standard();
        let email = r.value(r.id("email").unwrap(), 3).to_string();
        assert!(email.contains('@') && email.ends_with(".com"), "{email}");
        let phone = r.value(r.id("phone").unwrap(), 3).to_string();
        assert!(phone.starts_with("+1-"), "{phone}");
        let date = r.value(r.id("event_date").unwrap(), 3).to_string();
        assert_eq!(date.len(), 10);
        assert_eq!(&date[4..5], "-");
        let gene = r.value(r.id("gene").unwrap(), 3).to_string();
        assert!(gene.chars().next().unwrap().is_ascii_uppercase(), "{gene}");
    }

    #[test]
    fn numeric_domains_produce_numbers_in_range() {
        let r = DomainRegistry::standard();
        let d = r.id("year").unwrap();
        for i in 0..200 {
            match r.value(d, i) {
                Value::Int(y) => assert!((1900..2024).contains(&y)),
                other => panic!("expected int, got {other:?}"),
            }
        }
        let p = r.id("rating").unwrap();
        for i in 0..200 {
            let f = r.value(p, i).as_f64().unwrap();
            assert!((0.0..=10.0).contains(&f));
        }
    }

    #[test]
    fn homograph_pair_shares_spellings() {
        let mut r = DomainRegistry::standard();
        let a = r.id("animal").unwrap();
        let c = r.id("city").unwrap();
        r.add_homograph_pair(a, c, 10);
        for i in 0..10 {
            assert_eq!(r.value(a, i), r.value(c, i), "index {i}");
        }
        assert_ne!(r.value(a, 10), r.value(c, 10));
    }

    #[test]
    fn homograph_does_not_leak_into_other_domains() {
        let mut r = DomainRegistry::standard();
        let a = r.id("animal").unwrap();
        let c = r.id("city").unwrap();
        let g = r.id("gene").unwrap();
        r.add_homograph_pair(a, c, 10);
        assert_ne!(r.value(g, 3), r.value(a, 3));
    }

    #[test]
    fn id_lookup() {
        let r = DomainRegistry::standard();
        assert!(r.id("city").is_some());
        assert!(r.id("nope").is_none());
        let d = r.id("price").unwrap();
        assert_eq!(r.domain(d).name, "price");
        assert!(r.domain(d).format.is_numeric());
    }
}
