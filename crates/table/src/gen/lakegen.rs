//! Generic synthetic lake generation with ground-truth labels.
//!
//! [`LakeGenerator`] produces a [`DataLake`] whose columns are drawn from the
//! semantic domains of a [`DomainRegistry`], with controllable row/column
//! counts, Zipfian value skew, cardinality skew across columns, header
//! corruption, null rates, and metadata quality. Alongside the lake it emits
//! the ground truth real corpora lack: the semantic domain of every column
//! and the topical category of every table.

use super::domains::{DomainId, DomainRegistry};
use crate::column::Column;
use crate::lake::{ColumnRef, DataLake, TableId};
use crate::table::TableMeta;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most popular), implemented
/// with a cumulative-weight table and binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s >= 0`
    /// (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cum.push(total);
        }
        Zipf { cum }
    }

    /// Sample a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let Some(&total) = self.cum.last() else {
            return 0; // unreachable: `new` rejects an empty support
        };
        let u = rng.gen::<f64>() * total;
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }

    /// Support size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cum.len()
    }
}

/// Configuration for [`LakeGenerator::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LakeGenConfig {
    /// Number of tables to generate.
    pub num_tables: usize,
    /// Inclusive row-count range per table.
    pub rows: (usize, usize),
    /// Inclusive column-count range per table.
    pub cols: (usize, usize),
    /// Zipf exponent for value-rank sampling within a column's vocabulary
    /// (0 = uniform; real lakes are ~1).
    pub zipf_s: f64,
    /// Upper bound on the vocabulary slice a column draws from; actual
    /// per-column cardinality is log-uniform in `[min_card, max_card]`,
    /// giving the skewed cardinality distribution LSH Ensemble targets.
    pub max_card: u64,
    /// Lower bound of the per-column cardinality draw.
    pub min_card: u64,
    /// Probability that a column header is corrupted (renamed or blanked).
    pub header_noise: f64,
    /// Per-cell null probability.
    pub null_rate: f64,
    /// Probability that a table's metadata is missing entirely.
    pub missing_meta_rate: f64,
    /// Fraction of a table's columns forced to come from its topical
    /// category (the rest are random domains).
    pub topical_fraction: f64,
    /// RNG seed; everything is deterministic in this.
    pub seed: u64,
}

impl Default for LakeGenConfig {
    fn default() -> Self {
        LakeGenConfig {
            num_tables: 100,
            rows: (20, 200),
            cols: (2, 8),
            zipf_s: 1.0,
            max_card: 2_000,
            min_card: 10,
            header_noise: 0.2,
            null_rate: 0.02,
            missing_meta_rate: 0.2,
            topical_fraction: 0.7,
            seed: 7,
        }
    }
}

/// A generated lake plus its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedLake {
    /// The lake itself.
    pub lake: DataLake,
    /// The registry whose domains populated it.
    pub registry: DomainRegistry,
    /// Ground truth: semantic domain of every generated column.
    pub column_domains: HashMap<ColumnRef, DomainId>,
    /// Ground truth: topical category of every table.
    pub table_categories: HashMap<TableId, String>,
}

impl GeneratedLake {
    /// Ground-truth domain of a column, if it was generated from one.
    #[must_use]
    pub fn domain_of(&self, r: ColumnRef) -> Option<DomainId> {
        self.column_domains.get(&r).copied()
    }
}

/// Synthesizes data-lake tables from a domain registry.
#[derive(Debug, Clone)]
pub struct LakeGenerator {
    registry: DomainRegistry,
}

impl LakeGenerator {
    /// Generator over the standard registry.
    #[must_use]
    pub fn standard() -> Self {
        LakeGenerator {
            registry: DomainRegistry::standard(),
        }
    }

    /// Generator over a custom registry (e.g. with homograph plants).
    #[must_use]
    pub fn with_registry(registry: DomainRegistry) -> Self {
        LakeGenerator { registry }
    }

    /// The underlying registry.
    #[must_use]
    pub fn registry(&self) -> &DomainRegistry {
        &self.registry
    }

    /// Generate a column of `rows` values from `domain`, drawing value ranks
    /// Zipf-skewed from a vocabulary slice of size `card`.
    #[allow(clippy::too_many_arguments)]
    pub fn gen_column<R: Rng + ?Sized>(
        &self,
        domain: DomainId,
        header: String,
        rows: usize,
        card: u64,
        zipf_s: f64,
        null_rate: f64,
        rng: &mut R,
    ) -> Column {
        let card = card.max(1);
        let zipf = Zipf::new(card as usize, zipf_s);
        // Offset the vocabulary slice so different columns of the same
        // domain overlap but are not identical prefixes.
        let offset = rng.gen_range(0..card.max(2) / 2 + 1);
        let mut values = Vec::with_capacity(rows);
        for _ in 0..rows {
            if rng.gen::<f64>() < null_rate {
                values.push(Value::Null);
            } else {
                let rank = zipf.sample(rng) as u64;
                values.push(self.registry.value(domain, offset + rank));
            }
        }
        Column::new(header, values)
    }

    /// Possibly corrupt a header name (the unreliable-metadata phenomenon
    /// the tutorial's Section 2.1 motivates data-driven search with).
    fn corrupt_header<R: Rng + ?Sized>(name: &str, rng: &mut R) -> String {
        match rng.gen_range(0..5) {
            0 => String::new(),
            1 => format!("col_{}", rng.gen_range(0..100)),
            2 => name.chars().take(3).collect(),
            3 => format!("{name}_{}", rng.gen_range(1..9)),
            _ => name.to_uppercase(),
        }
    }

    /// Generate a full lake per `cfg`.
    ///
    /// # Panics
    /// Panics if the registry has no categorical domains.
    #[must_use]
    pub fn generate(&self, cfg: &LakeGenConfig) -> GeneratedLake {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut lake = DataLake::new();
        let mut column_domains = HashMap::new();
        let mut table_categories = HashMap::new();

        let all_ids: Vec<DomainId> = self.registry.iter().map(|(i, _)| i).collect();
        assert!(!all_ids.is_empty(), "empty registry");
        let categories: Vec<String> = {
            let mut c: Vec<String> = self
                .registry
                .iter()
                .map(|(_, d)| d.category.clone())
                .collect();
            c.sort();
            c.dedup();
            c
        };

        for t in 0..cfg.num_tables {
            let category = categories[rng.gen_range(0..categories.len())].clone();
            let in_category: Vec<DomainId> = self
                .registry
                .iter()
                .filter(|(_, d)| d.category == category)
                .map(|(i, _)| i)
                .collect();
            let ncols = rng.gen_range(cfg.cols.0..=cfg.cols.1);
            let nrows = rng.gen_range(cfg.rows.0..=cfg.rows.1);
            let mut columns = Vec::with_capacity(ncols);
            let mut domains = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let from_topic = !in_category.is_empty() && rng.gen::<f64>() < cfg.topical_fraction;
                let d = if from_topic {
                    in_category[rng.gen_range(0..in_category.len())]
                } else {
                    all_ids[rng.gen_range(0..all_ids.len())]
                };
                let dom_name = self.registry.domain(d).name.clone();
                let header = if rng.gen::<f64>() < cfg.header_noise {
                    Self::corrupt_header(&dom_name, &mut rng)
                } else {
                    dom_name
                };
                // Log-uniform cardinality in [min_card, max_card].
                let lo = (cfg.min_card.max(1)) as f64;
                let hi = (cfg.max_card.max(cfg.min_card + 1)) as f64;
                let card = (lo * (hi / lo).powf(rng.gen::<f64>())).round() as u64;
                let col =
                    self.gen_column(d, header, nrows, card, cfg.zipf_s, cfg.null_rate, &mut rng);
                domains.push(d);
                columns.push(col);
            }
            let name = format!("{category}_{t:05}.csv");
            let meta = if rng.gen::<f64>() < cfg.missing_meta_rate {
                TableMeta::default()
            } else {
                let dom_names: Vec<String> = domains
                    .iter()
                    .map(|&d| self.registry.domain(d).name.clone())
                    .collect();
                TableMeta {
                    title: format!("{category} dataset {t}"),
                    description: format!("Records relating {}", dom_names.join(", ")),
                    tags: vec![category.clone()],
                    source: "synthetic-portal".to_string(),
                }
            };
            let table = super::must_table_with_meta(name, columns, meta);
            let id = lake.add(table);
            table_categories.insert(id, category);
            for (ci, d) in domains.into_iter().enumerate() {
                column_domains.insert(ColumnRef::new(id, ci), d);
            }
        }

        GeneratedLake {
            lake,
            registry: self.registry.clone(),
            column_domains,
            table_categories,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 ranks carry well over a third of the mass.
        assert!(head > N / 3, "head mass too small: {head}");
    }

    #[test]
    fn zipf_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let g = LakeGenerator::standard();
        let cfg = LakeGenConfig {
            num_tables: 5,
            seed: 42,
            ..LakeGenConfig::default()
        };
        let a = g.generate(&cfg);
        let b = g.generate(&cfg);
        assert_eq!(a.lake.len(), b.lake.len());
        for (id, t) in a.lake.iter() {
            assert_eq!(t.columns, b.lake.table(id).columns);
        }
    }

    #[test]
    fn ground_truth_covers_every_column() {
        let g = LakeGenerator::standard();
        let cfg = LakeGenConfig {
            num_tables: 10,
            ..LakeGenConfig::default()
        };
        let gl = g.generate(&cfg);
        assert_eq!(gl.column_domains.len(), gl.lake.num_columns());
        for (r, _) in gl.lake.columns() {
            assert!(gl.domain_of(r).is_some());
        }
        assert_eq!(gl.table_categories.len(), gl.lake.len());
    }

    #[test]
    fn shapes_respect_config() {
        let g = LakeGenerator::standard();
        let cfg = LakeGenConfig {
            num_tables: 8,
            rows: (5, 10),
            cols: (2, 3),
            ..LakeGenConfig::default()
        };
        let gl = g.generate(&cfg);
        assert_eq!(gl.lake.len(), 8);
        for (_, t) in gl.lake.iter() {
            assert!((5..=10).contains(&t.num_rows()));
            assert!((2..=3).contains(&t.num_cols()));
        }
    }

    #[test]
    fn generated_columns_match_declared_domain() {
        let g = LakeGenerator::standard();
        let cfg = LakeGenConfig {
            num_tables: 6,
            null_rate: 0.0,
            ..LakeGenConfig::default()
        };
        let gl = g.generate(&cfg);
        // Every non-null value of a column must appear in its domain's
        // (large) vocabulary prefix.
        for (r, col) in gl.lake.columns() {
            let d = gl.domain_of(r).unwrap();
            if gl.registry.domain(d).format.is_numeric() {
                continue; // numeric draws may repeat / are range-based
            }
            let vocab: std::collections::HashSet<Value> =
                gl.registry.vocab(d, 4_096).into_iter().collect();
            for v in &col.values {
                if !v.is_null() {
                    assert!(vocab.contains(v), "{v} not in domain {d:?}");
                }
            }
        }
    }

    #[test]
    fn header_noise_zero_keeps_domain_names() {
        let g = LakeGenerator::standard();
        let cfg = LakeGenConfig {
            num_tables: 5,
            header_noise: 0.0,
            ..LakeGenConfig::default()
        };
        let gl = g.generate(&cfg);
        for (r, col) in gl.lake.columns() {
            let d = gl.domain_of(r).unwrap();
            assert_eq!(col.name, gl.registry.domain(d).name);
        }
    }

    #[test]
    fn null_rate_produces_nulls() {
        let g = LakeGenerator::standard();
        let cfg = LakeGenConfig {
            num_tables: 10,
            rows: (100, 100),
            null_rate: 0.3,
            ..LakeGenConfig::default()
        };
        let gl = g.generate(&cfg);
        let total: usize = gl.lake.columns().map(|(_, c)| c.len()).sum();
        let nulls: usize = gl.lake.columns().map(|(_, c)| c.null_count()).sum();
        let rate = nulls as f64 / total as f64;
        assert!((0.2..0.4).contains(&rate), "null rate {rate}");
    }
}
