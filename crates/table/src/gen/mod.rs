//! Synthetic data-lake generation with ground truth.
//!
//! Real table-discovery corpora (Open Data, WebDataCommons) are huge and —
//! crucially for evaluation — unlabeled. This module substitutes a seeded
//! generator whose lakes have *exact* ground truth: the semantic domain of
//! every column, the topical category of every table, and per-benchmark
//! relevance labels (containment, unionability grade, planted correlation).
//! See DESIGN.md, "Substitutions".

pub mod bench_join;
pub mod bench_union;
pub mod domains;
pub mod lakegen;
pub mod words;

pub use bench_join::{
    pearson, CorrelationBenchmark, CorrelationConfig, CorrelationTruth, JoinBenchConfig,
    JoinBenchmark, JoinTruth, MultiJoinBenchmark, MultiJoinConfig, MultiJoinTruth,
};
pub use bench_union::{
    CandidateKind, RelationSpec, TablePattern, UnionBenchConfig, UnionBenchmark, UnionTruth,
    ATTR_CAP,
};
pub use domains::{Domain, DomainId, DomainRegistry, HomographPair, ValueFormat};
pub use lakegen::{GeneratedLake, LakeGenConfig, LakeGenerator, Zipf};
