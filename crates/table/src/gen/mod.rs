//! Synthetic data-lake generation with ground truth.
//!
//! Real table-discovery corpora (Open Data, WebDataCommons) are huge and —
//! crucially for evaluation — unlabeled. This module substitutes a seeded
//! generator whose lakes have *exact* ground truth: the semantic domain of
//! every column, the topical category of every table, and per-benchmark
//! relevance labels (containment, unionability grade, planted correlation).
//! See DESIGN.md, "Substitutions".

pub mod bench_join;
pub mod bench_union;
pub mod domains;
pub mod lakegen;
pub mod words;

pub use bench_join::{
    pearson, CorrelationBenchmark, CorrelationConfig, CorrelationTruth, JoinBenchConfig,
    JoinBenchmark, JoinTruth, MultiJoinBenchmark, MultiJoinConfig, MultiJoinTruth,
};
pub use bench_union::{
    CandidateKind, RelationSpec, TablePattern, UnionBenchConfig, UnionBenchmark, UnionTruth,
    ATTR_CAP,
};
pub use domains::{Domain, DomainId, DomainRegistry, HomographPair, ValueFormat};
pub use lakegen::{GeneratedLake, LakeGenConfig, LakeGenerator, Zipf};

/// [`crate::Table::new`] for generator output. Every generator fills its
/// columns from one row loop, so ragged columns are a bug in the
/// generator itself, not a recoverable input condition.
pub(crate) fn must_table(name: impl Into<String>, columns: Vec<crate::Column>) -> crate::Table {
    // td-lint: allow(TD001) generators build equal-length columns by construction
    crate::Table::new(name, columns).expect("generator columns are equal-length")
}

/// [`crate::Table::with_meta`] for generator output; see [`must_table`].
pub(crate) fn must_table_with_meta(
    name: impl Into<String>,
    columns: Vec<crate::Column>,
    meta: crate::TableMeta,
) -> crate::Table {
    // td-lint: allow(TD001) generators build equal-length columns by construction
    crate::Table::with_meta(name, columns, meta).expect("generator columns are equal-length")
}
