//! Deterministic pseudo-word generation.
//!
//! The synthetic lake needs unbounded, collision-free, *pronounceable*
//! vocabularies whose `i`-th element is a pure function of `(salt, i)` —
//! stable across runs and independent of generation order. We derive all
//! randomness from a local SplitMix64 so the vocabulary does not depend on
//! the `rand` crate's stream layout.

/// SplitMix64: tiny, high-quality 64-bit mixer (public-domain algorithm).
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combine a salt and an index into one mixed 64-bit stream seed.
#[inline]
#[must_use]
pub fn mix2(salt: u64, i: u64) -> u64 {
    splitmix64(splitmix64(salt).wrapping_add(splitmix64(i ^ 0xA5A5_A5A5_A5A5_A5A5)))
}

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr",
    "r", "s", "st", "t", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "l", "m", "k", "t", "nd", "st"];

/// A pronounceable pseudo-word with `syllables` syllables, deterministic in
/// `seed`.
#[must_use]
pub fn pseudo_word(seed: u64, syllables: usize) -> String {
    let mut s = String::with_capacity(syllables * 4);
    let mut state = seed;
    for k in 0..syllables {
        state = splitmix64(state.wrapping_add(k as u64));
        let onset = ONSETS[(state % ONSETS.len() as u64) as usize];
        let vowel = VOWELS[((state >> 16) % VOWELS.len() as u64) as usize];
        // Only the final syllable gets a coda; keeps words pronounceable.
        let coda = if k + 1 == syllables {
            CODAS[((state >> 32) % CODAS.len() as u64) as usize]
        } else {
            ""
        };
        s.push_str(onset);
        s.push_str(vowel);
        s.push_str(coda);
    }
    s
}

/// Capitalize the first letter (proper-noun style).
#[must_use]
pub fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        None => String::new(),
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
    }
}

/// The `i`-th *unique* pseudo-word of a salted vocabulary.
///
/// Uniqueness within a salt is guaranteed by suffixing the base word with a
/// base-26 alphabetic rendering of `i`, so two distinct indices can never
/// collide even if their pseudo-word stems do.
#[must_use]
pub fn vocab_word(salt: u64, i: u64, syllables: usize) -> String {
    let mut w = pseudo_word(mix2(salt, i), syllables);
    w.push_str(&alpha_suffix(i));
    w
}

/// Base-26 lower-alpha rendering of an index (`0 -> "a"`, `25 -> "z"`,
/// `26 -> "ba"`, ...). Prefix-free enough for our purposes and keeps values
/// looking like words rather than numbered artifacts.
#[must_use]
pub fn alpha_suffix(mut i: u64) -> String {
    let mut out = Vec::new();
    loop {
        out.push(b'a' + (i % 26) as u8);
        i /= 26;
        if i == 0 {
            break;
        }
    }
    out.reverse();
    out.into_iter().map(char::from).collect()
}

/// Uniform integer in `[lo, hi)` derived from a seed (for value formatting,
/// not statistics).
#[inline]
#[must_use]
pub fn seeded_range(seed: u64, lo: u64, hi: u64) -> u64 {
    assert!(hi > lo);
    lo + splitmix64(seed) % (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: single-bit input change flips many output bits.
        let d = (splitmix64(7) ^ splitmix64(7 | 1 << 40)).count_ones();
        assert!(d > 16, "weak mixing: {d} bits");
    }

    #[test]
    fn pseudo_words_are_pronounceable_ascii() {
        for i in 0..100 {
            let w = pseudo_word(i, 2);
            assert!(!w.is_empty());
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vocab_words_are_unique_within_salt() {
        let words: HashSet<String> = (0..5000).map(|i| vocab_word(42, i, 2)).collect();
        assert_eq!(words.len(), 5000);
    }

    #[test]
    fn vocab_words_differ_across_salts() {
        let a: HashSet<String> = (0..1000).map(|i| vocab_word(1, i, 2)).collect();
        let b: HashSet<String> = (0..1000).map(|i| vocab_word(2, i, 2)).collect();
        // Salted stems make cross-salt collisions vanishingly rare.
        assert!(a.intersection(&b).count() < 5);
    }

    #[test]
    fn alpha_suffix_rolls_over() {
        assert_eq!(alpha_suffix(0), "a");
        assert_eq!(alpha_suffix(25), "z");
        assert_eq!(alpha_suffix(26), "ba");
    }

    #[test]
    fn capitalize_handles_empty() {
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("boston"), "Boston");
    }

    #[test]
    fn seeded_range_in_bounds() {
        for s in 0..200 {
            let v = seeded_range(s, 10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
