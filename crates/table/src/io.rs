//! Lake persistence: a directory of CSV files plus a JSON metadata
//! sidecar — the on-disk shape real lakes (open-data portals, shared
//! folders) actually have.

use crate::csv;
use crate::lake::DataLake;
use crate::table::TableMeta;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Errors while loading or saving a lake directory.
#[derive(Debug)]
pub enum LakeIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A CSV file failed to parse.
    Csv {
        /// Offending file name.
        file: String,
        /// Parse error.
        error: csv::CsvError,
    },
    /// The metadata sidecar failed to parse.
    Meta(String),
}

impl fmt::Display for LakeIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeIoError::Io(e) => write!(f, "io error: {e}"),
            LakeIoError::Csv { file, error } => write!(f, "csv error in {file}: {error}"),
            LakeIoError::Meta(e) => write!(f, "metadata sidecar error: {e}"),
        }
    }
}

impl std::error::Error for LakeIoError {}

impl From<std::io::Error> for LakeIoError {
    fn from(e: std::io::Error) -> Self {
        LakeIoError::Io(e)
    }
}

/// The sidecar format: table name → metadata.
#[derive(Debug, Default, Serialize, Deserialize)]
struct MetaSidecar {
    tables: std::collections::BTreeMap<String, TableMeta>,
}

/// Name of the metadata sidecar file inside a lake directory.
pub const META_FILE: &str = "_lake_meta.json";

/// Save every table of a lake as `<name>.csv` (the table's own name if it
/// already ends in `.csv`) plus a `_lake_meta.json` sidecar carrying the
/// non-empty metadata.
pub fn save_dir(lake: &DataLake, dir: &Path) -> Result<(), LakeIoError> {
    std::fs::create_dir_all(dir)?;
    let mut sidecar = MetaSidecar::default();
    for (_, t) in lake.iter() {
        let file = if t.name.ends_with(".csv") {
            t.name.clone()
        } else {
            format!("{}.csv", t.name)
        };
        // Keep paths flat and safe.
        let file = file.replace(['/', '\\'], "_");
        std::fs::write(dir.join(&file), csv::write_table(t))?;
        if !t.meta.is_empty() {
            sidecar.tables.insert(file, t.meta.clone());
        }
    }
    let json =
        serde_json::to_string_pretty(&sidecar).map_err(|e| LakeIoError::Meta(e.to_string()))?;
    std::fs::write(dir.join(META_FILE), json)?;
    Ok(())
}

/// Load a lake from a directory of CSVs (plus the optional sidecar).
/// Files are loaded in sorted name order so table ids are deterministic.
pub fn load_dir(dir: &Path) -> Result<DataLake, LakeIoError> {
    let sidecar: MetaSidecar = match std::fs::read_to_string(dir.join(META_FILE)) {
        Ok(json) => serde_json::from_str(&json).map_err(|e| LakeIoError::Meta(e.to_string()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => MetaSidecar::default(),
        Err(e) => return Err(e.into()),
    };
    let mut files: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".csv"))
        .collect();
    files.sort();
    let mut lake = DataLake::new();
    for file in files {
        let text = std::fs::read_to_string(dir.join(&file))?;
        let mut table = csv::read_table(file.clone(), &text).map_err(|error| LakeIoError::Csv {
            file: file.clone(),
            error,
        })?;
        if let Some(meta) = sidecar.tables.get(&file) {
            table.meta = meta.clone();
        }
        lake.add(table);
    }
    Ok(lake)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::Table;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("td_lake_io_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_lake() -> DataLake {
        let mut lake = DataLake::new();
        let mut t1 = Table::new(
            "cities.csv",
            vec![
                Column::from_strings("city", &["Boston", "Lyon"]),
                Column::from_strings("pop", &["650000", "520000"]),
            ],
        )
        .unwrap();
        t1.meta = TableMeta {
            title: "Cities".into(),
            description: "pop by city".into(),
            tags: vec!["geo".into()],
            source: "test".into(),
        };
        lake.add(t1);
        lake.add(
            Table::new(
                "notes", // no .csv suffix, no metadata
                vec![Column::from_strings(
                    "text",
                    &["a,b", "line\nbreak", "\"quoted\""],
                )],
            )
            .unwrap(),
        );
        lake
    }

    #[test]
    fn roundtrip_preserves_tables_and_metadata() {
        let dir = tmpdir("roundtrip");
        let lake = sample_lake();
        save_dir(&lake, &dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        let (_, cities) = loaded.get_by_name("cities.csv").unwrap();
        assert_eq!(cities.meta.title, "Cities");
        assert_eq!(
            cities.columns,
            lake.get_by_name("cities.csv").unwrap().1.columns
        );
        // Tricky CSV content survives.
        let (_, notes) = loaded.get_by_name("notes.csv").unwrap();
        assert_eq!(
            notes.columns[0].values,
            lake.get_by_name("notes").unwrap().1.columns[0].values
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_without_sidecar_defaults_metadata() {
        let dir = tmpdir("nosidecar");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.csv"), "a,b\n1,2\n").unwrap();
        let lake = load_dir(&dir).unwrap();
        assert_eq!(lake.len(), 1);
        assert!(lake.table(crate::lake::TableId(0)).meta.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_order_is_deterministic() {
        let dir = tmpdir("order");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["zz.csv", "aa.csv", "mm.csv"] {
            std::fs::write(dir.join(name), "x\n1\n").unwrap();
        }
        let lake = load_dir(&dir).unwrap();
        let names: Vec<&str> = lake.iter().map(|(_, t)| t.name.as_str()).collect();
        assert_eq!(names, vec!["aa.csv", "mm.csv", "zz.csv"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_csv_reports_the_file() {
        let dir = tmpdir("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.csv"), "a,b\n1\n").unwrap();
        let err = load_dir(&dir).unwrap_err();
        match err {
            LakeIoError::Csv { file, .. } => assert_eq!(file, "broken.csv"),
            other => panic!("unexpected error {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_io_error() {
        let err = load_dir(Path::new("/definitely/not/a/dir")).unwrap_err();
        assert!(matches!(err, LakeIoError::Io(_)));
    }
}
