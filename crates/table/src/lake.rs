//! The data lake: a catalog of tables with stable identifiers.

use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Stable identifier of a table within a lake (dense, insertion-ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of one column of one table in a lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Column index within the table.
    pub column: u32,
}

impl ColumnRef {
    /// Construct from a table id and column index.
    #[must_use]
    pub fn new(table: TableId, column: usize) -> Self {
        ColumnRef {
            table,
            column: column as u32,
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.column)
    }
}

/// A collection of tables with stable ids — the object every discovery
/// component (understanding, indexing, search, navigation) operates over.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataLake {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
}

impl DataLake {
    /// An empty lake.
    #[must_use]
    pub fn new() -> Self {
        DataLake::default()
    }

    /// Add a table, returning its id. Duplicate names are allowed (lakes
    /// have them); `get_by_name` returns the first.
    pub fn add(&mut self, table: Table) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.by_name.entry(table.name.clone()).or_insert(id);
        self.tables.push(table);
        id
    }

    /// Number of tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the lake has no tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of columns across all tables.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.tables.iter().map(Table::num_cols).sum()
    }

    /// Look up a table by id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this lake.
    #[must_use]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Look up a table by id, returning `None` for foreign ids.
    #[must_use]
    pub fn get(&self, id: TableId) -> Option<&Table> {
        self.tables.get(id.0 as usize)
    }

    /// First table with the given name.
    #[must_use]
    pub fn get_by_name(&self, name: &str) -> Option<(TableId, &Table)> {
        self.by_name.get(name).map(|&id| (id, self.table(id)))
    }

    /// Resolve a column reference.
    ///
    /// # Panics
    /// Panics on a foreign reference.
    #[must_use]
    pub fn column(&self, r: ColumnRef) -> &crate::column::Column {
        &self.table(r.table).columns[r.column as usize]
    }

    /// Iterate `(id, table)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// All table ids.
    pub fn ids(&self) -> impl Iterator<Item = TableId> {
        (0..self.tables.len() as u32).map(TableId)
    }

    /// Iterate every column of every table.
    pub fn columns(&self) -> impl Iterator<Item = (ColumnRef, &crate::column::Column)> {
        self.iter().flat_map(|(id, t)| {
            t.columns
                .iter()
                .enumerate()
                .map(move |(ci, c)| (ColumnRef::new(id, ci), c))
        })
    }
}

impl std::ops::Index<TableId> for DataLake {
    type Output = Table;
    fn index(&self, id: TableId) -> &Table {
        self.table(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn small_lake() -> DataLake {
        let mut lake = DataLake::new();
        lake.add(Table::new("a", vec![Column::from_strings("x", &["1", "2"])]).unwrap());
        lake.add(
            Table::new(
                "b",
                vec![
                    Column::from_strings("y", &["3"]),
                    Column::from_strings("z", &["4"]),
                ],
            )
            .unwrap(),
        );
        lake
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let lake = small_lake();
        assert_eq!(lake.len(), 2);
        assert_eq!(lake.table(TableId(0)).name, "a");
        assert_eq!(lake.table(TableId(1)).name, "b");
    }

    #[test]
    fn lookup_by_name_returns_first() {
        let mut lake = small_lake();
        let dup = Table::new("a", vec![Column::from_strings("x", &["9"])]).unwrap();
        lake.add(dup);
        let (id, _) = lake.get_by_name("a").unwrap();
        assert_eq!(id, TableId(0));
        assert!(lake.get_by_name("zzz").is_none());
    }

    #[test]
    fn column_ref_resolution() {
        let lake = small_lake();
        let r = ColumnRef::new(TableId(1), 1);
        assert_eq!(lake.column(r).name, "z");
        assert_eq!(r.to_string(), "T1.c1");
    }

    #[test]
    fn columns_iterates_all() {
        let lake = small_lake();
        assert_eq!(lake.num_columns(), 3);
        let refs: Vec<ColumnRef> = lake.columns().map(|(r, _)| r).collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0], ColumnRef::new(TableId(0), 0));
        assert_eq!(refs[2], ColumnRef::new(TableId(1), 1));
    }

    #[test]
    fn index_operator() {
        let lake = small_lake();
        assert_eq!(lake[TableId(0)].name, "a");
    }
}
