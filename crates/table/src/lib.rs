//! # td-table — the data-lake substrate
//!
//! Tables, typed values, CSV ingestion, a lake catalog, column/table
//! profiling, and a synthetic lake generator with exact ground truth.
//!
//! This crate is the foundation of the `lakehouse-discovery` workspace,
//! which reproduces the architecture of *"Table Discovery in Data Lakes:
//! State-of-the-art and Future Directions"* (Fan, Wang, Li, Miller,
//! SIGMOD-Companion 2023). Every higher layer — sketches, indices,
//! understanding, search, navigation, applications — operates on the types
//! defined here.
//!
//! ## Quick tour
//!
//! ```
//! use td_table::{csv, DataLake};
//!
//! let table = csv::read_table("cities.csv", "city,population\nBoston,650000\n").unwrap();
//! let mut lake = DataLake::new();
//! let id = lake.add(table);
//! assert_eq!(lake.table(id).num_rows(), 1);
//! ```
//!
//! ## Synthetic lakes
//!
//! ```
//! use td_table::gen::{LakeGenConfig, LakeGenerator};
//!
//! let gl = LakeGenerator::standard()
//!     .generate(&LakeGenConfig { num_tables: 10, ..LakeGenConfig::default() });
//! assert_eq!(gl.lake.len(), 10);
//! // Every generated column has a ground-truth semantic domain:
//! let (col_ref, _) = gl.lake.columns().next().unwrap();
//! assert!(gl.domain_of(col_ref).is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod column;
pub mod csv;
pub mod gen;
pub mod io;
pub mod lake;
pub mod profile;
pub mod table;
pub mod value;

pub use column::Column;
pub use lake::{ColumnRef, DataLake, TableId};
pub use profile::{ColumnProfile, LakeProfile, TableProfile};
pub use table::{Table, TableError, TableMeta};
pub use value::{PrimitiveType, Value};
