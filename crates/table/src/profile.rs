//! Column and table profiles (statistics).
//!
//! Profiling is the first offline pass a data-lake management system runs
//! over raw tables; downstream components (annotation, indexing, search
//! cost models) consume these statistics instead of rescanning values.

use crate::column::Column;
use crate::lake::{ColumnRef, DataLake};
use crate::table::Table;
use crate::value::PrimitiveType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Header name.
    pub name: String,
    /// Unified primitive type.
    pub ty: PrimitiveType,
    /// Total rows.
    pub rows: usize,
    /// Null cells.
    pub nulls: usize,
    /// Exact number of distinct non-null values.
    pub distinct: usize,
    /// Mean of numeric values (0 if none).
    pub mean: f64,
    /// Standard deviation of numeric values (0 if fewer than 2).
    pub std_dev: f64,
    /// Min of numeric values.
    pub min: Option<f64>,
    /// Max of numeric values.
    pub max: Option<f64>,
    /// Mean text length over non-null values rendered as text.
    pub mean_text_len: f64,
}

impl ColumnProfile {
    /// Profile a column with an exact distinct count.
    #[must_use]
    pub fn of(column: &Column) -> Self {
        let rows = column.len();
        let nulls = column.null_count();
        let distinct = column.num_distinct();
        let nums: Vec<f64> = column
            .numeric_values()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let (mean, std_dev, min, max) = if nums.is_empty() {
            (0.0, 0.0, None, None)
        } else {
            let n = nums.len() as f64;
            let mean = nums.iter().sum::<f64>() / n;
            let var = nums.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                / if nums.len() > 1 { n - 1.0 } else { 1.0 };
            let min = nums.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (mean, var.sqrt(), Some(min), Some(max))
        };
        let mut text_len_sum = 0usize;
        let mut text_n = 0usize;
        for v in &column.values {
            if let Some(t) = v.as_text() {
                text_len_sum += t.chars().count();
                text_n += 1;
            }
        }
        let mean_text_len = if text_n == 0 {
            0.0
        } else {
            text_len_sum as f64 / text_n as f64
        };
        ColumnProfile {
            name: column.name.clone(),
            ty: column.primitive_type(),
            rows,
            nulls,
            distinct,
            mean,
            std_dev,
            min,
            max,
            mean_text_len,
        }
    }

    /// Fraction of non-null cells (0 for an empty column).
    #[must_use]
    pub fn completeness(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.rows as f64
        }
    }

    /// Distinct ratio: distinct / non-null rows. 1.0 means key-like.
    #[must_use]
    pub fn uniqueness(&self) -> f64 {
        let non_null = self.rows - self.nulls;
        if non_null == 0 {
            0.0
        } else {
            self.distinct as f64 / non_null as f64
        }
    }

    /// Heuristic: looks like a candidate key (distinct, complete, non-empty).
    #[must_use]
    pub fn is_key_like(&self) -> bool {
        self.rows > 0 && self.uniqueness() >= 0.999 && self.completeness() >= 0.95
    }
}

/// Profile for one table: shape plus per-column profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableProfile {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Per-column profiles.
    pub columns: Vec<ColumnProfile>,
}

impl TableProfile {
    /// Profile every column of a table.
    #[must_use]
    pub fn of(table: &Table) -> Self {
        TableProfile {
            name: table.name.clone(),
            rows: table.num_rows(),
            columns: table.columns.iter().map(ColumnProfile::of).collect(),
        }
    }

    /// Indices of key-like columns.
    #[must_use]
    pub fn key_candidates(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_key_like())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Profiles for every column of every table in a lake.
///
/// Serialized as a list of `(column, profile)` pairs so text formats with
/// string-only map keys (JSON) can carry it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(
    from = "Vec<(ColumnRef, ColumnProfile)>",
    into = "Vec<(ColumnRef, ColumnProfile)>"
)]
pub struct LakeProfile {
    profiles: HashMap<ColumnRef, ColumnProfile>,
}

impl From<Vec<(ColumnRef, ColumnProfile)>> for LakeProfile {
    fn from(pairs: Vec<(ColumnRef, ColumnProfile)>) -> Self {
        LakeProfile {
            profiles: pairs.into_iter().collect(),
        }
    }
}

impl From<LakeProfile> for Vec<(ColumnRef, ColumnProfile)> {
    fn from(p: LakeProfile) -> Self {
        let mut v: Vec<(ColumnRef, ColumnProfile)> = p.profiles.into_iter().collect();
        v.sort_by_key(|(r, _)| *r);
        v
    }
}

impl LakeProfile {
    /// Profile the whole lake.
    #[must_use]
    pub fn of(lake: &DataLake) -> Self {
        let mut profiles = HashMap::with_capacity(lake.num_columns());
        for (r, c) in lake.columns() {
            profiles.insert(r, ColumnProfile::of(c));
        }
        LakeProfile { profiles }
    }

    /// Profile of a single column.
    #[must_use]
    pub fn get(&self, r: ColumnRef) -> Option<&ColumnProfile> {
        self.profiles.get(&r)
    }

    /// Number of profiled columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if nothing was profiled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterate all `(column, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnRef, &ColumnProfile)> {
        self.profiles.iter().map(|(&r, p)| (r, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_stats() {
        let c = Column::from_strings("n", &["1", "2", "3", "4"]);
        let p = ColumnProfile::of(&c);
        assert_eq!(p.mean, 2.5);
        assert!((p.std_dev - 1.2909944).abs() < 1e-6);
        assert_eq!(p.min, Some(1.0));
        assert_eq!(p.max, Some(4.0));
        assert_eq!(p.ty, PrimitiveType::Int);
    }

    #[test]
    fn text_stats_and_completeness() {
        let c = Column::from_strings("t", &["ab", "abcd", ""]);
        let p = ColumnProfile::of(&c);
        assert_eq!(p.nulls, 1);
        assert!((p.completeness() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.mean_text_len, 3.0);
        assert_eq!(p.min, None);
    }

    #[test]
    fn key_detection() {
        let key = Column::from_strings("id", &["1", "2", "3", "4", "5"]);
        assert!(ColumnProfile::of(&key).is_key_like());
        let dup = Column::from_strings("id", &["1", "1", "2", "3", "4"]);
        assert!(!ColumnProfile::of(&dup).is_key_like());
    }

    #[test]
    fn table_profile_finds_key_candidates() {
        let t = Table::new(
            "t",
            vec![
                Column::from_strings("id", &["1", "2", "3"]),
                Column::from_strings("city", &["a", "a", "b"]),
            ],
        )
        .unwrap();
        let p = TableProfile::of(&t);
        assert_eq!(p.key_candidates(), vec![0]);
        assert_eq!(p.rows, 3);
    }

    #[test]
    fn lake_profile_covers_all_columns() {
        let mut lake = DataLake::new();
        let t = Table::new("t", vec![Column::from_strings("a", &["1"])]).unwrap();
        let id = lake.add(t);
        let lp = LakeProfile::of(&lake);
        assert_eq!(lp.len(), 1);
        assert!(lp.get(ColumnRef::new(id, 0)).is_some());
    }

    #[test]
    fn empty_column_profile_is_sane() {
        let c = Column::new("e", vec![]);
        let p = ColumnProfile::of(&c);
        assert_eq!(p.completeness(), 0.0);
        assert_eq!(p.uniqueness(), 0.0);
        assert!(!p.is_key_like());
    }
}
