//! Tables and table metadata.

use crate::column::Column;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Free-form table metadata.
///
/// Data-lake metadata is notoriously unreliable (the tutorial's Section 2.1
/// motivation for data-driven discovery): any field may be missing,
/// inconsistent, or wrong. Keyword search operates on this; value-based
/// search deliberately does not.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Human-readable title, possibly empty.
    pub title: String,
    /// Longer description, possibly empty.
    pub description: String,
    /// Topic tags, possibly empty.
    pub tags: Vec<String>,
    /// Originating source/portal, possibly empty.
    pub source: String,
}

impl TableMeta {
    /// All metadata text concatenated for keyword indexing.
    #[must_use]
    pub fn full_text(&self) -> String {
        let mut s = String::with_capacity(
            self.title.len() + self.description.len() + self.source.len() + 16,
        );
        s.push_str(&self.title);
        s.push(' ');
        s.push_str(&self.description);
        for t in &self.tags {
            s.push(' ');
            s.push_str(t);
        }
        s.push(' ');
        s.push_str(&self.source);
        s
    }

    /// True if every metadata field is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.title.is_empty()
            && self.description.is_empty()
            && self.tags.is_empty()
            && self.source.is_empty()
    }
}

/// A relational table: named columns of equal length plus metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (file name in a lake).
    pub name: String,
    /// Columns; all must share the same row count.
    pub columns: Vec<Column>,
    /// Optional metadata.
    pub meta: TableMeta,
}

/// Errors constructing or manipulating tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Columns with differing lengths were supplied.
    RaggedColumns {
        /// Length of the first column.
        expected: usize,
        /// Offending column name.
        column: String,
        /// Its length.
        actual: usize,
    },
    /// A referenced column name does not exist.
    NoSuchColumn(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedColumns {
                expected,
                column,
                actual,
            } => write!(
                f,
                "column {column:?} has {actual} rows, expected {expected}"
            ),
            TableError::NoSuchColumn(c) => write!(f, "no such column: {c:?}"),
        }
    }
}

impl std::error::Error for TableError {}

impl Table {
    /// Create a table, validating that all columns have equal length.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self, TableError> {
        let expected = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != expected {
                return Err(TableError::RaggedColumns {
                    expected,
                    column: c.name.clone(),
                    actual: c.len(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            columns,
            meta: TableMeta::default(),
        })
    }

    /// Create a table and attach metadata.
    pub fn with_meta(
        name: impl Into<String>,
        columns: Vec<Column>,
        meta: TableMeta,
    ) -> Result<Self, TableError> {
        let mut t = Table::new(name, columns)?;
        t.meta = meta;
        Ok(t)
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column header names in order.
    #[must_use]
    pub fn headers(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Look up a column by name (first match).
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of a column by name (first match).
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// One row as a vector of value references.
    ///
    /// # Panics
    /// Panics if `row >= num_rows()`.
    #[must_use]
    pub fn row(&self, row: usize) -> Vec<&Value> {
        self.columns.iter().map(|c| &c.values[row]).collect()
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<&Value>> + '_ {
        (0..self.num_rows()).map(move |r| self.row(r))
    }

    /// Project a subset of columns by index, preserving order.
    ///
    /// Out-of-range indices are an error in the caller; this panics.
    #[must_use]
    pub fn project(&self, cols: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            columns: cols.iter().map(|&i| self.columns[i].clone()).collect(),
            meta: self.meta.clone(),
        }
    }

    /// Select a subset of rows by index, preserving order.
    #[must_use]
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    values: rows.iter().map(|&r| c.values[r].clone()).collect(),
                })
                .collect(),
            meta: self.meta.clone(),
        }
    }

    /// Vertically concatenate another table with an explicit column
    /// alignment: `alignment[i] = Some(j)` maps our column `i` to the other
    /// table's column `j`; `None` pads with nulls.
    ///
    /// This is the primitive behind union-table materialization and table
    /// stitching.
    #[must_use]
    pub fn union_with(&self, other: &Table, alignment: &[Option<usize>]) -> Table {
        assert_eq!(
            alignment.len(),
            self.num_cols(),
            "alignment must cover all columns"
        );
        let mut columns = Vec::with_capacity(self.num_cols());
        for (i, col) in self.columns.iter().enumerate() {
            let mut values = col.values.clone();
            match alignment[i] {
                Some(j) => values.extend(other.columns[j].values.iter().cloned()),
                None => values.extend(std::iter::repeat_n(Value::Null, other.num_rows())),
            }
            columns.push(Column {
                name: col.name.clone(),
                values,
            });
        }
        Table {
            name: format!("{}+{}", self.name, other.name),
            columns,
            meta: self.meta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_strings("id", &["1", "2", "3"]),
                Column::from_strings("city", &["boston", "seattle", "austin"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_rejects_ragged_columns() {
        let err = Table::new(
            "bad",
            vec![
                Column::from_strings("a", &["1"]),
                Column::from_strings("b", &["1", "2"]),
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TableError::RaggedColumns {
                expected: 1,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn shape_accessors() {
        let t = t();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.headers(), vec!["id", "city"]);
    }

    #[test]
    fn column_lookup_by_name() {
        let t = t();
        assert_eq!(
            t.column("city").unwrap().values[0],
            Value::Text("boston".into())
        );
        assert!(t.column("nope").is_none());
        assert_eq!(t.column_index("city"), Some(1));
    }

    #[test]
    fn row_access() {
        let t = t();
        let r = t.row(1);
        assert_eq!(*r[0], Value::Int(2));
        assert_eq!(*r[1], Value::Text("seattle".into()));
        assert_eq!(t.rows().count(), 3);
    }

    #[test]
    fn project_and_select() {
        let t = t();
        let p = t.project(&[1]);
        assert_eq!(p.headers(), vec!["city"]);
        let s = t.select_rows(&[2, 0]);
        assert_eq!(*s.row(0)[0], Value::Int(3));
        assert_eq!(*s.row(1)[0], Value::Int(1));
    }

    #[test]
    fn union_with_alignment_and_null_padding() {
        let a = t();
        let b = Table::new("b", vec![Column::from_strings("town", &["nyc"])]).unwrap();
        // align city -> town, id -> nothing
        let u = a.union_with(&b, &[None, Some(0)]);
        assert_eq!(u.num_rows(), 4);
        assert!(u.columns[0].values[3].is_null());
        assert_eq!(u.columns[1].values[3], Value::Text("nyc".into()));
    }

    #[test]
    fn meta_full_text_concatenates() {
        let m = TableMeta {
            title: "City budgets".into(),
            description: "annual".into(),
            tags: vec!["finance".into()],
            source: "portal".into(),
        };
        let ft = m.full_text();
        for w in ["City", "annual", "finance", "portal"] {
            assert!(ft.contains(w));
        }
        assert!(!m.is_empty());
        assert!(TableMeta::default().is_empty());
    }
}
