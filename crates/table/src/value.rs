//! Cell values and primitive type inference.
//!
//! Data-lake tables arrive in primitive formats (most often CSV), so every
//! cell starts life as a string. [`Value::parse`] performs the light-weight
//! syntactic type inference that a lake ingestion pipeline applies before any
//! semantic understanding happens (semantic types are the job of
//! `td-understand`).

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The primitive (syntactic) type of a cell or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrimitiveType {
    /// No non-null cell observed.
    Null,
    /// Boolean-like (`true`/`false`, `yes`/`no`, `0`/`1` when declared).
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Anything else.
    Text,
}

impl PrimitiveType {
    /// The most specific type that can represent both inputs.
    ///
    /// Used to fold per-cell types into a column type: `Int` and `Float`
    /// unify to `Float`, anything else involving `Text` unifies to `Text`,
    /// and `Null` is the identity.
    #[must_use]
    pub fn unify(self, other: PrimitiveType) -> PrimitiveType {
        use PrimitiveType::*;
        match (self, other) {
            (Null, t) | (t, Null) => t,
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            _ => Text,
        }
    }

    /// True if the type is numeric (`Int` or `Float`).
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, PrimitiveType::Int | PrimitiveType::Float)
    }
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimitiveType::Null => "null",
            PrimitiveType::Bool => "bool",
            PrimitiveType::Int => "int",
            PrimitiveType::Float => "float",
            PrimitiveType::Text => "text",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Value` implements `Eq` and `Hash` (floats compare by their bit pattern,
/// with `-0.0` normalized to `0.0` and all NaNs collapsed to one bit
/// pattern), so values can be used directly as set elements in overlap
/// computations and sketches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing / empty cell.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Free text.
    Text(String),
}

impl Value {
    /// Parse a raw string cell into a typed value.
    ///
    /// Empty strings and the common null spellings (`na`, `n/a`, `null`,
    /// `none`, `-`, case-insensitive) become [`Value::Null`]. Integers are
    /// preferred over floats; `true`/`false` (case-insensitive) become
    /// booleans. Leading/trailing whitespace is ignored for inference but
    /// preserved in the `Text` fallback only after trimming (lake CSVs are
    /// routinely padded).
    #[must_use]
    pub fn parse(raw: &str) -> Value {
        let s = raw.trim();
        if s.is_empty() {
            return Value::Null;
        }
        match s.to_ascii_lowercase().as_str() {
            "na" | "n/a" | "null" | "none" | "-" | "nan" => return Value::Null,
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = s.parse::<i64>() {
            return Value::Int(i);
        }
        // Reject float spellings like "inf" that are usually text in tables.
        if s.bytes()
            .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            if let Ok(f) = s.parse::<f64>() {
                if f.is_finite() {
                    return Value::Float(f);
                }
            }
        }
        Value::Text(s.to_string())
    }

    /// The primitive type of this value.
    #[must_use]
    pub fn primitive_type(&self) -> PrimitiveType {
        match self {
            Value::Null => PrimitiveType::Null,
            Value::Bool(_) => PrimitiveType::Bool,
            Value::Int(_) => PrimitiveType::Int,
            Value::Float(_) => PrimitiveType::Float,
            Value::Text(_) => PrimitiveType::Text,
        }
    }

    /// True for [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (`Int` widened to `f64`), or `None`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view: borrowed for `Text`, rendered for everything else,
    /// `None` for `Null`.
    #[must_use]
    pub fn as_text(&self) -> Option<Cow<'_, str>> {
        match self {
            Value::Null => None,
            Value::Text(s) => Some(Cow::Borrowed(s)),
            other => Some(Cow::Owned(other.to_string())),
        }
    }

    /// Canonical token used by set-overlap search and sketches: the value
    /// rendered to text, lower-cased. `None` for nulls (nulls never join).
    #[must_use]
    pub fn join_token(&self) -> Option<String> {
        self.as_text().map(|t| t.to_lowercase())
    }

    /// Normalized float bits: `-0.0 → 0.0`, all NaNs to one pattern.
    fn float_key(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0.0_f64.to_bits()
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_key(*a) == Value::float_key(*b),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::float_key(*f).hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn parse_infers_null_spellings() {
        for s in ["", "  ", "NA", "n/a", "NULL", "none", "-", "NaN"] {
            assert_eq!(Value::parse(s), Value::Null, "input {s:?}");
        }
    }

    #[test]
    fn parse_infers_bool() {
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse("FALSE"), Value::Bool(false));
    }

    #[test]
    fn parse_prefers_int_over_float() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("42.5"), Value::Float(42.5));
        assert_eq!(Value::parse("1e3"), Value::Float(1000.0));
    }

    #[test]
    fn parse_rejects_textual_float_spellings() {
        assert_eq!(Value::parse("inf"), Value::Text("inf".into()));
        assert_eq!(Value::parse("infinity"), Value::Text("infinity".into()));
    }

    #[test]
    fn parse_trims_whitespace() {
        assert_eq!(Value::parse("  12 "), Value::Int(12));
        assert_eq!(Value::parse(" boston "), Value::Text("boston".into()));
    }

    #[test]
    fn float_equality_normalizes_zero_and_nan() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(-f64::NAN));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn int_and_float_are_distinct_values() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn unify_widens_toward_text() {
        use PrimitiveType::*;
        assert_eq!(Int.unify(Float), Float);
        assert_eq!(Null.unify(Bool), Bool);
        assert_eq!(Bool.unify(Int), Text);
        assert_eq!(Text.unify(Null), Text);
        assert_eq!(Int.unify(Int), Int);
    }

    #[test]
    fn join_token_lowercases_and_skips_null() {
        assert_eq!(Value::Text("Boston".into()).join_token().unwrap(), "boston");
        assert_eq!(Value::Int(5).join_token().unwrap(), "5");
        assert!(Value::Null.join_token().is_none());
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn display_roundtrips_through_parse_for_scalars() {
        for v in [Value::Int(12), Value::Float(3.25), Value::Bool(true)] {
            assert_eq!(Value::parse(&v.to_string()), v);
        }
    }
}
