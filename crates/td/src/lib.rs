//! # td — table discovery in data lakes
//!
//! The facade crate of the `lakehouse-discovery` workspace, a from-scratch
//! Rust reproduction of the system architecture surveyed in *"Table
//! Discovery in Data Lakes: State-of-the-art and Future Directions"*
//! (Fan, Wang, Li, Miller; SIGMOD-Companion 2023).
//!
//! Re-exports every layer:
//!
//! * [`table`] — the data-lake substrate (tables, CSV, catalog, profiles,
//!   synthetic lake generation with ground truth).
//! * [`sketch`] — MinHash, bottom-k, HyperLogLog, QCR correlation sketches.
//! * [`index`] — inverted lists, MinHash LSH, LSH Ensemble, HNSW, BM25.
//! * [`embed`] — deterministic pseudo-embeddings and column encoders.
//! * [`understand`] — type detection, domain discovery, KB, annotation.
//! * [`core`] — the search engine: keyword, joinable, unionable search.
//! * [`nav`] — linkage graphs, organizations, online hierarchies,
//!   homograph detection.
//! * [`apps`] — feature augmentation, training-set discovery, stitching.
//! * [`obs`] — zero-dependency metrics registry, spans, and exporters
//!   wired through every layer above.
//! * [`store`] — persistent snapshots + write-ahead log: restart a
//!   pipeline by restore + replay instead of rebuild.
//! * [`serve`] — the concurrent query-serving layer: TCP protocol,
//!   admission control, result caching over one shared pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use td::table::gen::{LakeGenConfig, LakeGenerator};
//! use td::core::{DiscoveryPipeline, PipelineConfig};
//!
//! let gl = LakeGenerator::standard()
//!     .generate(&LakeGenConfig { num_tables: 20, ..Default::default() });
//! let pipeline = DiscoveryPipeline::build(
//!     &gl.lake, &gl.registry, &[], &PipelineConfig::default());
//! let hits = pipeline.search_keyword("geography dataset", 5);
//! assert!(hits.len() <= 5);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub use td_apps as apps;
pub use td_core as core;
pub use td_embed as embed;
pub use td_index as index;
pub use td_nav as nav;
pub use td_obs as obs;
pub use td_serve as serve;
pub use td_sketch as sketch;
pub use td_store as store;
pub use td_table as table;
pub use td_understand as understand;
