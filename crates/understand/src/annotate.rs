//! Table annotation against a knowledge base (tutorial §2.2; Limaye et al.
//! VLDB 2010, Venetis et al. VLDB 2011).
//!
//! Annotates (i) columns with KB types by majority vote over cell lookups,
//! and (ii) column *pairs* with KB binary relations by vote over row pairs
//! — the relationship annotation SANTOS builds its union semantics on.

use crate::kb::{KnowledgeBase, RelationId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use td_table::gen::domains::DomainId;
use td_table::Table;

/// A column-type annotation with its vote support.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnTypeAnnotation {
    /// Winning type.
    pub ty: DomainId,
    /// Fraction of non-null cells voting for it.
    pub support: f64,
}

/// A relation annotation between two columns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationAnnotation {
    /// Subject column index.
    pub subject: usize,
    /// Object column index.
    pub object: usize,
    /// Winning relation.
    pub relation: RelationId,
    /// Fraction of rows voting for it.
    pub support: f64,
}

/// All annotations of one table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableAnnotation {
    /// Per-column type candidates above the support threshold, sorted by
    /// descending support. Ambiguous columns (homograph-heavy) legitimately
    /// carry several candidates; an empty list means no cell resolved.
    pub column_types: Vec<Vec<ColumnTypeAnnotation>>,
    /// Relation annotations for ordered column pairs that cleared the
    /// threshold.
    pub relations: Vec<RelationAnnotation>,
}

impl TableAnnotation {
    /// The best (highest-support) type of a column, if any.
    #[must_use]
    pub fn best_type(&self, column: usize) -> Option<ColumnTypeAnnotation> {
        self.column_types
            .get(column)
            .and_then(|c| c.first().copied())
    }
}

/// Annotation thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnnotateConfig {
    /// Minimum vote fraction for a column type.
    pub min_type_support: f64,
    /// Minimum vote fraction for a relation.
    pub min_relation_support: f64,
    /// Max rows sampled per table (annotation is an offline pass; sampling
    /// keeps it linear at lake scale).
    pub max_rows: usize,
}

impl Default for AnnotateConfig {
    fn default() -> Self {
        AnnotateConfig {
            min_type_support: 0.3,
            min_relation_support: 0.2,
            max_rows: 256,
        }
    }
}

/// Annotate one table against a KB.
#[must_use]
pub fn annotate_table(table: &Table, kb: &KnowledgeBase, cfg: &AnnotateConfig) -> TableAnnotation {
    let rows = table.num_rows().min(cfg.max_rows);

    // Column types: vote per cell.
    let mut column_types = Vec::with_capacity(table.num_cols());
    for col in &table.columns {
        let mut votes: HashMap<DomainId, usize> = HashMap::new();
        let mut resolved = 0usize;
        for v in col.values.iter().take(rows) {
            let Some(text) = v.as_text() else { continue };
            let types = kb.types_of(&text);
            if !types.is_empty() {
                resolved += 1;
                for &t in types {
                    *votes.entry(t).or_insert(0) += 1;
                }
            }
        }
        let non_null = col
            .values
            .iter()
            .take(rows)
            .filter(|v| !v.is_null())
            .count();
        let mut candidates: Vec<ColumnTypeAnnotation> = votes
            .into_iter()
            .map(|(ty, n)| ColumnTypeAnnotation {
                ty,
                support: n as f64 / non_null.max(1) as f64,
            })
            .filter(|a| a.support >= cfg.min_type_support && resolved > 0)
            .collect();
        candidates.sort_by(|a, b| b.support.total_cmp(&a.support).then(a.ty.0.cmp(&b.ty.0)));
        column_types.push(candidates);
    }

    // Relations: vote per row over ordered column pairs.
    let mut relations = Vec::new();
    for s in 0..table.num_cols() {
        for o in 0..table.num_cols() {
            if s == o {
                continue;
            }
            let mut votes: HashMap<RelationId, usize> = HashMap::new();
            let mut considered = 0usize;
            for r in 0..rows {
                let (sv, ov) = (&table.columns[s].values[r], &table.columns[o].values[r]);
                let (Some(st), Some(ot)) = (sv.as_text(), ov.as_text()) else {
                    continue;
                };
                considered += 1;
                for &rel in kb.relations_of(&st, &ot) {
                    *votes.entry(rel).or_insert(0) += 1;
                }
            }
            if considered == 0 {
                continue;
            }
            if let Some((rel, n)) = votes
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            {
                let support = n as f64 / considered as f64;
                if support >= cfg.min_relation_support {
                    relations.push(RelationAnnotation {
                        subject: s,
                        object: o,
                        relation: rel,
                        support,
                    });
                }
            }
        }
    }

    TableAnnotation {
        column_types,
        relations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KbConfig;
    use td_table::gen::bench_union::RelationSpec;
    use td_table::gen::domains::DomainRegistry;
    use td_table::{Column, Table};

    fn setup() -> (DomainRegistry, KnowledgeBase, RelationSpec) {
        let r = DomainRegistry::standard();
        let spec = RelationSpec {
            key_dom: r.id("city").unwrap(),
            attr_dom: r.id("country").unwrap(),
            rel_id: 4,
        };
        let kb = KnowledgeBase::build(
            &r,
            &[spec],
            &KbConfig {
                type_coverage: 1.0,
                relation_coverage: 1.0,
                vocab_per_domain: 2_048,
                facts_per_relation: 500,
                ..Default::default()
            },
        );
        (r, kb, spec)
    }

    fn relation_table(r: &DomainRegistry, spec: &RelationSpec, n: u64) -> Table {
        Table::new(
            "t",
            vec![
                Column::new("place", (0..n).map(|i| r.value(spec.key_dom, i)).collect()),
                Column::new(
                    "in",
                    (0..n)
                        .map(|i| r.value(spec.attr_dom, spec.attr_index(i)))
                        .collect(),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn annotates_column_types() {
        let (r, kb, spec) = setup();
        let t = relation_table(&r, &spec, 40);
        let ann = annotate_table(&t, &kb, &AnnotateConfig::default());
        let city = r.id("city").unwrap();
        let country = r.id("country").unwrap();
        assert_eq!(ann.best_type(0).unwrap().ty, city);
        assert_eq!(ann.best_type(1).unwrap().ty, country);
        assert!(ann.best_type(0).unwrap().support > 0.9);
    }

    #[test]
    fn annotates_the_relation_with_direction() {
        let (r, kb, spec) = setup();
        let t = relation_table(&r, &spec, 40);
        let ann = annotate_table(&t, &kb, &AnnotateConfig::default());
        let fwd: Vec<_> = ann
            .relations
            .iter()
            .filter(|x| x.subject == 0 && x.object == 1)
            .collect();
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].relation, 4);
        assert!(fwd[0].support > 0.9);
        // Reverse direction asserts nothing.
        assert!(!ann
            .relations
            .iter()
            .any(|x| x.subject == 1 && x.object == 0));
    }

    #[test]
    fn unrelated_columns_get_no_relation() {
        let (r, kb, _) = setup();
        let gene = r.id("gene").unwrap();
        let t = Table::new(
            "t",
            vec![
                Column::new("g1", (0..20).map(|i| r.value(gene, i)).collect()),
                Column::new("g2", (100..120).map(|i| r.value(gene, i)).collect()),
            ],
        )
        .unwrap();
        let ann = annotate_table(&t, &kb, &AnnotateConfig::default());
        assert!(ann.relations.is_empty());
    }

    #[test]
    fn oov_column_gets_no_type() {
        let (_, kb, _) = setup();
        let t = Table::new("t", vec![Column::from_strings("x", &["zz1", "zz2", "zz3"])]).unwrap();
        let ann = annotate_table(&t, &kb, &AnnotateConfig::default());
        assert!(ann.best_type(0).is_none());
    }

    #[test]
    fn support_threshold_filters_weak_votes() {
        let (r, kb, _) = setup();
        let city = r.id("city").unwrap();
        // 2 known cities drowned in 18 OOV strings: support 0.1 < 0.3.
        let mut cells: Vec<String> = (0..18).map(|i| format!("junk{i}")).collect();
        cells.push(r.value(city, 0).to_string());
        cells.push(r.value(city, 1).to_string());
        let t = Table::new("t", vec![Column::from_strings("x", &cells)]).unwrap();
        let ann = annotate_table(&t, &kb, &AnnotateConfig::default());
        assert!(ann.best_type(0).is_none());
        let loose = annotate_table(
            &t,
            &kb,
            &AnnotateConfig {
                min_type_support: 0.05,
                ..Default::default()
            },
        );
        assert_eq!(loose.best_type(0).unwrap().ty, city);
    }

    #[test]
    fn partial_kb_coverage_still_annotates_via_majority() {
        let r = DomainRegistry::standard();
        let spec = RelationSpec {
            key_dom: r.id("city").unwrap(),
            attr_dom: r.id("country").unwrap(),
            rel_id: 4,
        };
        let kb = KnowledgeBase::build(
            &r,
            &[spec],
            &KbConfig {
                type_coverage: 0.6,
                relation_coverage: 0.6,
                vocab_per_domain: 2_048,
                facts_per_relation: 500,
                ..Default::default()
            },
        );
        let t = relation_table(&r, &spec, 60);
        let ann = annotate_table(&t, &kb, &AnnotateConfig::default());
        assert!(ann.best_type(0).is_some());
        assert!(!ann.relations.is_empty());
        // Support reflects coverage, roughly 0.6.
        let s = ann.relations[0].support;
        assert!((0.4..0.8).contains(&s), "support {s}");
    }
}
