//! Data-driven domain discovery (tutorial §2.2; Ota et al. VLDB 2020,
//! Li et al. KDD 2017).
//!
//! Rather than labeling columns with types, domain discovery collects the
//! *values* that belong to one semantic domain by clustering columns whose
//! value sets overlap. The implementation is unsupervised: an inverted
//! index proposes column pairs that share values, exact Jaccard gates an
//! edge, and union-find components become domains.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use td_table::{ColumnRef, DataLake};

/// Configuration for [`discover_domains`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DomainDiscoveryConfig {
    /// Minimum Jaccard between two columns' value sets to link them.
    pub jaccard_threshold: f64,
    /// Minimum columns per reported domain.
    pub min_columns: usize,
    /// Skip columns with fewer distinct values than this (too little
    /// evidence to cluster on).
    pub min_distinct: usize,
}

impl Default for DomainDiscoveryConfig {
    fn default() -> Self {
        DomainDiscoveryConfig {
            jaccard_threshold: 0.1,
            min_columns: 2,
            min_distinct: 3,
        }
    }
}

/// A discovered domain: member columns and the union of their values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveredDomain {
    /// Columns assigned to this domain.
    pub columns: Vec<ColumnRef>,
    /// All values observed across the member columns.
    pub values: HashSet<String>,
    /// A representative value (the most frequent across member columns),
    /// in the spirit of Li et al.'s domain representatives.
    pub representative: String,
}

/// Union-find with path compression.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Discover value domains across a lake's textual columns.
#[must_use]
pub fn discover_domains(lake: &DataLake, cfg: &DomainDiscoveryConfig) -> Vec<DiscoveredDomain> {
    // Collect eligible columns with their token sets.
    let mut refs: Vec<ColumnRef> = Vec::new();
    let mut sets: Vec<HashSet<String>> = Vec::new();
    for (r, col) in lake.columns() {
        if col.is_numeric() {
            continue;
        }
        let tokens = col.token_set();
        if tokens.len() < cfg.min_distinct {
            continue;
        }
        refs.push(r);
        sets.push(tokens);
    }

    // Inverted index value → column positions, to propose overlapping pairs.
    let mut by_value: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, s) in sets.iter().enumerate() {
        for v in s {
            by_value.entry(v.as_str()).or_default().push(i);
        }
    }
    let mut pair_overlap: HashMap<(usize, usize), usize> = HashMap::new();
    for cols in by_value.values() {
        for (a_idx, &a) in cols.iter().enumerate() {
            for &b in &cols[a_idx + 1..] {
                *pair_overlap.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
    }

    let mut uf = UnionFind::new(sets.len());
    for (&(a, b), &ov) in &pair_overlap {
        let union = sets[a].len() + sets[b].len() - ov;
        if union > 0 && ov as f64 / union as f64 >= cfg.jaccard_threshold {
            uf.union(a, b);
        }
    }

    let mut clusters: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..sets.len() {
        let root = uf.find(i);
        clusters.entry(root).or_default().push(i);
    }

    let mut out = Vec::new();
    for members in clusters.into_values() {
        if members.len() < cfg.min_columns {
            continue;
        }
        let mut values: HashSet<String> = HashSet::new();
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for &m in &members {
            for v in &sets[m] {
                *freq.entry(v.as_str()).or_insert(0) += 1;
            }
        }
        let representative = freq
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(v, _)| (*v).to_string())
            .unwrap_or_default();
        for &m in &members {
            values.extend(sets[m].iter().cloned());
        }
        out.push(DiscoveredDomain {
            columns: members.into_iter().map(|m| refs[m]).collect(),
            values,
            representative,
        });
    }
    // Deterministic order: largest first, then by first column.
    out.sort_by(|a, b| {
        b.columns
            .len()
            .cmp(&a.columns.len())
            .then(a.columns.first().cmp(&b.columns.first()))
    });
    out
}

/// Pairwise clustering precision/recall/F1 of a discovered clustering
/// against ground-truth labels.
///
/// A pair of columns is a true positive if they share a cluster in both
/// the prediction and the truth. Columns absent from `predicted` count as
/// singletons.
#[must_use]
pub fn pairwise_f1<L: Eq + std::hash::Hash>(
    predicted: &[Vec<ColumnRef>],
    truth: &HashMap<ColumnRef, L>,
) -> (f64, f64, f64) {
    let mut pred_cluster: HashMap<ColumnRef, usize> = HashMap::new();
    for (ci, cluster) in predicted.iter().enumerate() {
        for &c in cluster {
            pred_cluster.insert(c, ci);
        }
    }
    let mut cols: Vec<ColumnRef> = truth.keys().copied().collect();
    cols.sort_unstable();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for i in 0..cols.len() {
        for j in (i + 1)..cols.len() {
            let (a, b) = (cols[i], cols[j]);
            let same_truth = truth[&a] == truth[&b];
            let same_pred = match (pred_cluster.get(&a), pred_cluster.get(&b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            };
            match (same_pred, same_truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let p = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let r = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    };
    (p, r, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::domains::DomainRegistry;
    use td_table::{Column, Table};

    /// A lake with `cols_per_domain` columns from each named domain, each
    /// drawing an overlapping slice of the domain vocabulary.
    fn lake_with_domains(
        r: &DomainRegistry,
        names: &[&str],
        cols_per_domain: usize,
    ) -> (DataLake, HashMap<ColumnRef, String>) {
        let mut lake = DataLake::new();
        let mut truth = HashMap::new();
        for (di, name) in names.iter().enumerate() {
            let d = r.id(name).unwrap();
            for c in 0..cols_per_domain {
                // Slices [0+10c, 60+10c): consecutive columns overlap ~83%.
                let lo = (c * 10) as u64;
                let col = Column::new(
                    format!("col_{di}_{c}"),
                    (lo..lo + 60).map(|i| r.value(d, i)).collect(),
                );
                let t = Table::new(format!("t_{di}_{c}"), vec![col]).unwrap();
                let id = lake.add(t);
                truth.insert(ColumnRef::new(id, 0), (*name).to_string());
            }
        }
        (lake, truth)
    }

    #[test]
    fn recovers_planted_domains() {
        let r = DomainRegistry::standard();
        let (lake, truth) = lake_with_domains(&r, &["city", "gene", "animal", "company"], 5);
        let domains = discover_domains(&lake, &DomainDiscoveryConfig::default());
        assert_eq!(
            domains.len(),
            4,
            "expected 4 domains, got {}",
            domains.len()
        );
        let clusters: Vec<Vec<ColumnRef>> = domains.iter().map(|d| d.columns.clone()).collect();
        let (p, rec, f1) = pairwise_f1(&clusters, &truth);
        assert!(p > 0.95, "precision {p}");
        assert!(rec > 0.95, "recall {rec}");
        assert!(f1 > 0.95, "f1 {f1}");
    }

    #[test]
    fn domain_values_are_unioned() {
        let r = DomainRegistry::standard();
        let (lake, _) = lake_with_domains(&r, &["city"], 3);
        let domains = discover_domains(&lake, &DomainDiscoveryConfig::default());
        assert_eq!(domains.len(), 1);
        // 3 columns with slices [0,60), [10,70), [20,80): union = 80 values.
        assert_eq!(domains[0].values.len(), 80);
        assert!(!domains[0].representative.is_empty());
    }

    #[test]
    fn disjoint_columns_stay_apart() {
        let r = DomainRegistry::standard();
        let d = r.id("city").unwrap();
        let mut lake = DataLake::new();
        for c in 0..3u64 {
            let col = Column::new(
                "city",
                (c * 1000..c * 1000 + 50).map(|i| r.value(d, i)).collect(),
            );
            lake.add(Table::new(format!("t{c}"), vec![col]).unwrap());
        }
        let domains = discover_domains(&lake, &DomainDiscoveryConfig::default());
        // No overlap: no multi-column domain is formed.
        assert!(domains.is_empty());
    }

    #[test]
    fn numeric_and_tiny_columns_are_skipped() {
        let mut lake = DataLake::new();
        let num = Column::from_strings("n", &["1", "2", "3", "4", "5"]);
        let tiny = Column::from_strings("t", &["a", "b"]);
        lake.add(Table::new("t1", vec![num]).unwrap());
        lake.add(Table::new("t2", vec![tiny]).unwrap());
        let domains = discover_domains(&lake, &DomainDiscoveryConfig::default());
        assert!(domains.is_empty());
    }

    #[test]
    fn threshold_controls_merging() {
        let r = DomainRegistry::standard();
        let (lake, _) = lake_with_domains(&r, &["city"], 4);
        let strict = discover_domains(
            &lake,
            &DomainDiscoveryConfig {
                jaccard_threshold: 0.95,
                ..Default::default()
            },
        );
        let loose = discover_domains(&lake, &DomainDiscoveryConfig::default());
        // At 95% Jaccard the ~83%-overlap slices do not merge.
        assert!(strict.is_empty());
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn pairwise_f1_perfect_and_empty() {
        let a = ColumnRef::new(td_table::TableId(0), 0);
        let b = ColumnRef::new(td_table::TableId(1), 0);
        let c = ColumnRef::new(td_table::TableId(2), 0);
        let mut truth = HashMap::new();
        truth.insert(a, "x");
        truth.insert(b, "x");
        truth.insert(c, "y");
        let (p, r, f1) = pairwise_f1(&[vec![a, b], vec![c]], &truth);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
        let (p2, r2, _) = pairwise_f1(&[], &truth);
        assert_eq!(p2, 0.0);
        assert_eq!(r2, 0.0);
    }
}
