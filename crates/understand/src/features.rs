//! Column feature extraction for semantic type detection.
//!
//! A fixed-length numeric description of a column — character-class
//! distributions, shape statistics, cardinality ratios — in the spirit of
//! Sherlock's feature set (Hulsebos et al., KDD 2019), scaled down to the
//! features that carry signal for our synthetic domains.

use td_table::Column;

/// Number of features produced by [`column_features`].
pub const NUM_FEATURES: usize = 16;

/// Human-readable names of the feature dimensions (for reports).
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "frac_digit_chars",
    "frac_alpha_chars",
    "frac_upper_chars",
    "frac_punct_chars",
    "frac_space_chars",
    "mean_len",
    "std_len",
    "min_len",
    "max_len",
    "distinct_ratio",
    "null_ratio",
    "frac_numeric_cells",
    "mean_tokens_per_cell",
    "frac_leading_upper",
    "frac_contains_at",
    "frac_contains_dash",
];

/// Extract the feature vector of a column.
///
/// All features are finite and scale-free (fractions, ratios, or lengths),
/// so they compose into centroid/Gaussian classifiers without further
/// normalization. An all-null column yields all zeros.
#[must_use]
pub fn column_features(column: &Column) -> [f64; NUM_FEATURES] {
    let mut f = [0.0f64; NUM_FEATURES];
    let mut chars_total = 0usize;
    let (mut digits, mut alphas, mut uppers, mut puncts, mut spaces) = (0, 0, 0, 0, 0);
    let mut lens: Vec<f64> = Vec::new();
    let mut numeric_cells = 0usize;
    let mut tokens_total = 0usize;
    let mut leading_upper = 0usize;
    let mut has_at = 0usize;
    let mut has_dash = 0usize;
    let mut non_null = 0usize;

    for v in &column.values {
        let Some(text) = v.as_text() else { continue };
        non_null += 1;
        if v.as_f64().is_some() {
            numeric_cells += 1;
        }
        let mut len = 0usize;
        for c in text.chars() {
            len += 1;
            chars_total += 1;
            if c.is_ascii_digit() {
                digits += 1;
            } else if c.is_alphabetic() {
                alphas += 1;
                if c.is_uppercase() {
                    uppers += 1;
                }
            } else if c.is_whitespace() {
                spaces += 1;
            } else {
                puncts += 1;
            }
        }
        lens.push(len as f64);
        tokens_total += text.split_whitespace().count();
        if text.chars().next().is_some_and(char::is_uppercase) {
            leading_upper += 1;
        }
        if text.contains('@') {
            has_at += 1;
        }
        if text.contains('-') {
            has_dash += 1;
        }
    }

    if non_null == 0 {
        return f;
    }
    let ct = chars_total.max(1) as f64;
    f[0] = digits as f64 / ct;
    f[1] = alphas as f64 / ct;
    f[2] = uppers as f64 / ct;
    f[3] = puncts as f64 / ct;
    f[4] = spaces as f64 / ct;
    let n = lens.len() as f64;
    let mean = lens.iter().sum::<f64>() / n;
    f[5] = mean;
    f[6] = (lens.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n).sqrt();
    f[7] = lens.iter().cloned().fold(f64::INFINITY, f64::min);
    f[8] = lens.iter().cloned().fold(0.0, f64::max);
    f[9] = column.num_distinct() as f64 / non_null as f64;
    f[10] = column.null_count() as f64 / column.len().max(1) as f64;
    f[11] = numeric_cells as f64 / non_null as f64;
    f[12] = tokens_total as f64 / non_null as f64;
    f[13] = leading_upper as f64 / non_null as f64;
    f[14] = has_at as f64 / non_null as f64;
    f[15] = has_dash as f64 / non_null as f64;
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_columns_light_up_the_at_feature() {
        let c = Column::from_strings("e", &["a@b.com", "c@d.org"]);
        let f = column_features(&c);
        assert_eq!(f[14], 1.0);
        assert!(f[3] > 0.0); // punctuation from @ and .
    }

    #[test]
    fn numeric_columns_have_high_digit_fraction() {
        let c = Column::from_strings("n", &["123", "456", "789"]);
        let f = column_features(&c);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[11], 1.0);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn proper_nouns_have_leading_upper() {
        let c = Column::from_strings("p", &["Boston", "Seattle"]);
        let f = column_features(&c);
        assert_eq!(f[13], 1.0);
        assert!(f[2] > 0.0 && f[2] < 0.5);
    }

    #[test]
    fn full_names_have_two_tokens() {
        let c = Column::from_strings("p", &["Ada Byron", "Alan Turing"]);
        let f = column_features(&c);
        assert!((f[12] - 2.0).abs() < 1e-9);
        assert!(f[4] > 0.0);
    }

    #[test]
    fn length_stats() {
        let c = Column::from_strings("l", &["ab", "abcd"]);
        let f = column_features(&c);
        assert_eq!(f[5], 3.0);
        assert_eq!(f[7], 2.0);
        assert_eq!(f[8], 4.0);
        assert_eq!(f[6], 1.0);
    }

    #[test]
    fn null_and_distinct_ratios() {
        let c = Column::from_strings("d", &["x", "x", "y", ""]);
        let f = column_features(&c);
        assert!((f[9] - 2.0 / 3.0).abs() < 1e-9);
        assert!((f[10] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn all_null_column_is_zero_vector() {
        let c = Column::from_strings("z", &["", ""]);
        assert_eq!(column_features(&c), [0.0; NUM_FEATURES]);
    }

    #[test]
    fn features_are_always_finite() {
        for cells in [vec![""], vec!["a"], vec!["1", "2", ""]] {
            let f = column_features(&Column::from_strings("c", &cells));
            assert!(f.iter().all(|x| x.is_finite()), "{cells:?}");
        }
    }
}
