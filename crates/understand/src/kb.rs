//! A synthetic knowledge base (the YAGO stand-in; see DESIGN.md
//! "Substitutions").
//!
//! SANTOS-style discovery needs two lookups: `value → semantic types` and
//! `(value, value) → binary relations`. Real KBs provide both with high
//! precision but *partial coverage* — the precision/recall trade-off the
//! tutorial's Section 3 discusses. This KB is materialized from the
//! generator's [`DomainRegistry`] and [`RelationSpec`]s with explicit,
//! independently tunable coverage knobs, so experiments can sweep
//! KB completeness (experiment E18).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use td_sketch::hash::{hash_str, hash_u64};
use td_table::gen::bench_union::RelationSpec;
use td_table::gen::domains::{DomainId, DomainRegistry};

/// A binary relation label.
pub type RelationId = u32;

/// The synthetic knowledge base.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    /// Lower-cased value → types (domains) it instantiates.
    value_types: HashMap<String, Vec<DomainId>>,
    /// Hashed `(subject, object)` pair → relations asserting it.
    pair_relations: HashMap<(u64, u64), Vec<RelationId>>,
    /// Type id → human-readable name.
    type_names: HashMap<DomainId, String>,
    /// Type id → category (one-level hierarchy).
    type_categories: HashMap<DomainId, String>,
}

const PAIR_SEED: u64 = 0x4B_5EED;

/// Construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KbConfig {
    /// How many values per categorical domain enter the type dictionary.
    pub vocab_per_domain: u64,
    /// Fraction of those values actually covered (simulated incompleteness).
    pub type_coverage: f64,
    /// How many key indices per relation are materialized as fact pairs.
    pub facts_per_relation: u64,
    /// Fraction of those facts actually covered.
    pub relation_coverage: f64,
    /// Seed for the coverage subsampling.
    pub seed: u64,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            vocab_per_domain: 2_000,
            type_coverage: 0.9,
            facts_per_relation: 2_000,
            relation_coverage: 0.8,
            seed: 77,
        }
    }
}

impl KnowledgeBase {
    /// Build from a registry and the relation specs known to the world.
    #[must_use]
    pub fn build(registry: &DomainRegistry, relations: &[RelationSpec], cfg: &KbConfig) -> Self {
        let mut kb = KnowledgeBase::default();
        for (id, dom) in registry.iter() {
            kb.type_names.insert(id, dom.name.clone());
            kb.type_categories.insert(id, dom.category.clone());
            if dom.format.is_numeric() {
                continue;
            }
            for i in 0..cfg.vocab_per_domain {
                if !covered(cfg.seed ^ 0x7F9E, id.0 as u64, i, cfg.type_coverage) {
                    continue;
                }
                let v = registry.value(id, i).to_string().to_lowercase();
                let entry = kb.value_types.entry(v).or_default();
                if !entry.contains(&id) {
                    entry.push(id);
                }
            }
        }
        for spec in relations {
            for i in 0..cfg.facts_per_relation {
                if !covered(
                    cfg.seed ^ 0xFAC7,
                    spec.rel_id as u64,
                    i,
                    cfg.relation_coverage,
                ) {
                    continue;
                }
                let subj = registry.value(spec.key_dom, i).to_string();
                let obj = registry
                    .value(spec.attr_dom, spec.attr_index(i))
                    .to_string();
                let key = pair_key(&subj, &obj);
                let entry = kb.pair_relations.entry(key).or_default();
                if !entry.contains(&spec.rel_id) {
                    entry.push(spec.rel_id);
                }
            }
        }
        kb
    }

    /// Types asserted for a value (empty slice if unknown).
    #[must_use]
    pub fn types_of(&self, value: &str) -> &[DomainId] {
        self.value_types
            .get(&value.to_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// Relations asserted for an ordered `(subject, object)` pair.
    #[must_use]
    pub fn relations_of(&self, subject: &str, object: &str) -> &[RelationId] {
        self.pair_relations
            .get(&pair_key(subject, object))
            .map_or(&[], Vec::as_slice)
    }

    /// Human-readable name of a type.
    #[must_use]
    pub fn type_name(&self, t: DomainId) -> Option<&str> {
        self.type_names.get(&t).map(String::as_str)
    }

    /// Category (parent in the one-level hierarchy) of a type.
    #[must_use]
    pub fn type_category(&self, t: DomainId) -> Option<&str> {
        self.type_categories.get(&t).map(String::as_str)
    }

    /// Number of typed values.
    #[must_use]
    pub fn num_values(&self) -> usize {
        self.value_types.len()
    }

    /// Number of fact pairs.
    #[must_use]
    pub fn num_facts(&self) -> usize {
        self.pair_relations.len()
    }

    /// Merge facts and types discovered elsewhere (e.g. SANTOS's
    /// lake-synthesized KB) into this one.
    pub fn absorb(&mut self, other: &KnowledgeBase) {
        for (v, types) in &other.value_types {
            let entry = self.value_types.entry(v.clone()).or_default();
            for t in types {
                if !entry.contains(t) {
                    entry.push(*t);
                }
            }
        }
        for (k, rels) in &other.pair_relations {
            let entry = self.pair_relations.entry(*k).or_default();
            for r in rels {
                if !entry.contains(r) {
                    entry.push(*r);
                }
            }
        }
        for (t, n) in &other.type_names {
            self.type_names.entry(*t).or_insert_with(|| n.clone());
        }
        for (t, c) in &other.type_categories {
            self.type_categories.entry(*t).or_insert_with(|| c.clone());
        }
    }

    /// Record a synthesized fact (used by the lake-derived KB path).
    pub fn assert_fact(&mut self, subject: &str, object: &str, rel: RelationId) {
        let entry = self
            .pair_relations
            .entry(pair_key(subject, object))
            .or_default();
        if !entry.contains(&rel) {
            entry.push(rel);
        }
    }
}

/// Hash key of an ordered value pair (case-insensitive).
fn pair_key(subject: &str, object: &str) -> (u64, u64) {
    (
        hash_str(&subject.to_lowercase(), PAIR_SEED),
        hash_str(&object.to_lowercase(), PAIR_SEED ^ 0x0B),
    )
}

/// Deterministic coverage decision for item `i` of stream `(salt, group)`.
fn covered(salt: u64, group: u64, i: u64, coverage: f64) -> bool {
    let h = hash_u64(i ^ (group << 32), salt);
    (h as f64 / u64::MAX as f64) < coverage
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (DomainRegistry, Vec<RelationSpec>) {
        let r = DomainRegistry::standard();
        let rels = vec![
            RelationSpec {
                key_dom: r.id("city").unwrap(),
                attr_dom: r.id("country").unwrap(),
                rel_id: 1,
            },
            RelationSpec {
                key_dom: r.id("city").unwrap(),
                attr_dom: r.id("country").unwrap(),
                rel_id: 2,
            },
        ];
        (r, rels)
    }

    #[test]
    fn full_coverage_knows_everything() {
        let (r, rels) = world();
        let kb = KnowledgeBase::build(
            &r,
            &rels,
            &KbConfig {
                type_coverage: 1.0,
                relation_coverage: 1.0,
                vocab_per_domain: 100,
                facts_per_relation: 100,
                ..Default::default()
            },
        );
        let city = r.id("city").unwrap();
        for i in 0..100u64 {
            let v = r.value(city, i).to_string();
            assert!(kb.types_of(&v).contains(&city), "{v}");
        }
        // Every fact of relation 1 resolvable.
        let spec = rels[0];
        for i in 0..100u64 {
            let s = r.value(spec.key_dom, i).to_string();
            let o = r.value(spec.attr_dom, spec.attr_index(i)).to_string();
            assert!(kb.relations_of(&s, &o).contains(&1));
        }
    }

    #[test]
    fn different_relations_are_distinguished() {
        let (r, rels) = world();
        let kb = KnowledgeBase::build(
            &r,
            &rels,
            &KbConfig {
                relation_coverage: 1.0,
                facts_per_relation: 50,
                ..Default::default()
            },
        );
        let s1 = rels[0];
        let s2 = rels[1];
        let subj = r.value(s1.key_dom, 3).to_string();
        let o1 = r.value(s1.attr_dom, s1.attr_index(3)).to_string();
        let o2 = r.value(s2.attr_dom, s2.attr_index(3)).to_string();
        assert!(kb.relations_of(&subj, &o1).contains(&1));
        assert!(kb.relations_of(&subj, &o2).contains(&2));
        assert!(!kb.relations_of(&subj, &o1).contains(&2));
    }

    #[test]
    fn coverage_thins_the_kb() {
        let (r, rels) = world();
        let full = KnowledgeBase::build(
            &r,
            &rels,
            &KbConfig {
                type_coverage: 1.0,
                relation_coverage: 1.0,
                ..Default::default()
            },
        );
        let half = KnowledgeBase::build(
            &r,
            &rels,
            &KbConfig {
                type_coverage: 0.5,
                relation_coverage: 0.5,
                ..Default::default()
            },
        );
        assert!(half.num_values() < full.num_values());
        assert!(half.num_facts() < full.num_facts());
        let ratio = half.num_facts() as f64 / full.num_facts() as f64;
        assert!((0.4..0.6).contains(&ratio), "fact ratio {ratio}");
    }

    #[test]
    fn unknown_values_return_empty() {
        let (r, rels) = world();
        let kb = KnowledgeBase::build(&r, &rels, &KbConfig::default());
        assert!(kb.types_of("definitely-not-a-value").is_empty());
        assert!(kb.relations_of("nope", "nada").is_empty());
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let (r, rels) = world();
        let kb = KnowledgeBase::build(
            &r,
            &rels,
            &KbConfig {
                type_coverage: 1.0,
                ..Default::default()
            },
        );
        let city = r.id("city").unwrap();
        let v = r.value(city, 5).to_string();
        assert_eq!(kb.types_of(&v.to_uppercase()), kb.types_of(&v));
    }

    #[test]
    fn absorb_merges_without_duplicates() {
        let (r, rels) = world();
        let mut a = KnowledgeBase::build(
            &r,
            &rels[..1],
            &KbConfig {
                relation_coverage: 1.0,
                facts_per_relation: 20,
                ..Default::default()
            },
        );
        let b = KnowledgeBase::build(
            &r,
            &rels,
            &KbConfig {
                relation_coverage: 1.0,
                facts_per_relation: 20,
                ..Default::default()
            },
        );
        let before = a.num_facts();
        a.absorb(&b);
        assert!(a.num_facts() > before);
        let again = a.num_facts();
        a.absorb(&b);
        assert_eq!(a.num_facts(), again, "absorb must be idempotent");
    }

    #[test]
    fn assert_fact_records_synthesized_knowledge() {
        let mut kb = KnowledgeBase::default();
        kb.assert_fact("Paris", "France", 9);
        assert_eq!(kb.relations_of("paris", "france"), &[9]);
        kb.assert_fact("Paris", "France", 9);
        assert_eq!(kb.relations_of("Paris", "France").len(), 1);
    }

    #[test]
    fn type_metadata_is_available() {
        let (r, rels) = world();
        let kb = KnowledgeBase::build(&r, &rels, &KbConfig::default());
        let city = r.id("city").unwrap();
        assert_eq!(kb.type_name(city), Some("city"));
        assert_eq!(kb.type_category(city), Some("geography"));
    }
}
