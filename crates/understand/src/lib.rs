//! # td-understand — table understanding
//!
//! The offline semantic-recovery layer of the discovery architecture
//! (tutorial §2.2): feature-based and context-aware semantic type detection
//! (Sherlock → Sato), unsupervised domain discovery (D4-style), a synthetic
//! knowledge base with tunable coverage (the YAGO stand-in), and KB-driven
//! table annotation of column types and binary relations (the substrate of
//! SANTOS-style union search).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod annotate;
pub mod domain;
pub mod features;
pub mod kb;
pub mod synthesize;
pub mod types;

pub use annotate::{annotate_table, AnnotateConfig, RelationAnnotation, TableAnnotation};
pub use domain::{discover_domains, pairwise_f1, DiscoveredDomain, DomainDiscoveryConfig};
pub use features::{column_features, FEATURE_NAMES, NUM_FEATURES};
pub use kb::{KbConfig, KnowledgeBase, RelationId};
pub use synthesize::{synthesize_kb, SynthesizeConfig, SynthesizeReport, SYNTH_REL_BASE};
pub use types::{ContextTypeClassifier, FeatureTypeClassifier, TypeId};
