//! Synthesizing knowledge from the lake itself (tutorial §3: "view the
//! data lake as a source of knowledge that can be utilized to verify and
//! augment knowledge graphs"; SANTOS's synthesized KG).
//!
//! Where the curated KB's coverage ends, the lake still carries evidence:
//! value pairs that co-occur in the same row across *many independent
//! tables* very likely express a real relationship. This module mines
//! those pairs, groups them by the co-occurrence pattern of their column
//! pair, assigns synthesized relation ids, and emits a [`KnowledgeBase`]
//! that can be [`KnowledgeBase::absorb`]ed into the curated one —
//! recovering SANTOS-style triple evidence on lakes the curated KB barely
//! covers.

use crate::kb::{KnowledgeBase, RelationId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use td_table::{ColumnRef, DataLake};

/// Relation ids synthesized from the lake start here, far above curated
/// ids, so the two spaces never collide.
pub const SYNTH_REL_BASE: RelationId = 1_000_000;

/// Mining thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SynthesizeConfig {
    /// A value pair becomes a candidate fact when it co-occurs in at least
    /// this many distinct tables.
    pub min_tables: usize,
    /// A column pair (and hence its synthesized relation) is kept when at
    /// least this fraction of its rows are candidate facts.
    pub min_pair_support: f64,
    /// Two column pairs merge into one synthesized relation only when they
    /// share at least this many candidate facts — one shared pair can be a
    /// value collision between genuinely different relations.
    pub min_shared_facts: usize,
    /// Rows sampled per table.
    pub max_rows: usize,
}

impl Default for SynthesizeConfig {
    fn default() -> Self {
        SynthesizeConfig {
            min_tables: 2,
            min_pair_support: 0.3,
            min_shared_facts: 3,
            max_rows: 256,
        }
    }
}

/// Statistics of a synthesis run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesizeReport {
    /// Column pairs examined.
    pub column_pairs: usize,
    /// Column pairs that became synthesized relations.
    pub relations_created: usize,
    /// Facts asserted into the synthesized KB.
    pub facts_asserted: usize,
}

/// Mine a synthesized KB from row-wise value-pair co-occurrence.
///
/// Two column pairs (possibly in different tables) share a synthesized
/// relation id when their *fact sets* overlap — computed by grouping
/// column pairs through a union-find over shared candidate facts, exactly
/// the evidence SANTOS's lake-derived KG uses.
#[must_use]
pub fn synthesize_kb(lake: &DataLake, cfg: &SynthesizeConfig) -> (KnowledgeBase, SynthesizeReport) {
    // Pass 1: count, for each (subject, object) value pair, the distinct
    // tables it appears in, remembering which column pairs produced it.
    type Pair = (String, String);
    let mut pair_tables: HashMap<Pair, HashSet<u32>> = HashMap::new();
    let mut pair_sources: HashMap<Pair, Vec<usize>> = HashMap::new();
    let mut col_pairs: Vec<(ColumnRef, ColumnRef)> = Vec::new();
    let mut col_pair_rows: Vec<usize> = Vec::new();

    for (tid, table) in lake.iter() {
        let rows = table.num_rows().min(cfg.max_rows);
        for s in 0..table.num_cols() {
            if table.columns[s].is_numeric() {
                continue;
            }
            for o in 0..table.num_cols() {
                if s == o || table.columns[o].is_numeric() {
                    continue;
                }
                let cp_idx = col_pairs.len();
                col_pairs.push((ColumnRef::new(tid, s), ColumnRef::new(tid, o)));
                let mut considered = 0usize;
                for r in 0..rows {
                    let (Some(sv), Some(ov)) = (
                        table.columns[s].values[r].join_token(),
                        table.columns[o].values[r].join_token(),
                    ) else {
                        continue;
                    };
                    considered += 1;
                    let key = (sv, ov);
                    pair_tables.entry(key.clone()).or_default().insert(tid.0);
                    pair_sources.entry(key).or_default().push(cp_idx);
                }
                col_pair_rows.push(considered);
            }
        }
    }

    // Candidate facts: pairs seen in enough distinct tables.
    let candidates: HashSet<Pair> = pair_tables
        .iter()
        .filter(|(_, tables)| tables.len() >= cfg.min_tables)
        .map(|(p, _)| p.clone())
        .collect();

    // Per column pair: how many of its rows are candidate facts.
    let mut cp_candidate_rows = vec![0usize; col_pairs.len()];
    for p in &candidates {
        if let Some(sources) = pair_sources.get(p) {
            let mut seen = HashSet::new();
            for &cp in sources {
                if seen.insert(cp) {
                    cp_candidate_rows[cp] += 1;
                }
            }
        }
    }
    let qualified: Vec<bool> = (0..col_pairs.len())
        .map(|cp| {
            col_pair_rows[cp] > 0
                && cp_candidate_rows[cp] as f64 / col_pair_rows[cp] as f64 >= cfg.min_pair_support
        })
        .collect();

    // Union-find over qualified column pairs, linked by shared facts:
    // column pairs expressing the same relationship collapse to one id.
    let mut parent: Vec<usize> = (0..col_pairs.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    // Count shared candidate facts per qualified column-pair pair, then
    // union only the pairs sharing enough evidence (a single shared fact
    // can be a value collision between genuinely different relations).
    let mut link_counts: HashMap<(usize, usize), usize> = HashMap::new();
    for p in &candidates {
        if let Some(sources) = pair_sources.get(p) {
            let mut qs: Vec<usize> = sources
                .iter()
                .copied()
                .filter(|&cp| qualified[cp])
                .collect();
            qs.sort_unstable();
            qs.dedup();
            for i in 0..qs.len() {
                for j in (i + 1)..qs.len() {
                    *link_counts.entry((qs[i], qs[j])).or_insert(0) += 1;
                }
            }
        }
    }
    for (&(a, b), &n) in &link_counts {
        if n >= cfg.min_shared_facts {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }

    // Assign synthesized relation ids per component and assert facts.
    let mut rel_of_root: HashMap<usize, RelationId> = HashMap::new();
    let mut kb = KnowledgeBase::default();
    let mut report = SynthesizeReport {
        column_pairs: col_pairs.len(),
        ..Default::default()
    };
    let mut asserted: HashSet<(Pair, RelationId)> = HashSet::new();
    for p in &candidates {
        let Some(sources) = pair_sources.get(p) else {
            continue;
        };
        for &cp in sources {
            if !qualified[cp] {
                continue;
            }
            let root = find(&mut parent, cp);
            let next = SYNTH_REL_BASE + rel_of_root.len() as RelationId;
            let rel = *rel_of_root.entry(root).or_insert(next);
            if asserted.insert((p.clone(), rel)) {
                kb.assert_fact(&p.0, &p.1, rel);
                report.facts_asserted += 1;
            }
        }
    }
    report.relations_created = rel_of_root.len();
    (kb, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::bench_union::RelationSpec;
    use td_table::gen::domains::DomainRegistry;
    use td_table::{Column, Table};

    /// Lake of tables instantiating one relation (overlapping key slices)
    /// plus tables of a *different* relation over the same domains.
    fn lake_with_relations() -> (DataLake, DomainRegistry, RelationSpec, RelationSpec) {
        let r = DomainRegistry::standard();
        let rel_a = RelationSpec {
            key_dom: r.id("city").unwrap(),
            attr_dom: r.id("country").unwrap(),
            rel_id: 1,
        };
        let rel_b = RelationSpec { rel_id: 2, ..rel_a };
        let mut lake = DataLake::new();
        for (spec, tag) in [(rel_a, "a"), (rel_b, "b")] {
            for t in 0..4u64 {
                let lo = t * 20; // consecutive tables overlap by 20 keys? no: slices
                let keys: Vec<u64> = (lo..lo + 40).collect();
                lake.add(
                    Table::new(
                        format!("{tag}_{t}.csv"),
                        vec![
                            Column::new(
                                "city",
                                keys.iter().map(|&i| r.value(spec.key_dom, i)).collect(),
                            ),
                            Column::new(
                                "country",
                                keys.iter()
                                    .map(|&i| r.value(spec.attr_dom, spec.attr_index(i)))
                                    .collect(),
                            ),
                        ],
                    )
                    .unwrap(),
                );
            }
        }
        (lake, r, rel_a, rel_b)
    }

    #[test]
    fn synthesizes_facts_for_recurring_pairs() {
        let (lake, r, rel_a, _) = lake_with_relations();
        let (kb, report) = synthesize_kb(&lake, &SynthesizeConfig::default());
        assert!(report.facts_asserted > 0);
        assert!(report.relations_created >= 1);
        // A pair appearing in two overlapping rel_a tables must be known.
        let subj = r.value(rel_a.key_dom, 25).to_string(); // in tables 0..2
        let obj = r.value(rel_a.attr_dom, rel_a.attr_index(25)).to_string();
        assert!(
            !kb.relations_of(&subj, &obj).is_empty(),
            "{subj} -> {obj} missing"
        );
    }

    #[test]
    fn different_relations_get_different_synthesized_ids() {
        let (lake, r, rel_a, rel_b) = lake_with_relations();
        let (kb, _) = synthesize_kb(&lake, &SynthesizeConfig::default());
        let fact = |spec: &RelationSpec, i: u64| {
            let s = r.value(spec.key_dom, i).to_string();
            let o = r.value(spec.attr_dom, spec.attr_index(i)).to_string();
            kb.relations_of(&s, &o).to_vec()
        };
        let ra = fact(&rel_a, 25);
        let rb = fact(&rel_b, 25);
        assert!(!ra.is_empty() && !rb.is_empty());
        assert_ne!(ra, rb, "distinct relations collapsed");
    }

    #[test]
    fn same_relation_across_tables_shares_one_id() {
        let (lake, r, rel_a, _) = lake_with_relations();
        let (kb, _) = synthesize_kb(&lake, &SynthesizeConfig::default());
        // Keys 25 (tables 0,1) and 45 (tables 1,2): same relation, should
        // carry the same synthesized id via the shared-fact linkage.
        let id_of = |i: u64| {
            let s = r.value(rel_a.key_dom, i).to_string();
            let o = r.value(rel_a.attr_dom, rel_a.attr_index(i)).to_string();
            kb.relations_of(&s, &o).to_vec()
        };
        let a = id_of(25);
        let b = id_of(45);
        assert!(!a.is_empty() && !b.is_empty());
        assert_eq!(a, b, "one relation split into several ids");
    }

    #[test]
    fn singleton_pairs_are_not_asserted() {
        let r = DomainRegistry::standard();
        let city = r.id("city").unwrap();
        let country = r.id("country").unwrap();
        let mut lake = DataLake::new();
        // One table only: no pair recurs across tables.
        lake.add(
            Table::new(
                "solo.csv",
                vec![
                    Column::new("city", (0..30u64).map(|i| r.value(city, i)).collect()),
                    Column::new("country", (0..30u64).map(|i| r.value(country, i)).collect()),
                ],
            )
            .unwrap(),
        );
        let (kb, report) = synthesize_kb(&lake, &SynthesizeConfig::default());
        assert_eq!(report.facts_asserted, 0);
        assert_eq!(kb.num_facts(), 0);
    }

    #[test]
    fn synthesized_kb_augments_a_sparse_curated_kb() {
        use crate::kb::KbConfig;
        let (lake, r, rel_a, rel_b) = lake_with_relations();
        let mut curated = KnowledgeBase::build(
            &r,
            &[rel_a, rel_b],
            &KbConfig {
                vocab_per_domain: 2_048,
                facts_per_relation: 2_048,
                type_coverage: 1.0,
                relation_coverage: 0.1, // nearly empty
                ..Default::default()
            },
        );
        // Coverage of the lake's recurring rel_a pairs (keys in >= 2
        // tables: indices 20..80) before and after absorbing the
        // synthesized KB.
        let coverage = |kb: &KnowledgeBase| {
            (20..80u64)
                .filter(|&i| {
                    let s = r.value(rel_a.key_dom, i).to_string();
                    let o = r.value(rel_a.attr_dom, rel_a.attr_index(i)).to_string();
                    !kb.relations_of(&s, &o).is_empty()
                })
                .count()
        };
        let before = coverage(&curated);
        let (synth, _) = synthesize_kb(&lake, &SynthesizeConfig::default());
        curated.absorb(&synth);
        let after = coverage(&curated);
        assert!(before < 20, "curated KB unexpectedly dense: {before}/60");
        assert_eq!(after, 60, "absorption left gaps: {after}/60");
    }

    #[test]
    fn synthesized_ids_never_collide_with_curated_ids() {
        let (lake, _, _, _) = lake_with_relations();
        let (kb, report) = synthesize_kb(&lake, &SynthesizeConfig::default());
        assert!(report.relations_created > 0);
        // All ids at or above the base.
        // (Probe a few known facts.)
        let r = DomainRegistry::standard();
        let rel_a = RelationSpec {
            key_dom: r.id("city").unwrap(),
            attr_dom: r.id("country").unwrap(),
            rel_id: 1,
        };
        let s = r.value(rel_a.key_dom, 25).to_string();
        let o = r.value(rel_a.attr_dom, rel_a.attr_index(25)).to_string();
        for &id in kb.relations_of(&s, &o) {
            assert!(id >= SYNTH_REL_BASE);
        }
    }
}
