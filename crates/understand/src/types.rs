//! Semantic type detection (tutorial §2.2).
//!
//! Two detectors reproducing the Sherlock → Sato progression:
//!
//! * [`FeatureTypeClassifier`] — Sherlock-style: a diagonal-Gaussian
//!   (naive-Bayes) model over [`crate::features::column_features`],
//!   classifying each column *independently*.
//! * [`ContextTypeClassifier`] — Sato-style: wraps the feature model and
//!   re-scores each column using a type co-occurrence "topic" prior learned
//!   from the training tables, so the rest of the table disambiguates
//!   columns whose surface features are ambiguous (e.g. every 3-syllable
//!   capitalized domain looks alike to the feature model).

use crate::features::{column_features, NUM_FEATURES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use td_table::{Column, Table};

/// A semantic type label (index into the classifier's label list).
pub type TypeId = u16;

/// Per-class diagonal Gaussian.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClassModel {
    mean: [f64; NUM_FEATURES],
    var: [f64; NUM_FEATURES],
    log_prior: f64,
}

/// Sherlock-style per-column feature classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureTypeClassifier {
    labels: Vec<String>,
    classes: Vec<ClassModel>,
}

/// Variance floor to keep log-densities finite on constant features.
const VAR_FLOOR: f64 = 1e-4;

impl FeatureTypeClassifier {
    /// Train from `(column, label)` pairs.
    ///
    /// # Panics
    /// Panics if `examples` is empty.
    #[must_use]
    pub fn train(examples: &[(&Column, &str)]) -> Self {
        assert!(!examples.is_empty(), "no training data");
        let mut label_ids: HashMap<&str, usize> = HashMap::new();
        let mut labels: Vec<String> = Vec::new();
        let mut feats: Vec<(usize, [f64; NUM_FEATURES])> = Vec::with_capacity(examples.len());
        for (col, label) in examples {
            let next = labels.len();
            let id = *label_ids.entry(label).or_insert_with(|| {
                labels.push((*label).to_string());
                next
            });
            feats.push((id, column_features(col)));
        }
        let n_classes = labels.len();
        let mut counts = vec![0usize; n_classes];
        let mut means = vec![[0.0f64; NUM_FEATURES]; n_classes];
        for (id, f) in &feats {
            counts[*id] += 1;
            for j in 0..NUM_FEATURES {
                means[*id][j] += f[j];
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            for x in m.iter_mut() {
                *x /= counts[c].max(1) as f64;
            }
        }
        let mut vars = vec![[VAR_FLOOR; NUM_FEATURES]; n_classes];
        for (id, f) in &feats {
            for j in 0..NUM_FEATURES {
                let d = f[j] - means[*id][j];
                vars[*id][j] += d * d / counts[*id].max(1) as f64;
            }
        }
        let total = feats.len() as f64;
        let classes = (0..n_classes)
            .map(|c| ClassModel {
                mean: means[c],
                var: vars[c],
                log_prior: (counts[c] as f64 / total).ln(),
            })
            .collect();
        FeatureTypeClassifier { labels, classes }
    }

    /// The label list (TypeId = index).
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Resolve a label to its id.
    #[must_use]
    pub fn type_id(&self, label: &str) -> Option<TypeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as TypeId)
    }

    /// Log-likelihood scores per type for one column.
    #[must_use]
    pub fn scores(&self, column: &Column) -> Vec<f64> {
        let f = column_features(column);
        self.classes
            .iter()
            .map(|c| {
                let mut ll = c.log_prior;
                for ((x, m), v) in f.iter().zip(&c.mean).zip(&c.var) {
                    let d = x - m;
                    ll -= 0.5 * (d * d / v + v.ln());
                }
                ll
            })
            .collect()
    }

    /// Most likely type of a column.
    #[must_use]
    pub fn predict(&self, column: &Column) -> TypeId {
        argmax(&self.scores(column)) as TypeId
    }

    /// Predicted label string.
    #[must_use]
    pub fn predict_label(&self, column: &Column) -> &str {
        &self.labels[self.predict(column) as usize]
    }
}

/// Numerically stable log-softmax.
fn log_softmax(v: &[f64]) -> Vec<f64> {
    let m = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lse = m + v.iter().map(|x| (x - m).exp()).sum::<f64>().ln();
    v.iter().map(|x| x - lse).collect()
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i)
}

/// Sato-style context-aware classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextTypeClassifier {
    /// The per-column feature model.
    pub base: FeatureTypeClassifier,
    /// `log P(type_a co-occurs with type_b)` (symmetric, Laplace-smoothed).
    cooc: Vec<Vec<f64>>,
    /// Weight of the context term.
    lambda: f64,
}

impl ContextTypeClassifier {
    /// Train from labeled tables: `(table, per-column labels)`.
    ///
    /// Trains the feature model on all columns and estimates the type
    /// co-occurrence prior from which types appear together in a table.
    ///
    /// # Panics
    /// Panics if `tables` is empty or labels don't match column counts.
    #[must_use]
    pub fn train(tables: &[(&Table, Vec<&str>)], lambda: f64) -> Self {
        let mut examples: Vec<(&Column, &str)> = Vec::new();
        for (t, labels) in tables {
            assert_eq!(t.num_cols(), labels.len(), "label/column mismatch");
            for (c, l) in t.columns.iter().zip(labels) {
                examples.push((c, l));
            }
        }
        let base = FeatureTypeClassifier::train(&examples);
        let n = base.labels.len();
        // Laplace-smoothed co-occurrence counts.
        let mut counts = vec![vec![1.0f64; n]; n];
        for (_, labels) in tables {
            // Every label was just fed to `FeatureTypeClassifier::train`,
            // so lookup cannot miss; `filter_map` keeps that invariant
            // panic-free regardless.
            let ids: Vec<usize> = labels
                .iter()
                .filter_map(|l| base.type_id(l).map(|t| t as usize))
                .collect();
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    counts[a][b] += 1.0;
                    counts[b][a] += 1.0;
                }
            }
        }
        let cooc = counts
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.into_iter().map(|c| (c / total).ln()).collect()
            })
            .collect();
        ContextTypeClassifier { base, cooc, lambda }
    }

    /// Jointly predict the types of all columns in a table.
    ///
    /// One round of iterated conditional modes: initialize with the feature
    /// model's argmax, then re-score each column with the co-occurrence
    /// prior of the other columns' current labels.
    #[must_use]
    pub fn predict_table(&self, table: &Table) -> Vec<TypeId> {
        // Log-softmax the feature scores per column: raw Gaussian
        // log-likelihood *gaps* are unboundedly overconfident (tiny
        // variances), which would drown the context prior; posteriors keep
        // confusable types within a few nats of each other while leaving
        // clearly-distinct types unreachable.
        let per_col_scores: Vec<Vec<f64>> = table
            .columns
            .iter()
            .map(|c| log_softmax(&self.base.scores(c)))
            .collect();
        let mut current: Vec<usize> = per_col_scores.iter().map(|s| argmax(s)).collect();
        for _round in 0..2 {
            for i in 0..current.len() {
                let mut best = (f64::NEG_INFINITY, current[i]);
                for (t, base_score) in per_col_scores[i].iter().enumerate() {
                    let mut s = *base_score;
                    for (j, &other) in current.iter().enumerate() {
                        if j != i {
                            s += self.lambda * self.cooc[t][other];
                        }
                    }
                    if s > best.0 {
                        best = (s, t);
                    }
                }
                current[i] = best.1;
            }
        }
        current.into_iter().map(|t| t as TypeId).collect()
    }

    /// Predicted label strings for a table.
    #[must_use]
    pub fn predict_table_labels(&self, table: &Table) -> Vec<&str> {
        self.predict_table(table)
            .into_iter()
            .map(|t| self.base.labels[t as usize].as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::domains::DomainRegistry;
    use td_table::Table;

    fn domain_column(r: &DomainRegistry, name: &str, lo: u64, n: u64) -> Column {
        let d = r.id(name).unwrap();
        Column::new(name, (lo..lo + n).map(|i| r.value(d, i)).collect())
    }

    fn training_columns(r: &DomainRegistry) -> Vec<(Column, String)> {
        let mut out = Vec::new();
        for name in ["city", "email", "phone", "gene", "person", "price"] {
            for rep in 0..6u64 {
                out.push((domain_column(r, name, rep * 50, 30), name.to_string()));
            }
        }
        out
    }

    #[test]
    fn classifies_distinct_formats_well() {
        let r = DomainRegistry::standard();
        let train = training_columns(&r);
        let refs: Vec<(&Column, &str)> = train.iter().map(|(c, l)| (c, l.as_str())).collect();
        let clf = FeatureTypeClassifier::train(&refs);
        let mut correct = 0;
        let mut total = 0;
        for name in ["city", "email", "phone", "gene", "person", "price"] {
            for rep in 0..4u64 {
                let c = domain_column(&r, name, 1000 + rep * 40, 30);
                if clf.predict_label(&c) == name {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc >= 0.9, "accuracy {acc}");
    }

    #[test]
    fn scores_align_with_prediction() {
        let r = DomainRegistry::standard();
        let train = training_columns(&r);
        let refs: Vec<(&Column, &str)> = train.iter().map(|(c, l)| (c, l.as_str())).collect();
        let clf = FeatureTypeClassifier::train(&refs);
        let c = domain_column(&r, "email", 999, 20);
        let scores = clf.scores(&c);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best as TypeId, clf.predict(&c));
    }

    #[test]
    fn ambiguous_formats_confuse_the_feature_model() {
        // country / company / movie / book all render as Proper{3}: the
        // feature model cannot reliably separate them. This is the premise
        // of the Sato experiment (E10).
        let r = DomainRegistry::standard();
        let mut train: Vec<(Column, String)> = Vec::new();
        for name in ["country", "company", "movie", "book"] {
            for rep in 0..8u64 {
                train.push((domain_column(&r, name, rep * 60, 30), name.to_string()));
            }
        }
        let refs: Vec<(&Column, &str)> = train.iter().map(|(c, l)| (c, l.as_str())).collect();
        let clf = FeatureTypeClassifier::train(&refs);
        let mut correct = 0;
        let mut total = 0;
        for name in ["country", "company", "movie", "book"] {
            for rep in 0..5u64 {
                let c = domain_column(&r, name, 2000 + rep * 40, 30);
                if clf.predict_label(&c) == name {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc < 0.8, "feature model unexpectedly strong: {acc}");
    }

    /// Tables pairing an ambiguous column with a disambiguating companion.
    fn context_tables(r: &DomainRegistry, lo: u64) -> Vec<(Table, Vec<String>)> {
        let mut out = Vec::new();
        // Each ambiguous Proper{3} domain is paired with a context column
        // whose surface format is unmistakable (codes, names, emails,
        // phones), so the co-occurrence prior has an unambiguous handle.
        let worlds: [(&str, &str); 4] = [
            ("country", "phone"),
            ("company", "stock_ticker"),
            ("movie", "person"),
            ("book", "email"),
        ];
        for rep in 0..8u64 {
            for (amb, ctx) in worlds {
                let t = Table::new(
                    format!("{amb}_{rep}"),
                    vec![
                        domain_column(r, amb, lo + rep * 40, 25),
                        domain_column(r, ctx, lo + rep * 40, 25),
                    ],
                )
                .unwrap();
                out.push((t, vec![amb.to_string(), ctx.to_string()]));
            }
        }
        out
    }

    #[test]
    fn context_model_beats_feature_model_on_ambiguous_columns() {
        let r = DomainRegistry::standard();
        let train = context_tables(&r, 0);
        let train_refs: Vec<(&Table, Vec<&str>)> = train
            .iter()
            .map(|(t, l)| (t, l.iter().map(String::as_str).collect()))
            .collect();
        let ctx_clf = ContextTypeClassifier::train(&train_refs, 2.0);
        let test = context_tables(&r, 10_000);
        let mut base_ok = 0usize;
        let mut ctx_ok = 0usize;
        let mut total = 0usize;
        for (t, labels) in &test {
            let base_pred: Vec<&str> = t
                .columns
                .iter()
                .map(|c| ctx_clf.base.predict_label(c))
                .collect();
            let ctx_pred = ctx_clf.predict_table_labels(t);
            // Only grade the ambiguous first column.
            total += 1;
            if base_pred[0] == labels[0] {
                base_ok += 1;
            }
            if ctx_pred[0] == labels[0] {
                ctx_ok += 1;
            }
        }
        let base_acc = base_ok as f64 / total as f64;
        let ctx_acc = ctx_ok as f64 / total as f64;
        assert!(
            ctx_acc >= base_acc,
            "context {ctx_acc} should not trail features {base_acc}"
        );
        assert!(ctx_acc > 0.7, "context accuracy {ctx_acc}");
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn rejects_empty_training() {
        let _ = FeatureTypeClassifier::train(&[]);
    }

    #[test]
    fn type_id_roundtrip() {
        let r = DomainRegistry::standard();
        let train = training_columns(&r);
        let refs: Vec<(&Column, &str)> = train.iter().map(|(c, l)| (c, l.as_str())).collect();
        let clf = FeatureTypeClassifier::train(&refs);
        let id = clf.type_id("gene").unwrap();
        assert_eq!(clf.labels()[id as usize], "gene");
        assert!(clf.type_id("nope").is_none());
    }
}
