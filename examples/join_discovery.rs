//! Joinable-table search across the surveyed method families: exact top-k
//! overlap (JOSIE), containment search (LSH Ensemble), Jaccard baseline,
//! fuzzy embedding join (PEXESO), multi-attribute join (MATE), and
//! correlated search (QCR sketches) — all on synthetic benchmarks with
//! exact ground truth.
//!
//! ```sh
//! cargo run --example join_discovery
//! ```

use td::core::join::{
    ContainmentJoinSearch, CorrelatedSearch, ExactJoinSearch, ExactStrategy, FuzzyJoinSearch,
    JaccardJoinSearch, MateSearch,
};
use td::embed::NGramEmbedder;
use td::table::gen::bench_join::{
    CorrelationBenchmark, CorrelationConfig, JoinBenchConfig, JoinBenchmark, MultiJoinBenchmark,
    MultiJoinConfig,
};

fn main() {
    // ---- Exact overlap, containment, Jaccard --------------------------
    let bench = JoinBenchmark::generate(&JoinBenchConfig {
        query_size: 300,
        num_relevant: 40,
        num_noise: 20,
        ..Default::default()
    });
    let query = &bench.query.columns[bench.query_key];

    println!("== exact top-5 by overlap (JOSIE-style, adaptive strategy) ==");
    let exact = ExactJoinSearch::build(&bench.lake);
    let (hits, stats) = exact.search(query, 5, ExactStrategy::Adaptive);
    for h in &hits {
        println!(
            "  overlap {:4}  {}",
            h.overlap,
            bench.lake.table(h.column.table).name
        );
    }
    println!(
        "  (postings read: {}, sets verified: {})",
        stats.postings_read, stats.sets_verified
    );

    println!("\n== containment search at t = 0.8 (LSH Ensemble) ==");
    let cont = ContainmentJoinSearch::build(&bench.lake, 256, 8);
    for (c, est) in cont.query_threshold(query, 0.8).into_iter().take(5) {
        let truth = bench
            .truth
            .iter()
            .find(|t| t.table == c.table)
            .map(|t| t.containment);
        println!(
            "  est {est:4.2} (true {:4.2})  {}",
            truth.unwrap_or(0.0),
            bench.lake.table(c.table).name
        );
    }

    println!("\n== Jaccard top-5 (the biased baseline) ==");
    let jac = JaccardJoinSearch::build(&bench.lake, 256);
    for (c, j) in jac.top_k_jaccard(query, 5) {
        println!("  jaccard {j:4.2}  {}", bench.lake.table(c.table).name);
    }

    // ---- Fuzzy join on dirty values ------------------------------------
    println!("\n== fuzzy join over typo'd values (PEXESO-style) ==");
    let originals: Vec<String> = (0..40u64)
        .map(|i| td::table::gen::words::vocab_word(0xD1, i, 3))
        .collect();
    let dirty: Vec<String> = originals
        .iter()
        .map(|s| {
            let mut c: Vec<char> = s.chars().collect();
            let m = c.len() / 2;
            c.swap(m, m - 1);
            c.into_iter().collect()
        })
        .collect();
    let mut fuzzy_lake = td::table::DataLake::new();
    fuzzy_lake.add(
        td::table::Table::new(
            "dirty_copy.csv",
            vec![td::table::Column::from_strings("w", &dirty)],
        )
        .unwrap(),
    );
    let fuzzy = FuzzyJoinSearch::build(&fuzzy_lake, NGramEmbedder::new(64, 3, 7), 8, 64);
    let qcol = td::table::Column::from_strings("w", &originals);
    let (fhits, fstats) = fuzzy.search(&qcol, 0.55, 3);
    for (c, score) in &fhits {
        println!(
            "  fuzzy containment {score:4.2}  {} (exact equi-join overlap: 0)",
            fuzzy_lake.table(c.table).name
        );
    }
    println!(
        "  (pairs verified: {}, pruned by pivots: {})",
        fstats.pairs_verified, fstats.pairs_pruned
    );

    // ---- Multi-attribute join -------------------------------------------
    println!("\n== multi-attribute join (MATE-style super keys) ==");
    let mb = MultiJoinBenchmark::generate(&MultiJoinConfig::default());
    let mate = MateSearch::build(&mb.lake);
    let (mhits, mstats) = mate.search(&mb.query, &[0, 1], 5);
    for (t, frac) in &mhits {
        let truth = mb.truth.iter().find(|x| x.table == *t).unwrap();
        println!(
            "  rows matched {frac:4.2} (truth {:4.2}, decoy: {})  {}",
            truth.row_containment,
            truth.single_attr_only,
            mb.lake.table(*t).name
        );
    }
    println!(
        "  (rows fetched {}, after super-key filter {}, verified {})",
        mstats.rows_fetched, mstats.rows_after_superkey, mstats.rows_verified
    );

    // ---- Correlated search ---------------------------------------------
    println!("\n== correlated dataset search (QCR sketches) ==");
    let cb = CorrelationBenchmark::generate(&CorrelationConfig::default());
    let corr = CorrelatedSearch::build(&cb.lake, 512);
    for hit in corr.search(&cb.query.columns[0], &cb.query.columns[1], 5, 20) {
        let truth = cb
            .truth
            .iter()
            .find(|t| t.table == hit.numeric_column.table)
            .unwrap();
        println!(
            "  est ρ {:+5.2} (planted {:+5.2})  {}",
            hit.estimated_correlation,
            truth.rho,
            cb.lake.table(hit.numeric_column.table).name
        );
    }
}
