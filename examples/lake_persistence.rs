//! Lake persistence and cost-based access-method selection: save a
//! generated lake as a directory of CSVs (the shape real portals have),
//! load it back, and let the calibrated cost model decide between an
//! exact scan and HNSW as the corpus grows.
//!
//! ```sh
//! cargo run --example lake_persistence
//! ```

use td::embed::{embed_column, DomainEmbedder};
use td::index::{AdaptiveVectorIndex, CostModel, Workload};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::io::{load_dir, save_dir};

fn main() {
    // 1. Generate and persist a lake.
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 40,
        rows: (10, 40),
        cols: (2, 4),
        seed: 15,
        ..Default::default()
    });
    let dir = std::env::temp_dir().join("lakehouse_discovery_demo");
    let _ = std::fs::remove_dir_all(&dir);
    save_dir(&gl.lake, &dir).expect("save lake");
    println!("saved {} tables to {}", gl.lake.len(), dir.display());

    // 2. Load it back — ids are assigned in sorted-file order.
    let lake = load_dir(&dir).expect("load lake");
    println!(
        "loaded {} tables, {} columns",
        lake.len(),
        lake.num_columns()
    );

    // 3. Calibrate the access-method cost model on this machine and ask it
    //    where the flat-scan → HNSW crossover sits for a busy workload.
    let model = CostModel::calibrate(64);
    println!(
        "\ncalibrated costs: flat {:.1} ns/vec, hnsw {:.1} ns/log-step, \
         hnsw build {:.0} ns/vec",
        model.flat_ns_per_vector, model.hnsw_ns_per_log_step, model.hnsw_build_ns_per_vector
    );
    for &queries in &[10usize, 1_000, 100_000] {
        match model.crossover(queries, 10, 1 << 24) {
            Some(n) => println!("  {queries:>6} queries: HNSW pays off from ~{n} vectors"),
            None => println!("  {queries:>6} queries: flat scan wins at every size"),
        }
    }

    // 4. Drive an adaptive index with the lake's column embeddings.
    let emb = DomainEmbedder::from_registry(&gl.registry, 1_024, 64, 0.4, 5);
    let mut index = AdaptiveVectorIndex::new(64, model, 50_000);
    let mut first_vec = None;
    for (_, col) in lake.columns() {
        if col.is_numeric() {
            continue;
        }
        let v = embed_column(&emb, col, 32);
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        first_vec.get_or_insert_with(|| v.clone());
        index.insert(v);
    }
    println!(
        "\nadaptive index holds {} column vectors; selector currently picks {:?} \
         (workload: {:?})",
        index.len(),
        index.current_method(),
        Workload {
            corpus_size: index.len(),
            expected_queries: 50_000,
            k: 10
        }
    );
    if let Some(q) = first_vec {
        let hits = index.search(&q, 3);
        println!(
            "top-3 self-query similarities: {:?}",
            hits.iter().map(|(_, s)| *s).collect::<Vec<_>>()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
