//! Discovery in service of machine learning: ARDA-style feature
//! augmentation, training-set harvesting, and KB completion via table
//! stitching.
//!
//! ```sh
//! cargo run --example ml_augmentation
//! ```

use td::apps::{
    augment_regression, discover_training_set, kb_completion, AugmentConfig, TrainsetConfig,
};
use td::embed::DomainEmbedder;
use td::table::gen::bench_union::RelationSpec;
use td::table::gen::domains::DomainRegistry;
use td::table::{Column, DataLake, Table, Value};
use td::understand::annotate::AnnotateConfig;
use td::understand::kb::{KbConfig, KnowledgeBase};

fn main() {
    let registry = DomainRegistry::standard();
    let city = registry.id("city").unwrap();

    // ---- ARDA-style augmentation ----------------------------------------
    // Base table predicts y; the informative features live in other tables.
    let n = 200usize;
    let det =
        |i: usize, salt: u64| (td::sketch::hash_u64(i as u64, salt) % 1000) as f64 / 500.0 - 1.0;
    let keys: Vec<Value> = (0..n as u64).map(|i| registry.value(city, i)).collect();
    let f1: Vec<f64> = (0..n).map(|i| det(i, 1)).collect();
    let y: Vec<f64> = (0..n).map(|i| 3.0 * f1[i] + det(i, 4) * 0.1).collect();
    let base = Table::new(
        "base",
        vec![
            Column::new("city", keys.clone()),
            Column::new("y", y.iter().map(|&v| Value::Float(v)).collect()),
        ],
    )
    .unwrap();
    let mut lake = DataLake::new();
    lake.add(
        Table::new(
            "indicators",
            vec![
                Column::new("city", keys.clone()),
                Column::new("f1", f1.iter().map(|&v| Value::Float(v)).collect()),
                Column::new("junk", (0..n).map(|i| Value::Float(det(i, 9))).collect()),
            ],
        )
        .unwrap(),
    );
    let outcome = augment_regression(&lake, &base, 0, 1, &AugmentConfig::default());
    println!("== feature augmentation (ARDA-style) ==");
    println!("  base-only test R²:          {:6.3}", outcome.base_r2);
    println!("  join-all test R²:           {:6.3}", outcome.join_all_r2);
    println!("  selected-features test R²:  {:6.3}", outcome.selected_r2);
    for c in &outcome.candidates {
        println!(
            "  candidate {} (|corr| {:.2}) selected: {}",
            lake.table(c.column.table).columns[c.column.column as usize].name,
            c.relevance,
            c.selected
        );
    }

    // ---- Training-set discovery -------------------------------------------
    println!("\n== training-set harvesting ==");
    let gene = registry.id("gene").unwrap();
    let mut tl = DataLake::new();
    for (name, d, lo) in [("cities", city, 0u64), ("genes", gene, 0)] {
        tl.add(
            Table::new(
                name,
                vec![Column::new(
                    name,
                    (lo..lo + 60).map(|i| registry.value(d, i)).collect(),
                )],
            )
            .unwrap(),
        );
    }
    let emb = DomainEmbedder::from_registry(&registry, 1_000, 64, 0.4, 13);
    let seeds = vec![
        (500..505u64)
            .map(|i| registry.value(city, i).to_string())
            .collect(),
        (500..505u64)
            .map(|i| registry.value(gene, i).to_string())
            .collect(),
    ];
    let harvested = discover_training_set(&tl, &seeds, &emb, &TrainsetConfig::default());
    println!(
        "  harvested {} labeled examples from 5+5 seeds",
        harvested.len()
    );
    for h in harvested.iter().take(4) {
        println!(
            "  {:<16} class {} (confidence {:.2})",
            h.value, h.label, h.confidence
        );
    }

    // ---- KB completion via stitching ----------------------------------------
    println!("\n== KB completion via table stitching ==");
    let spec = RelationSpec {
        key_dom: city,
        attr_dom: registry.id("country").unwrap(),
        rel_id: 6,
    };
    let kb = KnowledgeBase::build(
        &registry,
        &[spec],
        &KbConfig {
            vocab_per_domain: 2_048,
            facts_per_relation: 2_048,
            type_coverage: 1.0,
            relation_coverage: 0.35,
            ..Default::default()
        },
    );
    let mut frag_lake = DataLake::new();
    for f in 0..25u64 {
        let lo = f * 4;
        frag_lake.add(
            Table::new(
                format!("frag_{f:02}.csv"),
                vec![
                    Column::new(
                        "city",
                        (lo..lo + 4)
                            .map(|i| registry.value(spec.key_dom, i))
                            .collect(),
                    ),
                    Column::new(
                        "country",
                        (lo..lo + 4)
                            .map(|i| registry.value(spec.attr_dom, spec.attr_index(i)))
                            .collect(),
                    ),
                ],
            )
            .unwrap(),
        );
    }
    let report = kb_completion(
        &frag_lake,
        &kb,
        &AnnotateConfig {
            min_relation_support: 0.25,
            ..Default::default()
        },
    );
    println!(
        "  fragments annotated: {}/{}; new facts from fragments: {}",
        report.fragments_annotated, report.fragments_total, report.facts_from_fragments
    );
    println!(
        "  stitched groups annotated: {}/{}; new facts from stitched: {}",
        report.stitched_annotated, report.stitched_total, report.facts_from_stitched
    );
}
