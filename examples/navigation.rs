//! Data-lake navigation: the Aurum-style linkage graph, a navigable
//! organization with its probabilistic discovery model, RONIN-style
//! online grouping of search results, and DomainNet homograph detection.
//!
//! ```sh
//! cargo run --example navigation
//! ```

use td::embed::{ContextualEncoder, DomainEmbedder};
use td::nav::{
    group_results, rank_homographs, HomographConfig, LinkageConfig, LinkageGraph, Organization,
    OrganizeConfig, RoninConfig,
};
use td::table::gen::domains::DomainRegistry;
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::TableId;

fn main() {
    // A topical lake with ground-truth categories.
    let mut registry = DomainRegistry::standard();
    let city = registry.id("city").unwrap();
    let animal = registry.id("animal").unwrap();
    registry.add_homograph_pair(city, animal, 40);
    let gl = LakeGenerator::with_registry(registry.clone()).generate(&LakeGenConfig {
        num_tables: 60,
        rows: (30, 80),
        cols: (2, 4),
        header_noise: 0.1,
        seed: 11,
        ..Default::default()
    });

    // ---- Linkage graph ---------------------------------------------------
    let graph = LinkageGraph::build(&gl.lake, &LinkageConfig::default());
    println!("linkage graph: {} directed edges", graph.num_edges());
    let start = TableId(0);
    let related = graph.related_tables(&gl.lake, start, 2);
    println!(
        "tables related to {} within 2 hops: {}",
        gl.lake.table(start).name,
        related.len()
    );
    for t in related.iter().take(5) {
        println!("  {}", gl.lake.table(*t).name);
    }

    // ---- Organization + discovery probability ----------------------------
    let emb = DomainEmbedder::from_registry(&registry, 2_048, 64, 0.4, 5);
    let enc = ContextualEncoder::default();
    let items: Vec<(TableId, Vec<f32>)> = gl
        .lake
        .iter()
        .map(|(id, t)| (id, enc.encode_table_vector(&emb, t)))
        .collect();
    let org = Organization::build(&items, &OrganizeConfig::default());
    println!(
        "\norganization: {} nodes over {} tables",
        org.num_nodes(),
        items.len()
    );
    let avg_p: f64 = items
        .iter()
        .map(|(t, v)| org.discovery_probability(*t, v, 8.0))
        .sum::<f64>()
        / items.len() as f64;
    let uniform_p: f64 = items
        .iter()
        .map(|(t, v)| org.discovery_probability(*t, v, 0.0))
        .sum::<f64>()
        / items.len() as f64;
    println!(
        "expected discovery probability: informed {avg_p:.3} vs uniform descent {uniform_p:.3}"
    );

    // ---- RONIN: group a result set online ---------------------------------
    let results: Vec<(TableId, Vec<f32>)> = items.iter().take(24).cloned().collect();
    let groups = group_results(
        &gl.lake,
        &results,
        &RoninConfig {
            groups: 4,
            ..Default::default()
        },
    );
    println!("\nonline exploration groups over the first 24 results:");
    for g in &groups {
        println!("  [{}] {} tables, e.g. {}", g.label, g.tables.len(), {
            let names: Vec<&str> = g
                .tables
                .iter()
                .take(3)
                .map(|t| gl.lake.table(*t).name.as_str())
                .collect();
            names.join(", ")
        });
    }

    // ---- Homograph detection ----------------------------------------------
    let ranked = rank_homographs(&gl.lake, &HomographConfig::default());
    println!("\ntop candidate homographs by betweenness centrality:");
    for v in ranked.iter().take(8) {
        println!(
            "  {:<18} betweenness {:>10.1}, in {} columns",
            v.value, v.betweenness, v.degree
        );
    }
}
