//! Quickstart: ingest CSVs into a lake, build the discovery pipeline, and
//! run one query of every family.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use td::core::{DiscoveryPipeline, PipelineConfig};
use td::table::csv;
use td::table::gen::domains::DomainRegistry;
use td::table::{DataLake, TableMeta};

fn main() {
    // 1. Ingest: a handful of CSVs, as they would arrive in a lake.
    let mut lake = DataLake::new();
    let mut cities = csv::read_table(
        "city_stats.csv",
        "city,population,country\n\
         Boston,650000,USA\n\
         Seattle,740000,USA\n\
         Austin,960000,USA\n\
         Lyon,520000,France\n\
         Nantes,320000,France\n",
    )
    .expect("valid csv");
    cities.meta = TableMeta {
        title: "City statistics".into(),
        description: "Population by city".into(),
        tags: vec!["geography".into()],
        source: "quickstart".into(),
    };
    lake.add(cities);

    let budgets = csv::read_table(
        "budgets.csv",
        "city,budget\n\
         Boston,4200\n\
         Seattle,6100\n\
         Austin,4800\n\
         Lyon,900\n",
    )
    .expect("valid csv");
    lake.add(budgets);

    let more_cities = csv::read_table(
        "more_cities.csv",
        "town,mayor\n\
         Porto,Silva\n\
         Lyon,Martin\n\
         Ghent,Peeters\n\
         Austin,Watson\n",
    )
    .expect("valid csv");
    lake.add(more_cities);

    // 2. Offline: profile, understand, index — one call.
    let registry = DomainRegistry::standard();
    let pipeline = DiscoveryPipeline::build(&lake, &registry, &[], &PipelineConfig::default());
    println!(
        "lake: {} tables, {} columns profiled",
        lake.len(),
        pipeline.profile.len()
    );

    // 3. Keyword search over metadata.
    println!("\nkeyword search: \"city population\"");
    for (t, score) in pipeline.search_keyword("city population", 3) {
        println!("  {score:6.2}  {}", lake.table(t).name);
    }

    // 4. Joinable search: which tables join with city_stats.city?
    let query = lake.table(td::table::TableId(0));
    let key = &query.columns[0];
    println!("\njoinable search on {}.city:", query.name);
    for (t, overlap) in pipeline.search_joinable(key, 3) {
        println!("  overlap {overlap:2}  {}", lake.table(t).name);
    }

    // 5. Unionable search: which tables extend city_stats with new rows?
    println!("\nunionable search for {}:", query.name);
    for (t, score) in pipeline.search_unionable(query, 3) {
        println!("  score {score:5.2}  {}", lake.table(t).name);
    }
}
