//! Unionable-table search through the TUS → SANTOS → Starmie progression,
//! on a benchmark with relationship decoys and homograph decoys.
//!
//! ```sh
//! cargo run --example union_discovery
//! ```

use std::collections::HashSet;
use td::core::metrics::precision_at_k;
use td::core::union::{
    MeasureContext, SantosConfig, SantosSearch, StarmieConfig, StarmieSearch, TusSearch,
    UnionMeasure, VectorBackend,
};
use td::embed::{ContextualEncoder, DomainEmbedder, NGramEmbedder};
use td::table::gen::bench_union::{UnionBenchConfig, UnionBenchmark};
use td::table::TableId;
use td::understand::kb::{KbConfig, KnowledgeBase};

fn main() {
    let bench = UnionBenchmark::generate(&UnionBenchConfig {
        num_queries: 3,
        positives: 5,
        partials: 3,
        relation_decoys: 4,
        homograph_decoys: 4,
        noise: 20,
        rows: 100,
        key_slice: 200,
        homograph_range: 500,
        ..Default::default()
    });
    println!(
        "benchmark: {} queries, {} corpus tables",
        bench.queries.len(),
        bench.lake.len()
    );

    // ---- TUS: measure ablation -----------------------------------------
    let tus = TusSearch::build(
        &bench.lake,
        MeasureContext {
            domain_emb: DomainEmbedder::from_registry(&bench.registry, 2_048, 64, 0.4, 3),
            ngram_emb: NGramEmbedder::new(64, 3, 3),
            sample: 48,
        },
    );
    println!("\n== TUS attribute-unionability measures (mean P@5) ==");
    for measure in [
        UnionMeasure::Syntactic,
        UnionMeasure::Semantic,
        UnionMeasure::NaturalLanguage,
        UnionMeasure::Ensemble,
    ] {
        let p = mean_p_at_5(&bench, |q| {
            tus.search(&bench.queries[q], 5, measure)
                .into_iter()
                .map(|(t, _)| t)
                .collect()
        });
        println!("  {measure:?}: {p:.2}");
    }

    // ---- SANTOS: relationships vs columns only --------------------------
    let kb = KnowledgeBase::build(
        &bench.registry,
        &bench.relations,
        &KbConfig {
            vocab_per_domain: 2_048,
            facts_per_relation: 2_048,
            type_coverage: 0.95,
            relation_coverage: 0.9,
            ..Default::default()
        },
    );
    let santos = SantosSearch::build(&bench.lake, kb, SantosConfig::default());
    println!("\n== SANTOS: relationship-aware vs column-only ==");
    println!("  (margin = mean positive score − mean relation-decoy score;");
    println!("   zero means the scorer cannot tell them apart)");
    let (m_rel, m_col) = santos_margins(&bench, &santos);
    println!("  relationship-aware margin: {m_rel:.2}");
    println!("  column-only margin:        {m_col:.2}");

    // ---- Starmie: contextual vs context-free ----------------------------
    println!("\n== Starmie: contextual vs context-free encoders ==");
    println!("  (P@5 of positive-table columns when querying the ambiguous");
    println!("   homograph key column — context must disambiguate it)");
    for (label, alpha) in [("contextual (α=0.5)", 0.5f32), ("context-free (α=0)", 0.0)] {
        let starmie = StarmieSearch::build(
            &bench.lake,
            DomainEmbedder::from_registry(&bench.registry, 2_048, 64, 0.4, 3),
            StarmieConfig {
                encoder: ContextualEncoder { alpha, sample: 48 },
                backend: VectorBackend::Hnsw,
                ..Default::default()
            },
        );
        let p_col = (0..bench.queries.len())
            .map(|q| {
                let pos: HashSet<TableId> = bench.tables_with_grade(q, 2).into_iter().collect();
                let hits = starmie.search_column(&bench.queries[q], 0, 5);
                hits.iter().filter(|(c, _)| pos.contains(&c.table)).count() as f64 / 5.0
            })
            .sum::<f64>()
            / bench.queries.len() as f64;
        let p_table = mean_p_at_5(&bench, |q| {
            starmie
                .search(&bench.queries[q], 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect()
        });
        println!("  {label}: column-level P@5 {p_col:.2}, table-level P@5 {p_table:.2}");
    }
}

/// Mean score margins (positives minus relation decoys) for SANTOS's two
/// scorers.
fn santos_margins(bench: &UnionBenchmark, santos: &SantosSearch) -> (f64, f64) {
    use td::table::gen::bench_union::CandidateKind;
    let cfg = SantosConfig::default();
    let (mut rel, mut col) = (0.0, 0.0);
    for q in 0..bench.queries.len() {
        let qsig = SantosSearch::signature_of(&bench.queries[q], santos.kb_ref(), &cfg);
        let mean_score = |kind: CandidateKind, column_only: bool| {
            let tables: Vec<TableId> = bench
                .truth_for(q)
                .into_iter()
                .filter(|t| t.kind == kind)
                .map(|t| t.table)
                .collect();
            tables
                .iter()
                .map(|t| {
                    let sig = santos.signature(*t).expect("annotated");
                    if column_only {
                        santos.score_column_only(&qsig, sig)
                    } else {
                        santos.score(&qsig, sig)
                    }
                })
                .sum::<f64>()
                / tables.len().max(1) as f64
        };
        rel += mean_score(CandidateKind::Positive, false)
            - mean_score(CandidateKind::RelationDecoy, false);
        col += mean_score(CandidateKind::Positive, true)
            - mean_score(CandidateKind::RelationDecoy, true);
    }
    let n = bench.queries.len() as f64;
    (rel / n, col / n)
}

fn mean_p_at_5(bench: &UnionBenchmark, f: impl Fn(usize) -> Vec<TableId>) -> f64 {
    (0..bench.queries.len())
        .map(|q| {
            let relevant: HashSet<TableId> = bench.tables_with_grade(q, 2).into_iter().collect();
            precision_at_k(&f(q), &relevant, 5)
        })
        .sum::<f64>()
        / bench.queries.len() as f64
}
