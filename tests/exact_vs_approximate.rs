//! Cross-crate consistency: approximate methods (sketches, LSH, HNSW)
//! must agree with their exact counterparts within principled error
//! bounds, on the same benchmark data the experiments use.

use std::collections::HashSet;
use td::core::join::{ContainmentJoinSearch, ExactJoinSearch, ExactStrategy, JaccardJoinSearch};
use td::index::{FlatIndex, Hnsw, HnswParams};
use td::sketch::{KmvSketch, MinHasher};
use td::table::gen::bench_join::{JoinBenchConfig, JoinBenchmark};
use td::table::TableId;

fn bench() -> JoinBenchmark {
    JoinBenchmark::generate(&JoinBenchConfig {
        query_size: 250,
        num_relevant: 40,
        num_noise: 20,
        card_range: (40, 10_000),
        seed: 123,
        ..Default::default()
    })
}

#[test]
fn minhash_and_kmv_agree_with_exact_jaccard() {
    let b = bench();
    let hasher = MinHasher::new(512, 4);
    let qtokens = b.query.columns[0].token_set();
    let qsig = hasher.sign(qtokens.iter().map(String::as_str));
    let qkmv = KmvSketch::from_tokens(512, 4, qtokens.iter().map(String::as_str));
    for t in b.truth.iter().take(15) {
        let col = &b.lake.table(t.table).columns[t.column];
        let ctokens = col.token_set();
        let csig = hasher.sign(ctokens.iter().map(String::as_str));
        let ckmv = KmvSketch::from_tokens(512, 4, ctokens.iter().map(String::as_str));
        let mh_err = (qsig.jaccard(&csig) - t.jaccard).abs();
        assert!(mh_err < 0.12, "minhash err {mh_err} at true {}", t.jaccard);
        let kmv_err = (qkmv.estimate_jaccard(&ckmv) - t.jaccard).abs();
        assert!(kmv_err < 0.2, "kmv err {kmv_err} at true {}", t.jaccard);
        // The Jaccard→containment conversion amplifies estimator noise by
        // (|A|+|B|)/|A|, so the tolerance must scale with the size ratio:
        // sigma_c ≈ sqrt(j(1-j)/k) · (|A|+|B|)/|A|; allow 5 sigma + slack.
        let ratio = (qtokens.len() + ctokens.len()) as f64 / qtokens.len() as f64;
        let sigma = (t.jaccard * (1.0 - t.jaccard) / 512.0).sqrt() * ratio;
        let tol = 0.05 + 5.0 * sigma;
        let cont_err = (qsig.containment_in(&csig) - t.containment).abs();
        assert!(
            cont_err < tol,
            "containment err {cont_err} (tol {tol}) at true {}",
            t.containment
        );
    }
}

#[test]
fn exact_join_strategies_are_interchangeable() {
    let b = bench();
    let s = ExactJoinSearch::build(&b.lake);
    let q = &b.query.columns[0];
    for k in [1, 5, 20] {
        let ov = |st| {
            let (h, _) = s.search(q, k, st);
            h.into_iter().map(|x| x.overlap).collect::<Vec<_>>()
        };
        let m = ov(ExactStrategy::Merge);
        assert_eq!(m, ov(ExactStrategy::Probe), "k={k}");
        assert_eq!(m, ov(ExactStrategy::Adaptive), "k={k}");
    }
}

#[test]
fn ensemble_recall_against_exact_containment() {
    let b = bench();
    let s = ContainmentJoinSearch::build(&b.lake, 256, 8);
    let hits = s.query_threshold(&b.query.columns[0], 0.7);
    let got: HashSet<TableId> = hits.iter().map(|(c, _)| c.table).collect();
    // Exact truth: tables with containment comfortably above threshold.
    let should: Vec<TableId> = b
        .truth
        .iter()
        .filter(|t| t.containment >= 0.8)
        .map(|t| t.table)
        .collect();
    let found = should.iter().filter(|t| got.contains(t)).count();
    assert!(
        found as f64 >= 0.85 * should.len() as f64,
        "ensemble recall {found}/{}",
        should.len()
    );
}

#[test]
fn jaccard_linear_scan_matches_exact_ranking_roughly() {
    let b = bench();
    let s = JaccardJoinSearch::build(&b.lake, 512);
    let approx: Vec<TableId> = s
        .top_k_jaccard(&b.query.columns[0], 10)
        .into_iter()
        .map(|(c, _)| c.table)
        .collect();
    let mut truth = b.truth.clone();
    truth.sort_by(|a, b| b.jaccard.total_cmp(&a.jaccard));
    let exact: HashSet<TableId> = truth.iter().take(10).map(|t| t.table).collect();
    let agree = approx.iter().filter(|t| exact.contains(t)).count();
    assert!(agree >= 7, "only {agree}/10 agreement");
}

#[test]
fn hnsw_recall_against_flat_on_column_embeddings() {
    use td::embed::{embed_column, DomainEmbedder};
    let b = bench();
    let emb = DomainEmbedder::from_registry(&b.registry, 2_048, 64, 0.4, 3);
    let mut flat = FlatIndex::new(64);
    let mut hnsw = Hnsw::new(64, HnswParams::default());
    let mut count = 0;
    for (_, col) in b.lake.columns() {
        if col.is_numeric() {
            continue;
        }
        let v = embed_column(&emb, col, 32);
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        flat.insert(v.clone());
        hnsw.insert(v);
        count += 1;
    }
    assert!(count > 50);
    let q = embed_column(&emb, &b.query.columns[0], 32);
    let exact: HashSet<u32> = flat.search(&q, 10).into_iter().map(|(i, _)| i).collect();
    let approx = hnsw.search(&q, 10, 80);
    let recall = approx.iter().filter(|(i, _)| exact.contains(i)).count();
    assert!(recall >= 8, "hnsw recall {recall}/10");
}
