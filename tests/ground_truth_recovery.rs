//! Every search family must recover its benchmark's planted ground truth
//! — the integration-level contract behind the experiment suite.

use std::collections::HashSet;
use td::core::join::{CorrelatedSearch, ExactJoinSearch, ExactStrategy, MateSearch};
use td::core::metrics::precision_at_k;
use td::core::union::{MeasureContext, SantosConfig, SantosSearch, TusSearch, UnionMeasure};
use td::embed::{DomainEmbedder, NGramEmbedder};
use td::nav::{rank_homographs, HomographConfig};
use td::table::gen::bench_join::{
    CorrelationBenchmark, CorrelationConfig, JoinBenchConfig, JoinBenchmark, MultiJoinBenchmark,
    MultiJoinConfig,
};
use td::table::gen::bench_union::{UnionBenchConfig, UnionBenchmark};
use td::table::gen::domains::DomainRegistry;
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::TableId;
use td::understand::domain::{discover_domains, pairwise_f1, DomainDiscoveryConfig};
use td::understand::kb::{KbConfig, KnowledgeBase};

#[test]
fn exact_join_recovers_overlap_ordering() {
    let b = JoinBenchmark::generate(&JoinBenchConfig::default());
    let s = ExactJoinSearch::build(&b.lake);
    let (hits, _) = s.search(&b.query.columns[0], 10, ExactStrategy::Adaptive);
    let truth = b.by_overlap();
    for (h, t) in hits.iter().zip(&truth) {
        assert_eq!(h.overlap, t.overlap);
    }
}

#[test]
fn mate_recovers_composite_join_ground_truth() {
    let b = MultiJoinBenchmark::generate(&MultiJoinConfig::default());
    let s = MateSearch::build(&b.lake);
    let (hits, _) = s.search(&b.query, &[0, 1], 30);
    let decoys: HashSet<TableId> = b
        .truth
        .iter()
        .filter(|t| t.single_attr_only)
        .map(|t| t.table)
        .collect();
    for (t, score) in &hits {
        if *score > 0.0 {
            assert!(!decoys.contains(t), "decoy {t} got positive score {score}");
        }
    }
}

#[test]
fn correlated_search_recovers_extreme_rhos_first() {
    let b = CorrelationBenchmark::generate(&CorrelationConfig::default());
    let s = CorrelatedSearch::build(&b.lake, 1024);
    let hits = s.search(&b.query.columns[0], &b.query.columns[1], 4, 20);
    for h in hits.iter().take(2) {
        let t = b
            .truth
            .iter()
            .find(|t| t.table == h.numeric_column.table)
            .unwrap();
        assert!(t.rho.abs() >= 0.6, "top hit planted rho {}", t.rho);
    }
}

#[test]
fn union_families_recover_their_targets() {
    let b = UnionBenchmark::generate(&UnionBenchConfig {
        num_queries: 2,
        positives: 5,
        partials: 2,
        relation_decoys: 4,
        homograph_decoys: 0,
        noise: 15,
        rows: 80,
        key_slice: 150,
        homograph_range: 1,
        ..Default::default()
    });
    // TUS on a decoy-free relevant set (positives + decoys share domains,
    // so grade-2 ∪ decoys is TUS-relevant; SANTOS must separate them).
    let tus = TusSearch::build(
        &b.lake,
        MeasureContext {
            domain_emb: DomainEmbedder::from_registry(&b.registry, 2_048, 64, 0.4, 3),
            ngram_emb: NGramEmbedder::new(64, 3, 3),
            sample: 48,
        },
    );
    let kb = KnowledgeBase::build(
        &b.registry,
        &b.relations,
        &KbConfig {
            vocab_per_domain: 2_048,
            facts_per_relation: 2_048,
            type_coverage: 0.95,
            relation_coverage: 0.9,
            ..Default::default()
        },
    );
    let santos = SantosSearch::build(&b.lake, kb, SantosConfig::default());
    for q in 0..b.queries.len() {
        let positives: HashSet<TableId> = b.tables_with_grade(q, 2).into_iter().collect();
        // SANTOS: positives only.
        let res: Vec<TableId> = santos
            .search(&b.queries[q], 5)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let p = precision_at_k(&res, &positives, 5);
        assert!(p >= 0.8, "query {q}: SANTOS P@5 {p}");
        // TUS: same-domain tables (positives + relation decoys) rank high.
        let mut tus_relevant = positives.clone();
        tus_relevant.extend(
            b.truth_for(q)
                .into_iter()
                .filter(|t| t.kind == td::table::gen::bench_union::CandidateKind::RelationDecoy)
                .map(|t| t.table),
        );
        let res: Vec<TableId> = tus
            .search(&b.queries[q], 5, UnionMeasure::Ensemble)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let p = precision_at_k(&res, &tus_relevant, 5);
        assert!(p >= 0.8, "query {q}: TUS P@5 {p}");
    }
}

#[test]
fn domain_discovery_recovers_generator_domains() {
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 40,
        rows: (60, 120),
        cols: (1, 2),
        zipf_s: 0.6,
        max_card: 300,
        min_card: 80,
        header_noise: 1.0, // headers are useless: values must carry the day
        seed: 31,
        ..Default::default()
    });
    let domains = discover_domains(
        &gl.lake,
        &DomainDiscoveryConfig {
            jaccard_threshold: 0.08,
            ..Default::default()
        },
    );
    assert!(!domains.is_empty());
    let clusters: Vec<Vec<td::table::ColumnRef>> =
        domains.iter().map(|d| d.columns.clone()).collect();
    // Truth restricted to categorical columns.
    let truth: std::collections::HashMap<td::table::ColumnRef, u16> = gl
        .column_domains
        .iter()
        .filter(|(r, d)| {
            !gl.registry.domain(**d).format.is_numeric() && gl.lake.column(**r).num_distinct() >= 3
        })
        .map(|(r, d)| (*r, d.0))
        .collect();
    let (p, _r, _f1) = pairwise_f1(&clusters, &truth);
    assert!(p > 0.9, "domain discovery precision {p}");
}

#[test]
fn homograph_detection_recovers_planted_homographs() {
    let mut registry = DomainRegistry::standard();
    let city = registry.id("city").unwrap();
    let animal = registry.id("animal").unwrap();
    registry.add_homograph_pair(city, animal, 8);
    let mut lake = td::table::DataLake::new();
    for w in 0..4u64 {
        for (name, d) in [("city", city), ("animal", animal)] {
            let col = td::table::Column::new(
                name,
                (w * 15..w * 15 + 40)
                    .map(|i| registry.value(d, i))
                    .collect::<Vec<_>>(),
            );
            lake.add(td::table::Table::new(format!("{name}_{w}"), vec![col]).unwrap());
        }
    }
    let ranked = rank_homographs(
        &lake,
        &HomographConfig {
            sample_sources: 0,
            ..Default::default()
        },
    );
    let homographs: HashSet<String> = (0..8u64)
        .map(|i| registry.value(city, i).to_string().to_lowercase())
        .collect();
    let top: Vec<&str> = ranked.iter().take(12).map(|v| v.value.as_str()).collect();
    let found = homographs
        .iter()
        .filter(|h| top.contains(&h.as_str()))
        .count();
    assert!(
        found >= 6,
        "found only {found}/8 planted homographs in top 12"
    );
}

#[test]
fn feature_classifier_recovers_generator_domains() {
    // Train on half of a generated lake's columns (labels from the
    // generator's ground truth), evaluate on the other half — restricted
    // to domains with distinctive formats, which is the feature model's
    // home turf (ambiguous formats are E10's subject).
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 120,
        rows: (30, 80),
        cols: (1, 3),
        header_noise: 1.0,
        null_rate: 0.0,
        seed: 55,
        ..Default::default()
    });
    let friendly = ["email", "phone", "gene", "person", "event_date", "city"];
    let mut labeled: Vec<(td::table::ColumnRef, &str)> = Vec::new();
    for (r, d) in &gl.column_domains {
        let name = &gl.registry.domain(*d).name;
        if friendly.contains(&name.as_str()) && gl.lake.column(*r).num_distinct() >= 5 {
            labeled.push((*r, friendly.iter().find(|f| *f == name).unwrap()));
        }
    }
    labeled.sort_by_key(|(r, _)| *r);
    assert!(
        labeled.len() >= 40,
        "too few labeled columns: {}",
        labeled.len()
    );
    let (train, test): (Vec<_>, Vec<_>) = labeled.iter().enumerate().partition(|(i, _)| i % 2 == 0);
    let train_refs: Vec<(&td::table::Column, &str)> = train
        .iter()
        .map(|(_, (r, l))| (gl.lake.column(*r), *l))
        .collect();
    let clf = td::understand::FeatureTypeClassifier::train(&train_refs);
    let correct = test
        .iter()
        .filter(|(_, (r, l))| clf.predict_label(gl.lake.column(*r)) == *l)
        .count();
    let acc = correct as f64 / test.len() as f64;
    assert!(
        acc >= 0.85,
        "accuracy {acc} over {} test columns",
        test.len()
    );
}

#[test]
fn kb_annotation_recovers_generator_domains() {
    use td::understand::annotate::{annotate_table, AnnotateConfig};
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 40,
        rows: (20, 60),
        cols: (1, 3),
        max_card: 1_000,
        null_rate: 0.0,
        seed: 66,
        ..Default::default()
    });
    let kb = KnowledgeBase::build(
        &gl.registry,
        &[],
        &KbConfig {
            vocab_per_domain: 2_048,
            type_coverage: 1.0,
            ..Default::default()
        },
    );
    let mut correct = 0usize;
    let mut graded = 0usize;
    for (id, table) in gl.lake.iter() {
        let ann = annotate_table(table, &kb, &AnnotateConfig::default());
        for ci in 0..table.num_cols() {
            let truth = gl.column_domains[&td::table::ColumnRef::new(id, ci)];
            if gl.registry.domain(truth).format.is_numeric() {
                continue; // the KB types categorical values only
            }
            graded += 1;
            if ann.best_type(ci).map(|a| a.ty) == Some(truth) {
                correct += 1;
            }
        }
    }
    assert!(graded >= 30);
    let acc = correct as f64 / graded as f64;
    assert!(
        acc >= 0.95,
        "annotation accuracy {acc} over {graded} columns"
    );
}
