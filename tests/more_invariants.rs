//! Additional property tests across the higher layers: vector indices,
//! ensembles, organizations, stitching, and the access-method cost model.

use proptest::prelude::*;
use std::collections::HashSet;
use td::embed::seeded_unit_vector;
use td::index::{AccessMethod, CostModel, FlatIndex, Hnsw, HnswParams, LshEnsemble, Workload};
use td::nav::{Organization, OrganizeConfig};
use td::sketch::{MinHasher, QcrSketch};
use td::table::{Column, DataLake, Table, TableId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hnsw_always_finds_the_query_vector_itself(
        n in 5usize..120,
        probe in 0usize..120,
        dim in 8usize..24,
    ) {
        prop_assume!(probe < n);
        let mut h = Hnsw::new(dim, HnswParams::default());
        for i in 0..n as u64 {
            h.insert(seeded_unit_vector(i * 7 + 1, dim));
        }
        let q = seeded_unit_vector(probe as u64 * 7 + 1, dim);
        let r = h.search(&q, 1, 48);
        prop_assert_eq!(r[0].0, probe as u32);
        prop_assert!(r[0].1 > 0.999);
    }

    #[test]
    fn flat_results_are_sorted_and_unique(
        n in 1usize..80,
        k in 1usize..20,
        dim in 4usize..16,
    ) {
        let mut f = FlatIndex::new(dim);
        for i in 0..n as u64 {
            f.insert(seeded_unit_vector(i + 3, dim));
        }
        let q = seeded_unit_vector(1_000_000, dim);
        let r = f.search(&q, k);
        prop_assert_eq!(r.len(), k.min(n));
        let ids: HashSet<u32> = r.iter().map(|(i, _)| *i).collect();
        prop_assert_eq!(ids.len(), r.len());
        for w in r.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn ensemble_hits_respect_their_own_threshold(
        sizes in prop::collection::vec(5usize..400, 4..20),
        t in 0.2f64..0.95,
    ) {
        let hasher = MinHasher::new(128, 1);
        let items: Vec<(u32, td::sketch::MinHashSignature)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| {
                let toks: Vec<String> =
                    (0..sz).map(|j| format!("v{}", i * 1000 + j)).collect();
                (i as u32, hasher.sign(toks.iter().map(String::as_str)))
            })
            .collect();
        let ens = LshEnsemble::build(items, 4);
        let qtoks: Vec<String> = (0..50).map(|j| format!("q{j}")).collect();
        let q = hasher.sign(qtoks.iter().map(String::as_str));
        // Every returned estimate must clear the threshold, and results
        // must be sorted descending.
        let hits = ens.query_containment(&q, t);
        for w in hits.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for (_, est) in hits {
            prop_assert!(est >= t);
        }
    }

    #[test]
    fn qcr_estimate_stays_in_range(
        n in 10usize..300,
        scale in 0.1f64..100.0,
    ) {
        let xs: Vec<(String, f64)> = (0..n)
            .map(|i| (format!("k{i}"), (i as f64 * 0.7).sin() * scale))
            .collect();
        let ys: Vec<(String, f64)> = (0..n)
            .map(|i| (format!("k{i}"), (i as f64 * 0.7 + 1.0).sin() * scale))
            .collect();
        let a = QcrSketch::build(128, 3, &xs);
        let b = QcrSketch::build(128, 3, &ys);
        let est = a.estimate_pearson(&b);
        prop_assert!((-1.0..=1.0).contains(&est));
        prop_assert!((-1.0..=1.0).contains(&a.qcr(&b)));
    }

    #[test]
    fn organizations_partition_their_tables(
        per in 1usize..10,
        clusters in 1usize..5,
        branching in 2usize..6,
    ) {
        let items: Vec<(TableId, Vec<f32>)> = (0..clusters)
            .flat_map(|c| {
                (0..per).map(move |i| {
                    let mut v = seeded_unit_vector(c as u64 + 1, 16);
                    let noise = seeded_unit_vector((c * per + i) as u64 + 99, 16);
                    td::embed::add_scaled(&mut v, &noise, 0.3);
                    (TableId((c * per + i) as u32), v)
                })
            })
            .collect();
        let org = Organization::build(
            &items,
            &OrganizeConfig { branching, leaf_size: 3, ..Default::default() },
        );
        let mut below = org.tables_below(org.root());
        below.sort();
        below.dedup();
        prop_assert_eq!(below.len(), items.len(), "duplicate or lost tables");
        // Probabilities sum to <= 1 over disjoint targets is not a law of
        // this model, but each must be a probability:
        for (t, v) in &items {
            let p = org.discovery_probability(*t, v, 6.0);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }

    #[test]
    fn stitch_groups_cover_every_table_exactly_once(
        arities in prop::collection::vec(1usize..4, 2..12),
    ) {
        let mut lake = DataLake::new();
        for (i, &a) in arities.iter().enumerate() {
            let cols: Vec<Column> = (0..a)
                .map(|c| Column::from_strings(format!("h{c}"), &["x", "y"]))
                .collect();
            lake.add(Table::new(format!("t{i}"), cols).unwrap());
        }
        let groups = td::apps::stitchable_groups(&lake);
        let mut seen = HashSet::new();
        for g in &groups {
            for t in g {
                prop_assert!(seen.insert(*t), "table in two groups");
            }
            // All members share arity.
            let a0 = lake.table(g[0]).num_cols();
            for t in g {
                prop_assert_eq!(lake.table(*t).num_cols(), a0);
            }
            // Stitching a group produces the row sum.
            let stitched = td::apps::stitch_group(&lake, g);
            let rows: usize = g.iter().map(|t| lake.table(*t).num_rows()).sum();
            prop_assert_eq!(stitched.num_rows(), rows);
        }
        prop_assert_eq!(seen.len(), lake.len());
    }

    #[test]
    fn cost_model_choice_is_consistent_with_predictions(
        flat_ns in 1.0f64..100.0,
        hnsw_step_ns in 10.0f64..10_000.0,
        build_ns in 100.0f64..100_000.0,
        n in 10usize..1_000_000,
        q in 1usize..100_000,
    ) {
        let m = CostModel {
            flat_ns_per_vector: flat_ns,
            hnsw_ns_per_log_step: hnsw_step_ns,
            hnsw_build_ns_per_vector: build_ns,
        };
        let w = Workload { corpus_size: n, expected_queries: q, k: 10 };
        let chosen = m.choose(&w);
        let other = match chosen {
            AccessMethod::Flat => AccessMethod::Hnsw,
            AccessMethod::Hnsw => AccessMethod::Flat,
        };
        prop_assert!(m.predict(chosen, &w) <= m.predict(other, &w));
    }
}

#[test]
fn lake_dir_roundtrip_on_generated_lake() {
    use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
    use td::table::io::{load_dir, save_dir};
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 12,
        rows: (5, 20),
        cols: (1, 4),
        seed: 77,
        ..Default::default()
    });
    let dir = std::env::temp_dir().join(format!("td_roundtrip_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_dir(&gl.lake, &dir).unwrap();
    let loaded = load_dir(&dir).unwrap();
    assert_eq!(loaded.len(), gl.lake.len());
    // Content equality by (sorted) table name.
    for (_, t) in gl.lake.iter() {
        let name = if t.name.ends_with(".csv") {
            t.name.clone()
        } else {
            format!("{}.csv", t.name)
        };
        let (_, l) = loaded
            .get_by_name(&name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(l.num_rows(), t.num_rows());
        assert_eq!(l.num_cols(), t.num_cols());
        assert_eq!(l.meta, t.meta);
        // Values may change primitive type only through the documented
        // parse normalization; compare rendered text.
        for (ca, cb) in t.columns.iter().zip(&l.columns) {
            for (va, vb) in ca.values.iter().zip(&cb.values) {
                assert_eq!(va.to_string().to_lowercase(), vb.to_string().to_lowercase());
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
