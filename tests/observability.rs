//! Acceptance test for the observability wiring: one pipeline build plus
//! one call to every online search entry point must leave the global
//! registry holding the named build-stage spans and per-family query
//! histograms that BENCH reports and the Prometheus exporter expose.
//!
//! Kept as a single test function: the global registry is process-wide,
//! and a lone test per binary keeps its counts deterministic.

use td::core::{DiscoveryPipeline, PipelineConfig};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};

const QUERY_FAMILIES: [&str; 8] = [
    "keyword",
    "joinable",
    "unionable",
    "unionable_semantic",
    "unionable_relationship",
    "fuzzy_joinable",
    "multi_joinable",
    "correlated",
];

#[test]
fn pipeline_emits_build_spans_and_query_histograms() {
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 30,
        rows: (20, 60),
        cols: (2, 5),
        seed: 123,
        ..Default::default()
    });
    let reg = td::obs::global();
    reg.reset();

    let pipeline =
        DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default());

    // One call to each of the eight search methods.
    let (_, qt) = gl.lake.iter().next().map(|(i, t)| (i, t.clone())).unwrap();
    let textual = qt
        .columns
        .iter()
        .find(|c| !c.is_numeric())
        .unwrap_or(&qt.columns[0]);
    let numeric = gl
        .lake
        .iter()
        .flat_map(|(_, t)| t.columns.iter())
        .find(|c| c.is_numeric())
        .expect("generated lake has a numeric column")
        .clone();
    let _ = pipeline.search_keyword("dataset", 5);
    let _ = pipeline.search_joinable(textual, 5);
    let _ = pipeline.search_unionable(&qt, 5);
    let _ = pipeline.search_unionable_semantic(&qt, 5);
    let _ = pipeline.search_unionable_relationship(&qt, 5);
    let _ = pipeline.search_fuzzy_joinable(textual, 0.6, 5);
    let _ = pipeline.search_multi_joinable(&qt, &[0], 5);
    let _ = pipeline.search_correlated(textual, &numeric, 5);

    let snap = reg.snapshot();

    // ≥ 9 named build-stage spans, all with at least one recorded run.
    let spans = snap.histograms_with_prefix("span.pipeline.");
    assert!(
        spans.len() >= 9,
        "expected >= 9 pipeline build spans, got {}: {spans:?}",
        spans.len()
    );
    for name in &spans {
        let h = snap.histogram(name).unwrap();
        assert!(h.count > 0, "span {name} recorded nothing");
    }
    // The umbrella span wraps every stage.
    assert!(
        snap.histogram("span.pipeline.build").is_some(),
        "missing the umbrella pipeline.build span"
    );

    // Every query family recorded exactly one count and one latency sample.
    for family in QUERY_FAMILIES {
        assert_eq!(
            snap.counter(&format!("query.{family}.count")),
            Some(1),
            "query.{family}.count"
        );
        let h = snap
            .histogram(&format!("query.{family}.latency_ns"))
            .unwrap_or_else(|| panic!("query.{family}.latency_ns missing"));
        assert_eq!(h.count, 1, "query.{family}.latency_ns sample count");
        assert!(h.sum > 0, "query.{family} latency must be non-zero");
    }

    // Both exporters render the state; the JSON one stays machine-readable.
    let prom = reg.export_prometheus();
    assert!(prom.contains("query_keyword_latency_ns_count 1"));
    let parsed: serde_json::Value =
        serde_json::from_str(&reg.export_json()).expect("export_json parses");
    assert!(parsed.as_map().is_some());
}
