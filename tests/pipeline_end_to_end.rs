//! End-to-end integration: the full Figure-1 pipeline over a generated
//! lake, exercising every component through the public facade API.

use td::core::join::ExactStrategy;
use td::core::{DiscoveryPipeline, PipelineConfig};
use td::embed::{ContextualEncoder, DomainEmbedder};
use td::nav::{
    group_results, LinkageConfig, LinkageGraph, Organization, OrganizeConfig, RoninConfig,
};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::TableId;

fn generated() -> td::table::gen::lakegen::GeneratedLake {
    LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 50,
        rows: (20, 80),
        cols: (2, 5),
        seed: 99,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_over_a_generated_lake() {
    let gl = generated();
    let pipeline =
        DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default());

    // Profiling covered everything.
    assert_eq!(pipeline.profile.len(), gl.lake.num_columns());

    // Each search family answers a self-query sensibly.
    let (qid, qt) = gl.lake.iter().next().map(|(i, t)| (i, t.clone())).unwrap();
    let textual = qt
        .columns
        .iter()
        .position(|c| !c.is_numeric() && !c.token_set().is_empty());
    if let Some(ci) = textual {
        let joins = pipeline.search_joinable(&qt.columns[ci], 5);
        assert!(!joins.is_empty());
        assert_eq!(joins[0].0, qid, "self-join must rank first");
        let (hits, _) = pipeline
            .exact_join
            .search(&qt.columns[ci], 5, ExactStrategy::Probe);
        assert_eq!(hits[0].overlap, qt.columns[ci].token_set().len());
    }
    let unions = pipeline.search_unionable(&qt, 5);
    assert_eq!(unions[0].0, qid, "self-union must rank first");
    assert!(unions[0].1 > 0.95);

    // Keyword search returns only indexed tables.
    for (t, _) in pipeline.search_keyword("dataset records", 10) {
        assert!(gl.lake.get(t).is_some());
    }
}

#[test]
fn navigation_layers_compose_with_the_pipeline() {
    let gl = generated();
    let graph = LinkageGraph::build(&gl.lake, &LinkageConfig::default());
    // A generated topical lake must contain *some* cross-table structure.
    assert!(graph.num_edges() > 0, "no linkage edges in a topical lake");

    let emb = DomainEmbedder::from_registry(&gl.registry, 2_048, 64, 0.4, 5);
    let enc = ContextualEncoder::default();
    let items: Vec<(TableId, Vec<f32>)> = gl
        .lake
        .iter()
        .map(|(id, t)| (id, enc.encode_table_vector(&emb, t)))
        .collect();
    let org = Organization::build(&items, &OrganizeConfig::default());
    let mut below = org.tables_below(org.root());
    below.sort();
    let mut all: Vec<TableId> = gl.lake.ids().collect();
    all.sort();
    assert_eq!(below, all, "organization must cover the whole lake");

    // Informed navigation beats uniform descent on average.
    let avg = |beta: f32| {
        items
            .iter()
            .map(|(t, v)| org.discovery_probability(*t, v, beta))
            .sum::<f64>()
            / items.len() as f64
    };
    assert!(avg(8.0) > avg(0.0));

    // RONIN groups any result slice without losing tables.
    let results: Vec<(TableId, Vec<f32>)> = items.into_iter().take(20).collect();
    let groups = group_results(&gl.lake, &results, &RoninConfig::default());
    let total: usize = groups.iter().map(|g| g.tables.len()).sum();
    assert_eq!(total, 20);
}

#[test]
fn pipeline_is_deterministic() {
    let gl = generated();
    let p1 = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default());
    let p2 = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default());
    let (_, qt) = gl.lake.iter().next().unwrap();
    let a = p1.search_unionable(qt, 5);
    let b = p2.search_unionable(qt, 5);
    assert_eq!(a, b);
    let ka = p1.search_keyword("geography", 5);
    let kb = p2.search_keyword("geography", 5);
    assert_eq!(ka, kb);
}
