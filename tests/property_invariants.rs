//! Property-based tests (proptest) on core invariants: sketch estimates
//! track exact statistics, indices agree with brute force, CSV round-trips,
//! matching is optimal, and metrics respect their definitional bounds.

use proptest::prelude::*;
use std::collections::HashSet;
use td::core::metrics::{average_precision, ndcg_at_k, precision_at_k, recall_at_k};
use td::core::union::max_weight_matching;
use td::index::{InvertedSetIndexBuilder, TopK};
use td::sketch::{HyperLogLog, KmvSketch, MinHasher};
use td::table::{csv, Column, Table, Value};

/// Strategy: a set of small-alphabet tokens.
fn token_set(max: u32) -> impl Strategy<Value = HashSet<u32>> {
    prop::collection::hash_set(0..max, 0..120)
}

fn to_strings(s: &HashSet<u32>) -> Vec<String> {
    s.iter().map(|i| format!("tok{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minhash_jaccard_tracks_exact(a in token_set(300), b in token_set(300)) {
        prop_assume!(!a.is_empty() || !b.is_empty());
        let exact = {
            let inter = a.intersection(&b).count() as f64;
            let uni = a.union(&b).count() as f64;
            if uni == 0.0 { 0.0 } else { inter / uni }
        };
        let h = MinHasher::new(256, 7);
        let sa = to_strings(&a);
        let sb = to_strings(&b);
        let ja = h.sign(sa.iter().map(String::as_str));
        let jb = h.sign(sb.iter().map(String::as_str));
        let est = ja.jaccard(&jb);
        // 256 hashes: sigma <= 0.032; allow 6 sigma.
        prop_assert!((est - exact).abs() < 0.2, "est {est} exact {exact}");
    }

    #[test]
    fn kmv_distinct_is_exact_below_k(s in token_set(300)) {
        prop_assume!(s.len() < 128);
        let toks = to_strings(&s);
        let k = KmvSketch::from_tokens(128, 3, toks.iter().map(String::as_str));
        prop_assert_eq!(k.estimate_distinct(), s.len() as f64);
    }

    #[test]
    fn kmv_union_commutes(a in token_set(300), b in token_set(300)) {
        let sa = to_strings(&a);
        let sb = to_strings(&b);
        let ka = KmvSketch::from_tokens(64, 3, sa.iter().map(String::as_str));
        let kb = KmvSketch::from_tokens(64, 3, sb.iter().map(String::as_str));
        prop_assert_eq!(ka.union(&kb), kb.union(&ka));
    }

    #[test]
    fn hll_never_negative_and_duplicates_free(s in token_set(500), dups in 1usize..5) {
        let toks = to_strings(&s);
        let mut h1 = HyperLogLog::new(10, 1);
        let mut hd = HyperLogLog::new(10, 1);
        for t in &toks {
            h1.insert(t);
            for _ in 0..dups {
                hd.insert(t);
            }
        }
        prop_assert!(h1.estimate() >= 0.0);
        // Duplicate insertion changes nothing.
        prop_assert_eq!(h1.estimate(), hd.estimate());
    }

    #[test]
    fn inverted_topk_matches_brute_force(
        sets in prop::collection::vec(token_set(80), 2..25),
        qidx in 0usize..25,
    ) {
        prop_assume!(qidx < sets.len());
        prop_assume!(!sets[qidx].is_empty());
        let mut b = InvertedSetIndexBuilder::new();
        for s in &sets {
            let toks = to_strings(s);
            b.add_set(toks.iter().map(String::as_str));
        }
        let idx = b.build();
        let q = &sets[qidx];
        let qtoks = to_strings(q);
        let (hits, _) = idx.top_k_merge(qtoks.iter().map(String::as_str), 3);
        // Brute force.
        let mut brute: Vec<usize> = sets.iter().map(|s| s.intersection(q).count()).collect();
        brute.sort_unstable_by(|a, b| b.cmp(a));
        let got: Vec<usize> = hits.iter().map(|&(_, o)| o).collect();
        let expected: Vec<usize> = brute.into_iter().take(got.len()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn csv_roundtrip_preserves_values(
        rows in prop::collection::vec(
            (any::<i32>(), "[a-zA-Z ,\"\n]{0,12}", proptest::option::of(any::<bool>())),
            1..20,
        )
    ) {
        let cols = vec![
            Column::new("i", rows.iter().map(|(i, _, _)| Value::Int(*i as i64)).collect()),
            Column::new(
                "s",
                rows.iter()
                    .map(|(_, s, _)| {
                        // Normalize the way ingestion would: parse() output.
                        Value::parse(s)
                    })
                    .collect(),
            ),
            Column::new(
                "b",
                rows.iter()
                    .map(|(_, _, b)| b.map_or(Value::Null, Value::Bool))
                    .collect(),
            ),
        ];
        let t = Table::new("t", cols).unwrap();
        let text = csv::write_table(&t);
        let t2 = csv::read_table("t", &text).unwrap();
        prop_assert_eq!(t.columns, t2.columns);
    }

    #[test]
    fn hungarian_total_matches_assignment_sum(
        w in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 1..6), 1..6)
    ) {
        let m = w[0].len();
        prop_assume!(w.iter().all(|r| r.len() == m));
        let (total, assignment) = max_weight_matching(&w);
        let mut sum = 0.0;
        let mut used = HashSet::new();
        for (i, a) in assignment.iter().enumerate() {
            if let Some(j) = a {
                prop_assert!(used.insert(*j));
                sum += w[i][*j];
            }
        }
        prop_assert!((sum - total).abs() < 1e-9);
        // Any single swap must not improve (local optimality sanity).
        prop_assert!(total >= w.iter().map(|r| r[0]).fold(0.0, f64::max) - 1e-9);
    }

    #[test]
    fn topk_returns_the_true_maxima(scores in prop::collection::vec(-100.0f64..100.0, 1..60), k in 1usize..10) {
        let mut topk = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            topk.push(s, i);
        }
        let got: Vec<f64> = topk.into_sorted().into_iter().map(|(s, _)| s).collect();
        let mut expected = scores.clone();
        expected.sort_by(|a, b| b.total_cmp(a));
        expected.truncate(k.min(scores.len()));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn metric_bounds_hold(
        results in prop::collection::vec(0u32..40, 0..30),
        relevant in prop::collection::hash_set(0u32..40, 0..20),
        k in 1usize..15,
    ) {
        let p = precision_at_k(&results, &relevant, k);
        let r = recall_at_k(&results, &relevant, k);
        let ap = average_precision(&results, &relevant);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        let grades: std::collections::HashMap<u32, u8> =
            relevant.iter().map(|&x| (x, 1u8)).collect();
        let n = ndcg_at_k(&results, &grades, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&n));
    }

    #[test]
    fn value_parse_display_roundtrip_for_numbers(i in any::<i64>(), f in -1e15f64..1e15) {
        prop_assert_eq!(Value::parse(&Value::Int(i).to_string()), Value::Int(i));
        let shown = Value::Float(f).to_string();
        match Value::parse(&shown) {
            Value::Float(g) => prop_assert!((g - f).abs() <= f.abs() * 1e-12),
            Value::Int(g) => prop_assert_eq!(g as f64, f),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
