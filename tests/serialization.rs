//! Serde round-trips of the persistent artifacts a deployment would save:
//! tables, catalogs, profiles, sketches, signatures, annotations,
//! organizations.

use td::index::{Bm25Index, Bm25Params, InvertedSetIndexBuilder};
use td::sketch::{HyperLogLog, KmvSketch, MinHasher, QcrSketch};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::{csv, Column, DataLake, LakeProfile, Table, TableMeta};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn table_and_lake_roundtrip() {
    let mut t = csv::read_table("t.csv", "a,b\n1,x\n2.5,\ntrue,z\n").unwrap();
    t.meta = TableMeta {
        title: "T".into(),
        description: "d".into(),
        tags: vec!["x".into()],
        source: "s".into(),
    };
    let t2: Table = roundtrip(&t);
    assert_eq!(t, t2);

    let mut lake = DataLake::new();
    lake.add(t);
    let lake2: DataLake = roundtrip(&lake);
    assert_eq!(lake.len(), lake2.len());
    assert_eq!(
        lake.table(td::table::TableId(0)).columns,
        lake2.table(td::table::TableId(0)).columns
    );
}

#[test]
fn profile_roundtrip() {
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 5,
        ..Default::default()
    });
    let p = LakeProfile::of(&gl.lake);
    let p2: LakeProfile = roundtrip(&p);
    assert_eq!(p.len(), p2.len());
    for (r, prof) in p.iter() {
        // JSON may lose the last ulp of a float: compare fields with
        // tolerance rather than bitwise.
        let q = p2.get(r).expect("column present");
        assert_eq!(prof.name, q.name);
        assert_eq!(
            (prof.ty, prof.rows, prof.nulls, prof.distinct),
            (q.ty, q.rows, q.nulls, q.distinct)
        );
        for (a, b) in [
            (prof.mean, q.mean),
            (prof.std_dev, q.std_dev),
            (prof.mean_text_len, q.mean_text_len),
        ] {
            assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12);
        }
        assert_eq!(prof.min.is_some(), q.min.is_some());
        assert_eq!(prof.max.is_some(), q.max.is_some());
    }
}

#[test]
fn sketches_roundtrip_and_still_estimate() {
    let tokens: Vec<String> = (0..500).map(|i| format!("v{i}")).collect();
    let hasher = MinHasher::new(128, 1);
    let sig = hasher.sign(tokens.iter().map(String::as_str));
    let sig2 = roundtrip(&sig);
    assert_eq!(sig, sig2);

    let kmv = KmvSketch::from_tokens(64, 2, tokens.iter().map(String::as_str));
    let kmv2: KmvSketch = roundtrip(&kmv);
    assert_eq!(kmv.estimate_distinct(), kmv2.estimate_distinct());

    let mut hll = HyperLogLog::new(10, 3);
    for t in &tokens {
        hll.insert(t);
    }
    let hll2: HyperLogLog = roundtrip(&hll);
    assert_eq!(hll.estimate(), hll2.estimate());

    let pairs: Vec<(String, f64)> = (0..200).map(|i| (format!("k{i}"), i as f64)).collect();
    let qcr = QcrSketch::build(64, 5, &pairs);
    let qcr2: QcrSketch = roundtrip(&qcr);
    assert_eq!(qcr, qcr2);
}

#[test]
fn inverted_index_roundtrip_preserves_search() {
    let mut b = InvertedSetIndexBuilder::new();
    let sets: Vec<Vec<String>> = (0..30)
        .map(|s| (0..20).map(|i| format!("t{}", (s * 7 + i) % 60)).collect())
        .collect();
    for s in &sets {
        b.add_set(s.iter().map(String::as_str));
    }
    let idx = b.build();
    let idx2 = roundtrip(&idx);
    let q = &sets[3];
    let (r1, _) = idx.top_k_merge(q.iter().map(String::as_str), 5);
    let (r2, _) = idx2.top_k_merge(q.iter().map(String::as_str), 5);
    assert_eq!(r1, r2);
}

#[test]
fn bm25_roundtrip_preserves_ranking() {
    let mut i = Bm25Index::new(Bm25Params::default());
    i.add_document("city budget finance");
    i.add_document("wildlife habitat");
    let i2: Bm25Index = roundtrip(&i);
    assert_eq!(i.search("budget", 2), i2.search("budget", 2));
}

#[test]
fn annotations_and_organizations_roundtrip() {
    use td::nav::{Organization, OrganizeConfig};
    use td::understand::annotate::{annotate_table, AnnotateConfig, TableAnnotation};
    use td::understand::kb::{KbConfig, KnowledgeBase};

    let registry = td::table::gen::domains::DomainRegistry::standard();
    let city = registry.id("city").unwrap();
    let kb = KnowledgeBase::build(
        &registry,
        &[],
        &KbConfig {
            type_coverage: 1.0,
            vocab_per_domain: 100,
            ..Default::default()
        },
    );
    let t = Table::new(
        "t",
        vec![Column::new(
            "c",
            (0..20u64)
                .map(|i| registry.value(city, i))
                .collect::<Vec<_>>(),
        )],
    )
    .unwrap();
    let ann = annotate_table(&t, &kb, &AnnotateConfig::default());
    let ann2: TableAnnotation = roundtrip(&ann);
    assert_eq!(ann.column_types, ann2.column_types);

    let items: Vec<(td::table::TableId, Vec<f32>)> = (0..10u32)
        .map(|i| {
            (
                td::table::TableId(i),
                td::embed::seeded_unit_vector(i as u64, 16),
            )
        })
        .collect();
    let org = Organization::build(&items, &OrganizeConfig::default());
    let org2: Organization = roundtrip(&org);
    assert_eq!(org.num_nodes(), org2.num_nodes());
    let (t0, v0) = &items[0];
    assert_eq!(
        org.discovery_probability(*t0, v0, 4.0),
        org2.discovery_probability(*t0, v0, 4.0)
    );
}
