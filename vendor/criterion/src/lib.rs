//! Offline stand-in for `criterion`: same macro/builder shape, simple
//! wall-clock measurement (median of N samples, one iteration batch per
//! sample), plain-text report to stdout. No statistics, plots, or saved
//! baselines — the real `cargo bench` numbers for the repo's history live
//! in `BENCH_*.json` via `td-bench`'s reporting instead.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Builder: number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _c: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone (group name gives the context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the most recent `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Time the closure. Runs a small warmup, then a measured batch.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        // Batch size chosen so the measured region is ≥ ~1ms or 10 iters.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().as_secs_f64();
        let iters = if one > 0.0 {
            (1e-3 / one).ceil().clamp(1.0, 1e6) as u64
        } else {
            1000
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut results = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b);
        results.push(b.last_ns);
    }
    results.sort_by(f64::total_cmp);
    let median = results[results.len() / 2];
    let (lo, hi) = (results[0], results[results.len() - 1]);
    println!(
        "bench {name:<44} {:>12.1} ns/iter (min {lo:.1}, max {hi:.1})",
        median
    );
}

/// Declare a benchmark group: plain list or `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; this stand-in
            // has none. In test mode (`--test`), skip the actual work so
            // `cargo test` stays fast.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
