//! Offline stand-in for `proptest`: deterministic randomized testing with
//! the subset of the strategy combinators this workspace uses.
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! inputs' debug representation), a fixed per-test seed derived from the
//! test name, and string "regex" strategies limited to the
//! `literal`/`[class]{m,n}` shapes that appear in the test suite.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::Range;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Uniform strategy over a type's "arbitrary" distribution.
pub trait Arbitrary: Sized + Debug {
    /// Draw one arbitrary value (with a bias toward edge cases).
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // 1-in-8 edge case, otherwise uniform bits.
                if rng.gen_range(0..8) == 0 {
                    *[0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX]
                        .get(rng.gen_range(0..4usize))
                        .expect("edge table")
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite floats spanning magnitudes; no NaN/inf (matches common
        // proptest usage in assertions).
        let mag = rng.gen_range(-300.0..300.0f64);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * rng.gen::<f64>() * 10f64.powf(mag / 10.0)
    }
}

/// `any::<T>()` — the arbitrary strategy for `T`.
#[must_use]
pub fn any_strategy<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`](crate::prelude::any).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// Pattern strategies: `&str` generates strings matching the (tiny)
/// supported pattern subset.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// Generate a string from a pattern of literal chars, escapes, and
/// `[class]{m,n}` repetitions (the shapes used in this repo's tests).
fn generate_from_pattern(pat: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // One atom: a char class or a single (possibly escaped) char.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = find_class_end(&chars, i);
            let alpha = expand_class(&chars[i + 1..close]);
            i = close + 1;
            alpha
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            let c = unescape(chars[i + 1]);
            i += 2;
            vec![c]
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("quantifier lower bound"),
                    b.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..n {
            if let Some(&c) = alphabet.get(rng.gen_range(0..alphabet.len().max(1))) {
                out.push(c);
            }
        }
    }
    out
}

fn find_class_end(chars: &[char], open: usize) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            ']' => return j,
            _ => j += 1,
        }
    }
    panic!("unclosed character class");
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        if body[i] == '\\' && i + 1 < body.len() {
            out.push(unescape(body[i + 1]));
            i += 2;
        } else if i + 2 < body.len() && body[i + 1] == '-' && body[i + 2] != ']' {
            let (a, b) = (body[i], body[i + 2]);
            for c in a..=b {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Hash, HashSet, Range, Rng, StdRng, Strategy};

    /// Strategy for `Vec<T>` with a size range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `elem`, length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a size range.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `HashSet` of values from `elem`; duplicates collapse, so the
    /// realized size may be below the draw.
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Rng, StdRng, Strategy};

    /// Strategy yielding `None` ~25% of the time, else `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wrap a strategy in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_range(0..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Test-runner machinery used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{SeedableRng, StdRng, Strategy};
    use std::fmt::Debug;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw again.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed assertion with a message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Drives a strategy and a test closure through N cases.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner with a deterministic seed derived from the test name.
        #[must_use]
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let mut seed = 0xDA7A_CAFE_0B5E_55EDu64;
            for b in test_name.bytes() {
                seed = seed.wrapping_mul(0x100000001B3).wrapping_add(u64::from(b));
            }
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// Run the closure over generated cases; panics on the first
        /// failing case (no shrinking).
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: Strategy,
            S::Value: Debug,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut executed = 0u32;
            let mut attempts = 0u32;
            let max_attempts = self.config.cases.saturating_mul(20).max(100);
            while executed < self.config.cases && attempts < max_attempts {
                attempts += 1;
                let value = strategy.generate(&mut self.rng);
                let shown = format!("{value:?}");
                match test(value) {
                    Ok(()) => executed += 1,
                    Err(TestCaseError::Reject) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed after {executed} passing cases:\n  \
                             inputs: {shown}\n  {msg}"
                        );
                    }
                }
            }
        }
    }
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, Strategy};

    /// Draw an arbitrary `T`.
    #[must_use]
    pub fn any<T: crate::Arbitrary>() -> crate::AnyStrategy<T> {
        crate::any_strategy::<T>()
    }

    /// `prop::` namespace (collection strategies).
    pub mod prop {
        pub use crate::collection;
    }
}

/// The main macro: a block of property test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Internal per-function muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            runner.run(&($($strat,)+), |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Reject the current case (resample).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Assert within a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                    stringify!($a), stringify!($b), left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n  right: {:?}",
                    stringify!($a), stringify!($b), format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0u32..5, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n > 4);
            prop_assert!(n > 4);
        }
    }
}
