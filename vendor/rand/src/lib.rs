//! Minimal offline stand-in for the parts of `rand` 0.8 this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `rand` to this crate. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic per seed, statistically strong enough for
//! synthetic-lake generation and tests. It makes no attempt to reproduce
//! upstream `rand`'s value streams.

#![warn(missing_docs)]

/// Core random source: 64 bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (only the `seed_from_u64` entry point the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..40);
            assert!((3..40).contains(&x));
            let y: f64 = r.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
