//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! facade exposing the serde surface it actually uses: the `Serialize` /
//! `Deserialize` traits (+ derives via the sibling `serde_derive` crate)
//! and `serde::de::DeserializeOwned`. Instead of upstream serde's visitor
//! architecture, both traits go through one self-describing in-memory
//! content tree ([`Content`]); `serde_json` (also vendored) renders that
//! tree to and from JSON text.
//!
//! Fidelity notes, for anyone comparing against real serde:
//! * Enums use external tagging (`"Variant"` / `{"Variant": ...}`), the
//!   same wire shape as upstream defaults.
//! * Integer map keys are emitted as JSON strings, as `serde_json` does;
//!   integer `from_content` therefore also accepts numeric strings.
//! * Only the container attribute `#[serde(from, into)]` is implemented.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when a value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Content>),
    /// Key-value pairs (JSON object; keys stringified on output).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Borrow as a map, if this is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&Vec<(Content, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a string key in a content map (linear scan; maps are small).
#[must_use]
pub fn content_get<'a>(m: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    m.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error carrying a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Content`] tree.
pub trait Serialize {
    /// Convert to the content tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the content tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when the tree's shape doesn't match the type.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Mirror of `serde::de` for the one item the workspace imports from it.
pub mod de {
    /// Owned deserialization marker; alias for [`crate::Deserialize`]
    /// (this facade has no borrowed deserialization, so every impl
    /// qualifies).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::DeError as Error;
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

// ------------------------------------------------------------ primitives

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide: i128 = match c {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    Content::F64(v) if v.fract() == 0.0 => *v as i128,
                    Content::Str(s) => s
                        .parse::<i128>()
                        .map_err(|_| DeError::new(format!("bad integer string {s:?}")))?,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide: u128 = match c {
                    Content::I64(v) if *v >= 0 => *v as u128,
                    Content::U64(v) => *v as u128,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u128,
                    Content::Str(s) => s
                        .parse::<u128>()
                        .map_err(|_| DeError::new(format!("bad integer string {s:?}")))?,
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            other => Err(DeError::new(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        v.try_into()
            .map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::new("expected tuple sequence"))?;
                let expected = [$($n),+].len();
                if s.len() != expected {
                    return Err(DeError::new("tuple arity mismatch"));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}
