//! Offline stand-in for `serde_derive`: hand-rolled `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` that target the vendored `serde` facade's
//! content model (`serde::Content`) instead of upstream serde's
//! `Serializer`/`Deserializer` traits.
//!
//! Supported shapes — exactly what this workspace derives:
//! named structs, tuple structs (incl. newtypes), unit structs, and enums
//! with unit / tuple / struct variants. The container attribute
//! `#[serde(from = "T", into = "T")]` is honoured. Generic containers are
//! rejected with a compile error (the workspace has none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the annotated type.
struct Container {
    name: String,
    kind: Kind,
    /// `#[serde(from = "...")]` proxy type, if any.
    from: Option<String>,
    /// `#[serde(into = "...")]` proxy type, if any.
    into: Option<String>,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize` (content-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(c) => gen_serialize(&c).parse().expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

/// Derive `serde::Deserialize` (content-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(c) => gen_deserialize(&c).parse().expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let mut from = None;
    let mut into = None;

    // Outer attributes: `#[...]`, capturing `#[serde(from/into = "...")]`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut from, &mut into);
                    i += 2;
                } else {
                    return Err("malformed attribute".into());
                }
            }
            _ => break,
        }
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1; // pub(crate) etc.
        }
    }

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`; \
             write the impls by hand"
        ));
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            _ => return Err("unrecognized struct body".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("unrecognized enum body".into()),
        },
        other => return Err(format!("cannot derive for `{other}`")),
    };

    Ok(Container {
        name,
        kind,
        from,
        into,
    })
}

/// If `attr_body` is `[serde(...)]`, pull out `from = "T"` / `into = "T"`.
fn parse_serde_attr(body: TokenStream, from: &mut Option<String>, into: &mut Option<String>) {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let [TokenTree::Ident(id), TokenTree::Group(args)] = &toks[..] else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0usize;
    while j < inner.len() {
        if let TokenTree::Ident(key) = &inner[j] {
            let key = key.to_string();
            if matches!(&inner.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                    let raw = lit.to_string();
                    let ty = raw.trim_matches('"').to_string();
                    match key.as_str() {
                        "from" => *from = Some(ty),
                        "into" => *into = Some(ty),
                        _ => {}
                    }
                    j += 3;
                    continue;
                }
            }
        }
        j += 1;
    }
}

/// Skip a run of `#[...]` attributes starting at `i`; returns the next index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2; // '#' + bracket group
    }
    i
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let TokenTree::Ident(field) = &tokens[i] else {
            return Err("expected field name".into());
        };
        fields.push(field.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma. Generic angle
        // brackets contain no commas at *token tree* top level only inside
        // groups, so track `<`/`>` depth explicitly.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            return Err("expected variant name".into());
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip optional discriminant and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(into_ty) = &c.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     let proxy: {into_ty} = ::std::clone::Clone::clone(self).into();\n\
                     ::serde::Serialize::to_content(&proxy)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::std::vec::Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.push((::serde::Content::Str(::std::string::String::from({f:?})), \
                     ::serde::Serialize::to_content(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Content::Map(m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let mut s = String::from("let mut v = ::std::vec::Vec::new();\n");
            for idx in 0..*n {
                s.push_str(&format!(
                    "v.push(::serde::Serialize::to_content(&self.{idx}));\n"
                ));
            }
            s.push_str("::serde::Content::Seq(v)");
            s
        }
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\
                         ::std::string::String::from({vn:?})),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Content::Map(vec![(\
                         ::serde::Content::Str(::std::string::String::from({vn:?})), \
                         ::serde::Serialize::to_content(x0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let pushes: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(::std::string::String::from({vn:?})), \
                             ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str(::std::string::String::from({f:?})), \
                                     ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(::std::string::String::from({vn:?})), \
                             ::serde::Content::Map(vec![{}]))]),\n",
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(from_ty) = &c.from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(c: &::serde::Content) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let proxy: {from_ty} = ::serde::Deserialize::from_content(c)?;\n\
                     ::std::result::Result::Ok(<{name}>::from(proxy))\n\
                 }}\n\
             }}"
        );
    }
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let m = c.as_map().ok_or_else(|| \
                 ::serde::DeError::new(concat!(\"expected map for struct \", {name:?})))?;\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "let f_{f} = ::serde::Deserialize::from_content(\
                     ::serde::content_get(m, {f:?}).ok_or_else(|| \
                     ::serde::DeError::new(concat!(\"missing field \", {f:?})))?)?;\n"
                ));
            }
            let inits: Vec<String> = fields.iter().map(|f| format!("{f}: f_{f}")).collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            ));
            s
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let v = c.as_seq().ok_or_else(|| \
                 ::serde::DeError::new(concat!(\"expected seq for tuple struct \", {name:?})))?;\n\
                 if v.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::new(\"tuple struct arity mismatch\")); }}\n"
            );
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&v[{k}])?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            ));
            s
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vn:?} => return ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_content(inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&sv[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let sv = inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected seq for tuple variant\"))?;\n\
                                 if sv.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::new(\"tuple variant arity mismatch\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{vn}({}));\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inner_s = String::from(
                            "let fm = inner.as_map().ok_or_else(|| \
                             ::serde::DeError::new(\"expected map for struct variant\"))?;\n",
                        );
                        for f in fields {
                            inner_s.push_str(&format!(
                                "let f_{f} = ::serde::Deserialize::from_content(\
                                 ::serde::content_get(fm, {f:?}).ok_or_else(|| \
                                 ::serde::DeError::new(concat!(\"missing field \", {f:?})))?)?;\n"
                            ));
                        }
                        let inits: Vec<String> =
                            fields.iter().map(|f| format!("{f}: f_{f}")).collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n{inner_s}\
                             return ::std::result::Result::Ok({name}::{vn} {{ {} }});\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match c {{\n\
                     ::serde::Content::Str(s) => {{\n\
                         match s.as_str() {{\n{unit_arms}\
                             other => return ::std::result::Result::Err(\
                             ::serde::DeError::new(&format!(\
                             \"unknown unit variant {{other}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let ::serde::Content::Str(tag) = tag else {{\n\
                             return ::std::result::Result::Err(\
                             ::serde::DeError::new(\"enum tag must be a string\"));\n\
                         }};\n\
                         match tag.as_str() {{\n{data_arms}\
                             other => return ::std::result::Result::Err(\
                             ::serde::DeError::new(&format!(\
                             \"unknown variant {{other}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\
                     concat!(\"unexpected content for enum \", {name:?}))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
