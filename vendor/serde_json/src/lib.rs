//! Offline stand-in for `serde_json`, rendering the vendored `serde`
//! facade's [`Content`] tree to and from JSON text.
//!
//! Covers the surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`json!`], and
//! [`Value`] (an alias for [`serde::Content`]). Map keys that are not
//! strings are stringified on output exactly as upstream serde_json does
//! for integer keys.

#![warn(missing_docs)]

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// JSON value — the vendored serde facade's content tree.
pub type Value = Content;

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Serialize to compact JSON text.
///
/// # Errors
/// Fails if a map key cannot be represented as a JSON object key.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
///
/// # Errors
/// Fails if a map key cannot be represented as a JSON object key.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
/// Fails on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_content(&v)?)
}

// ------------------------------------------------------------------ emit

fn write_value(
    v: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                // Rust's float Display is shortest-round-trip; force a
                // fractional or exponent marker so the token re-parses as
                // a float-typed number only when precision demands it
                // (serde_json itself emits `5.0` as `5.0`; our content
                // model does not distinguish, and integer re-parse is
                // accepted by the float deserializer).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_key(k, out)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_key(k: &Content, out: &mut String) -> Result<(), Error> {
    match k {
        Content::Str(s) => write_json_string(s, out),
        Content::I64(i) => write_json_string(&i.to_string(), out),
        Content::U64(u) => write_json_string(&u.to_string(), out),
        Content::Bool(b) => write_json_string(if *b { "true" } else { "false" }, out),
        other => return Err(Error::new(format!("unsupported map key {other:?}"))),
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
///
/// # Errors
/// Fails on malformed JSON or trailing non-whitespace.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((Value::Str(key), val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Step back and take the full UTF-8 char.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

// ----------------------------------------------------------------- json!

/// Build a [`Value`] from JSON-like syntax, interpolating any serializable
/// Rust expression in value position.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Internal muncher for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Arrays: delegate element munching to json_seq.
    ([]) => { $crate::Value::Seq(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Seq($crate::json_seq!([] $($tt)+))
    };

    // Objects: delegate entry munching to json_map.
    ({}) => { $crate::Value::Map(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Map($crate::json_map!([] () $($tt)+))
    };

    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal array-element muncher; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_seq {
    // Done.
    ([ $($elems:expr,)* ]) => { vec![$($elems,)*] };
    // Trailing comma.
    ([ $($elems:expr,)* ] ,) => { vec![$($elems,)*] };
    // Next element is a structured literal.
    ([ $($elems:expr,)* ] null $($rest:tt)*) => {
        $crate::json_seq!([ $($elems,)* $crate::json_internal!(null), ] $($rest)*)
    };
    ([ $($elems:expr,)* ] true $($rest:tt)*) => {
        $crate::json_seq!([ $($elems,)* $crate::json_internal!(true), ] $($rest)*)
    };
    ([ $($elems:expr,)* ] false $($rest:tt)*) => {
        $crate::json_seq!([ $($elems,)* $crate::json_internal!(false), ] $($rest)*)
    };
    ([ $($elems:expr,)* ] [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_seq!([ $($elems,)* $crate::json_internal!([ $($inner)* ]), ] $($rest)*)
    };
    ([ $($elems:expr,)* ] { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_seq!([ $($elems,)* $crate::json_internal!({ $($inner)* }), ] $($rest)*)
    };
    // Plain expression element (consume up to the next top-level comma).
    ([ $($elems:expr,)* ] $next:expr , $($rest:tt)*) => {
        $crate::json_seq!([ $($elems,)* $crate::to_value(&$next), ] $($rest)*)
    };
    ([ $($elems:expr,)* ] $last:expr) => {
        vec![$($elems,)* $crate::to_value(&$last)]
    };
    // Leading comma between elements.
    ([ $($elems:expr,)* ] , $($rest:tt)*) => {
        $crate::json_seq!([ $($elems,)* ] $($rest)*)
    };
}

/// Internal object-entry muncher; not public API. State:
/// `[ entries ] ( current-key-tokens ) rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_map {
    // Done (empty rest, no pending key).
    ([ $($entries:expr,)* ] ()) => { vec![$($entries,)*] };
    // Trailing comma.
    ([ $($entries:expr,)* ] () ,) => { vec![$($entries,)*] };
    // Capture the key (a literal) and the colon.
    ([ $($entries:expr,)* ] () $key:literal : $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)* ] ($key) $($rest)*)
    };
    // Value is a structured literal.
    ([ $($entries:expr,)* ] ($key:literal) null $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)*
            ($crate::to_value(&$key), $crate::json_internal!(null)), ] () $($rest)*)
    };
    ([ $($entries:expr,)* ] ($key:literal) true $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)*
            ($crate::to_value(&$key), $crate::json_internal!(true)), ] () $($rest)*)
    };
    ([ $($entries:expr,)* ] ($key:literal) false $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)*
            ($crate::to_value(&$key), $crate::json_internal!(false)), ] () $($rest)*)
    };
    ([ $($entries:expr,)* ] ($key:literal) [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)*
            ($crate::to_value(&$key), $crate::json_internal!([ $($inner)* ])), ] () $($rest)*)
    };
    ([ $($entries:expr,)* ] ($key:literal) { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)*
            ($crate::to_value(&$key), $crate::json_internal!({ $($inner)* })), ] () $($rest)*)
    };
    // Value is a plain expression up to the next top-level comma.
    ([ $($entries:expr,)* ] ($key:literal) $value:expr , $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)*
            ($crate::to_value(&$key), $crate::to_value(&$value)), ] () $($rest)*)
    };
    ([ $($entries:expr,)* ] ($key:literal) $value:expr) => {
        vec![$($entries,)* ($crate::to_value(&$key), $crate::to_value(&$value))]
    };
    // Comma between entries.
    ([ $($entries:expr,)* ] () , $($rest:tt)*) => {
        $crate::json_map!([ $($entries,)* ] () $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn roundtrip_numbers() {
        for f in [0.1, -1.5e300, 3.0, f64::MIN_POSITIVE, 12345.6789] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f, "via {json}");
        }
        let json = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, u64::MAX);
        let json = to_string(&i64::MIN).unwrap();
        let back: i64 = from_str(&json).unwrap();
        assert_eq!(back, i64::MIN);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1,
            "nested": {"x": [1, 2.5, "s"], "y": null},
            "flag": true,
            "expr": 2 + 3,
        });
        let text = to_string(&v).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integer_map_keys_stringify() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(7u64, vec![1u32, 2]);
        let text = to_string(&m).unwrap();
        assert!(text.contains("\"7\""), "{text}");
        let back: HashMap<u64, Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"k": [1, 2, 3], "m": {"inner": "v"}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse_value(&text).unwrap(), v);
    }
}
